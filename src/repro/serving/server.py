"""Stdlib HTTP/JSON front end: the versioned ``/v1`` multi-model API.

Endpoints
---------
``POST /v1/models/<name>/predict``
    Predict against the latest resident version of ``<name>``.  Body
    ``{"image": [...], "seed": 123}`` (``seed`` optional; the image is a
    flat or nested list of ``n_input`` pixel intensities).  Responds with
    the prediction, per-class scores, the resolved seed, the spike count,
    and the serving model/version.  Optional ``X-Tenant`` header selects
    the rate-limiting tenant (default ``"default"``).
``POST /v1/models/<name>/versions/<vN>/predict``
    Same, pinned to registry version ``<vN>`` (``v3`` / ``v0003`` / ``3``).
``GET /v1/models``
    Catalogue: resident models plus the registry listing.
``GET /v1/models/<name>/healthz``
    Per-model health: pool shape, shard PIDs, breaker state, counters.
``GET /v1/healthz``
    Whole-server liveness: status plus the resident model keys.
``GET /v1/metrics`` / ``GET /v1/metrics.json``
    All resident models' metrics — Prometheus text exposition with a
    ``model`` label per sample, or the raw snapshots as JSON.

Every error, on every route, is one structured envelope::

    {"error": {"code": "rate_limited", "message": "...", "detail": {...}}}

with stable codes from :mod:`repro.serving.errors`.  Backpressure and
rate-limit rejections are ``429`` with a ``Retry-After`` header (not the
bare ``503`` of the pre-1.7 API); an open circuit breaker is ``503`` with
``Retry-After``.

Deprecated aliases
------------------
The pre-1.7 single-model surface — ``POST /predict``, ``GET /healthz``,
``GET /metrics``, ``GET /metrics.json`` — still works, pinned to the
*default* model (the first one registered).  Alias responses carry a
``Deprecation: true`` header and a ``Link: <successor>;
rel="successor-version"`` pointer; success bodies are bit-identical to
v1.6.0 (the equivalence tests assert this).

Implementation notes: ``ThreadingHTTPServer`` gives one handler thread per
connection — handlers block on the request future while the pools' workers
(threads or shard processes) do the actual batched inference, so concurrent
connections are what fills micro-batches.  Everything is stdlib
(``http.server`` + ``json``); there is deliberately no framework dependency.
"""

from __future__ import annotations

import json
import re
import threading
from concurrent.futures import CancelledError, TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    render_prometheus_multi,
)
from repro.observability.structlog import get_struct_logger
from repro.observability.tracing import (
    TRACE_HEADER,
    TraceContext,
    new_trace_id,
    span,
    trace_id_for_request,
    trace_scope,
    tracing_forced,
)
from repro.serving.errors import (
    ApiError,
    CODE_INTERNAL,
    CODE_INVALID_REQUEST,
    CODE_NOT_FOUND,
    CODE_PAYLOAD_TOO_LARGE,
    CODE_SHUTTING_DOWN,
    CODE_TIMEOUT,
)
from repro.serving.router import DEFAULT_TENANT, ModelRouter

_log = get_struct_logger("serving.server")

#: Largest accepted request body (a 64x64 float image in JSON is ~100 KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Default per-request wall-clock budget awaiting a worker result.
DEFAULT_REQUEST_TIMEOUT_S = 30.0

#: Header naming the rate-limiting tenant of a request.
TENANT_HEADER = "X-Tenant"

_MODEL_PREDICT = re.compile(r"^/v1/models/([^/]+)/predict$")
_VERSION_PREDICT = re.compile(r"^/v1/models/([^/]+)/versions/([^/]+)/predict$")
_MODEL_HEALTHZ = re.compile(r"^/v1/models/([^/]+)/healthz$")

#: Successor route advertised in each deprecated alias's ``Link`` header.
_ALIAS_SUCCESSOR = {
    "/predict": "/v1/models/{model}/predict",
    "/healthz": "/v1/models/{model}/healthz",
    "/metrics": "/v1/metrics",
    "/metrics.json": "/v1/metrics.json",
}


class _ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the router/server references."""

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default listen backlog (5) drops/resets connections
    # when a burst of clients connects at once — exactly the load-generator
    # and CI-hammer shape.  A deeper accept queue absorbs the burst.
    request_queue_size = 128

    router: ModelRouter
    request_timeout_s: float
    quiet: bool


class _Handler(BaseHTTPRequestHandler):
    server: _ServingHTTPServer

    #: Trace context of the in-flight request (set per request by the GET/
    #: POST entry points; ``None`` for untraced requests).
    _trace: Optional[TraceContext] = None

    # -- plumbing ------------------------------------------------------------

    def _read_trace_header(self) -> bool:
        """Parse :data:`TRACE_HEADER` into ``self._trace``.

        Returns ``False`` (after sending the 400) when the header is
        present but malformed.
        """
        self._trace = None
        try:
            self._trace = TraceContext.from_headers(self.headers)
        except ValueError as error:
            self._send_api_error(ApiError(CODE_INVALID_REQUEST, str(error)))
            return False
        return True

    def _trace_headers(self) -> Dict[str, str]:
        """Response header echoing the request's trace id (empty untraced)."""
        if self._trace is None:
            return {}
        return {TRACE_HEADER: self._trace.trace_id}

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - CLI verbose mode
            super().log_message(format, *args)

    def _deprecation_headers(self, alias: str) -> Dict[str, str]:
        successor = _ALIAS_SUCCESSOR[alias]
        if "{model}" in successor:
            model = self.server.router.default_model or "default"
            successor = successor.format(model=model)
        return {"Deprecation": "true",
                "Link": f'<{successor}>; rel="successor-version"'}

    def _send_json(self, status: int, payload: object,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        merged = {**self._trace_headers(), **(headers or {})}
        for key, value in merged.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str,
                   headers: Optional[Dict[str, str]] = None) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        merged = {**self._trace_headers(), **(headers or {})}
        for key, value in merged.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_api_error(self, error: ApiError,
                        headers: Optional[Dict[str, str]] = None) -> None:
        merged = dict(headers or {})
        retry_after = error.retry_after_header
        if retry_after is not None:
            merged["Retry-After"] = retry_after
        _log.warning("request_rejected", path=self.path, status=error.status,
                     code=error.code, error=error.message)
        self._send_json(error.status, error.envelope(), merged)

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if not self._read_trace_header():
            return
        try:
            self._route_get()
        except ApiError as error:
            self._send_api_error(error)
        except Exception as error:  # noqa: BLE001 - last-resort envelope
            self._send_api_error(ApiError(
                CODE_INTERNAL, f"{type(error).__name__}: {error}"
            ))

    def _route_get(self) -> None:
        router = self.server.router
        path = self.path
        if path == "/v1/models":
            self._send_json(200, {"models": router.list_models()})
            return
        match = _MODEL_HEALTHZ.match(path)
        if match:
            self._send_json(200, router.health(match.group(1)))
            return
        if path == "/v1/healthz":
            entries = router.entries()
            self._send_json(200, {
                "status": "ok" if any(entry.pool.running for entry in entries)
                else "stopped",
                "models": [entry.key for entry in entries],
                "default_model": router.default_model,
            })
            return
        if path == "/v1/metrics":
            self._send_text(
                200, render_prometheus_multi(router.metrics_snapshots()),
                PROMETHEUS_CONTENT_TYPE,
            )
            return
        if path == "/v1/metrics.json":
            self._send_json(200, {"models": router.metrics_snapshots()})
            return
        # -- deprecated single-model aliases (bit-identical to v1.6.0) ------
        if path in ("/healthz", "/metrics", "/metrics.json"):
            pool = router.default_entry().pool
            headers = self._deprecation_headers(path)
            if path == "/healthz":
                self._send_json(200, {
                    "status": "ok" if pool.running else "stopped",
                    "model": pool.model_name,
                    "n_input": pool.n_input,
                    "workers": pool.workers,
                    "queue_depth": pool.queue_depth,
                    "max_batch": pool.batcher.max_batch,
                    "max_wait_ms": pool.batcher.max_wait_ms,
                }, headers)
            elif path == "/metrics":
                self._send_text(200, render_prometheus(pool.metrics_snapshot()),
                                PROMETHEUS_CONTENT_TYPE, headers)
            else:
                self._send_json(200, pool.metrics_snapshot(), headers)
            return
        raise ApiError(CODE_NOT_FOUND, f"unknown path {self.path!r}")

    # -- POST ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if not self._read_trace_header():
            return
        try:
            self._route_post()
        except ApiError as error:
            headers = (self._deprecation_headers("/predict")
                       if self.path == "/predict" else None)
            self._send_api_error(error, headers)
        except Exception as error:  # noqa: BLE001 - last-resort envelope
            self._send_api_error(ApiError(
                CODE_INTERNAL, f"{type(error).__name__}: {error}"
            ))

    def _route_post(self) -> None:
        path = self.path
        match = _MODEL_PREDICT.match(path)
        if match:
            self._handle_predict(match.group(1), None, legacy=False)
            return
        match = _VERSION_PREDICT.match(path)
        if match:
            self._handle_predict(match.group(1), match.group(2), legacy=False)
            return
        if path == "/predict":
            self._handle_predict(None, None, legacy=True)
            return
        raise ApiError(CODE_NOT_FOUND, f"unknown path {self.path!r}")

    def _handle_predict(self, name: Optional[str], version: Optional[str],
                        *, legacy: bool) -> None:
        image, seed = self._read_predict_body()
        router = self.server.router
        if legacy:
            entry = router.default_entry()
        else:
            entry = router.resolve(name, version)
        tenant = self.headers.get(TENANT_HEADER, DEFAULT_TENANT)
        if self._trace is None and tracing_forced():
            # REPRO_TRACE: trace every request; deterministic id when the
            # request pins a seed, random otherwise.
            self._trace = TraceContext(
                trace_id=trace_id_for_request(seed) if seed is not None
                else new_trace_id()
            )
        sink = getattr(entry.pool, "ledger", None)
        try:
            with trace_scope(self._trace, sink=sink):
                with span("http_request", route=self.path, tenant=tenant):
                    result = router.predict_entry(
                        entry, image, seed=seed, tenant=tenant,
                        timeout=self.server.request_timeout_s,
                    )
        except ValueError as error:
            raise ApiError(CODE_INVALID_REQUEST, str(error)) from None
        except FutureTimeoutError:
            raise ApiError(
                CODE_TIMEOUT, "request timed out awaiting a worker"
            ) from None
        except CancelledError:
            raise ApiError(
                CODE_SHUTTING_DOWN, "request was cancelled at shutdown"
            ) from None
        body = result.to_dict()
        if self._trace is not None:
            # Only traced responses grow the field — untraced bodies stay
            # bit-identical to the pre-tracing API.
            body["trace_id"] = self._trace.trace_id
        if legacy:
            body["model"] = entry.pool.model_name
            self._send_json(200, body, self._deprecation_headers("/predict"))
        else:
            body["model"] = entry.name
            body["version"] = (f"v{entry.version:04d}"
                               if entry.version is not None else None)
            self._send_json(200, body)

    def _read_predict_body(self) -> Tuple[np.ndarray, Optional[int]]:
        """Read and validate the predict payload; raises ``ApiError``."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ApiError(CODE_INVALID_REQUEST,
                           "invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise ApiError(
                CODE_PAYLOAD_TOO_LARGE,
                f"request body must be 1..{MAX_BODY_BYTES} bytes",
                detail={"max_bytes": MAX_BODY_BYTES, "got_bytes": length},
            )
        if length <= 0:
            raise ApiError(CODE_INVALID_REQUEST,
                           f"request body must be 1..{MAX_BODY_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ApiError(CODE_INVALID_REQUEST,
                           f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ApiError(CODE_INVALID_REQUEST,
                           "request body must be a JSON object")
        if "image" not in payload:
            raise ApiError(CODE_INVALID_REQUEST,
                           "request is missing the 'image' field")
        try:
            image = np.asarray(payload["image"], dtype=float)
        except (TypeError, ValueError):
            raise ApiError(CODE_INVALID_REQUEST,
                           "'image' must be a (nested) list of numbers") from None
        if not np.all(np.isfinite(image)):
            raise ApiError(CODE_INVALID_REQUEST,
                           "'image' contains non-finite values")
        if np.any(image < 0):
            raise ApiError(CODE_INVALID_REQUEST,
                           "'image' intensities must be non-negative")
        seed = payload.get("seed")
        if seed is not None:
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ApiError(CODE_INVALID_REQUEST,
                               "'seed' must be an integer")
        return image, seed


class ModelServer:
    """Lifecycle wrapper: bind, serve (optionally in the background), stop.

    Parameters
    ----------
    source:
        Either a :class:`~repro.serving.router.ModelRouter` (multi-model
        serving) or a single pool (``ReplicaPool``/``ShardProcessPool``),
        which is wrapped in a one-model router pinned under its model name —
        the pre-1.7 construction style keeps working unchanged.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address`).
    request_timeout_s:
        Per-request budget awaiting a worker result before ``504``.
    quiet:
        Suppress the per-request access log (default; the CLI turns it on
        with ``-v``).
    """

    def __init__(self, source, host: str = "127.0.0.1",
                 port: int = 0, *,
                 request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
                 quiet: bool = True) -> None:
        if isinstance(source, ModelRouter):
            self.router = source
            self.pool = None
        else:
            self.router = ModelRouter()
            self.router.add_pool(source.model_name, source)
            self.pool = source
        self._httpd = _ServingHTTPServer((host, port), _Handler)
        self._httpd.router = self.router
        self._httpd.request_timeout_s = float(request_timeout_s)
        self._httpd.quiet = bool(quiet)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ModelServer":
        """Start the pools and serve requests from a background thread."""
        self.router.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http", daemon=True,
            )
            self._thread.start()
        host, port = self.address
        _log.info("server_started", host=host, port=port,
                  models=[entry.key for entry in self.router.entries()])
        return self

    def serve_forever(self) -> None:
        """Start the pools and serve on the calling thread (CLI mode)."""
        self.router.start()
        self._serving = True
        try:
            self._httpd.serve_forever()
        finally:
            self._serving = False

    def stop(self) -> None:
        """Stop accepting connections, then drain and stop the pools.

        ``shutdown()`` blocks until the serve loop acknowledges, so it is
        only issued when a loop is (or was) actually running — calling
        :meth:`stop` on a server whose loop never started must not hang.
        """
        if self._thread is not None or self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        self.router.stop()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Thread-safe micro-batching request queue.

Concurrent callers :meth:`MicroBatcher.submit` individual requests and get a
:class:`~concurrent.futures.Future` back; worker threads call
:meth:`MicroBatcher.next_batch`, which coalesces up to ``max_batch`` queued
requests into one list, waiting at most ``max_wait_ms`` after the first
request of a batch for stragglers.  That window is the classic
latency/throughput dial: ``0`` serves every request the moment a worker is
free, larger values trade a bounded queueing delay for bigger batches
through ``Network.run_batch``.

Backpressure is explicit: the queue holds at most ``max_queue`` pending
requests and :meth:`submit` raises :class:`QueueFullError` beyond that —
the HTTP layer maps it to ``503`` so overload sheds load instead of growing
an unbounded queue.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.observability.tracing import TraceContext, current_trace
from repro.serving.inference import PredictRequest
from repro.utils.validation import check_non_negative, check_positive_int


class QueueFullError(RuntimeError):
    """The request queue is at capacity; the caller should shed load."""


class QueueClosedError(RuntimeError):
    """The batcher has been closed and accepts no new requests."""


@dataclass
class PendingRequest:
    """A queued request together with its completion future.

    ``trace`` snapshots the submitting thread's trace context (``None``
    when tracing is inactive) so worker threads can parent their spans —
    and account the queue wait — under the request's HTTP span.
    """

    request: PredictRequest
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    trace: Optional[TraceContext] = field(default_factory=current_trace)


class MicroBatcher:
    """Coalesce concurrent requests into micro-batches.

    Parameters
    ----------
    max_batch:
        Largest number of requests handed to a worker at once.
    max_wait_ms:
        How long a forming batch waits for stragglers after its first
        request is claimed.  ``0`` disables coalescing waits entirely.
    max_queue:
        Backpressure bound on pending (unclaimed) requests.
    """

    def __init__(self, max_batch: int = 32, max_wait_ms: float = 5.0,
                 max_queue: int = 1024) -> None:
        self.max_batch = check_positive_int(max_batch, "max_batch")
        self.max_wait_ms = check_non_negative(max_wait_ms, "max_wait_ms")
        self.max_queue = check_positive_int(max_queue, "max_queue")
        self._queue: Deque[PendingRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # -- producer side -------------------------------------------------------

    def submit(self, request: PredictRequest) -> Future:
        """Enqueue one request; returns the future its result will land in."""
        pending = PendingRequest(request=request)
        with self._not_empty:
            if self._closed:
                raise QueueClosedError("batcher is closed")
            if len(self._queue) >= self.max_queue:
                raise QueueFullError(
                    f"request queue is full ({self.max_queue} pending)"
                )
            self._queue.append(pending)
            self._not_empty.notify()
        return pending.future

    @property
    def depth(self) -> int:
        """Number of pending (unclaimed) requests."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- consumer side -------------------------------------------------------

    def next_batch(self, timeout: Optional[float] = None
                   ) -> Optional[List[PendingRequest]]:
        """Claim the next micro-batch of up to ``max_batch`` requests.

        Blocks up to ``timeout`` seconds for the first request.  Once one is
        claimed, keeps absorbing queued requests until the batch is full or
        ``max_wait_ms`` has elapsed since the batch started forming.

        Returns ``[]`` when the timeout expires with nothing queued (the
        caller should loop) and ``None`` when the batcher is closed and
        fully drained (the caller should exit).
        """
        with self._not_empty:
            if not self._queue:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
                if not self._queue:
                    return None if self._closed else []
            batch = [self._queue.popleft()]
            deadline = time.perf_counter() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(remaining)
                if not self._queue:
                    # Timed out (or spurious wakeup past the deadline).
                    if time.perf_counter() >= deadline or self._closed:
                        break
            return batch

    # -- lifecycle -----------------------------------------------------------

    def close(self, cancel_pending: bool = False) -> None:
        """Refuse new submissions; optionally cancel still-queued requests.

        Without ``cancel_pending`` the already-queued requests remain
        claimable, so workers can drain the queue before exiting.
        """
        with self._not_empty:
            self._closed = True
            if cancel_pending:
                while self._queue:
                    self._queue.popleft().future.cancel()
            self._not_empty.notify_all()

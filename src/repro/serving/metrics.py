"""Thread-safe serving metrics: counters, batch histogram, latency quantiles.

One :class:`ServingMetrics` instance is shared by the replica pool's worker
threads and the HTTP layer.  Latencies are kept in a bounded ring buffer
(the most recent ``latency_window`` requests) and the p50/p95/p99 quantiles
are computed on demand when ``/metrics`` (Prometheus text) or
``/metrics.json`` is scraped, so the per-request bookkeeping cost is a
deque append under a lock.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Deque, Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive_int

#: Quantiles reported by :meth:`ServingMetrics.snapshot`.
LATENCY_QUANTILES = (50, 95, 99)


class ServingMetrics:
    """Aggregate request/batch/latency statistics of one serving deployment."""

    def __init__(self, latency_window: int = 4096) -> None:
        self.latency_window = check_positive_int(latency_window, "latency_window")
        self._lock = threading.Lock()
        self._requests_total = 0
        self._responses_total = 0
        self._errors_total = 0
        self._rejected_total = 0
        self._batches_total = 0
        self._batch_sizes: Counter = Counter()
        self._latencies_ms: Deque[float] = deque(maxlen=self.latency_window)
        self._started_at = time.time()

    # -- recording -----------------------------------------------------------

    def record_request(self) -> None:
        """One request accepted into the queue."""
        with self._lock:
            self._requests_total += 1

    def record_rejected(self) -> None:
        """One request shed by backpressure (queue full)."""
        with self._lock:
            self._rejected_total += 1

    def record_batch(self, size: int, latencies_s: Sequence[float]) -> None:
        """One completed micro-batch with its per-request latencies."""
        with self._lock:
            self._batches_total += 1
            self._batch_sizes[int(size)] += 1
            self._responses_total += int(size)
            for latency in latencies_s:
                self._latencies_ms.append(float(latency) * 1000.0)

    def record_errors(self, count: int = 1) -> None:
        """``count`` requests failed inside a worker."""
        with self._lock:
            self._errors_total += int(count)

    # -- reading -------------------------------------------------------------

    def snapshot(
        self, queue_depth: Optional[int] = None, drift: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """JSON-safe view of every metric (the ``/metrics.json`` payload).

        The latency section is fully defined at every window size:

        * **empty window** — quantiles, mean, and max are reported as an
          explicit ``0.0`` (never NaN, never absent), so scrapers see a
          stable schema from the first scrape on;
        * **single sample** — every quantile equals that sample;
        * **full window** — linear-interpolated percentiles over the ring
          buffer (the most recent ``latency_window`` requests).

        The ring buffer is copied under the lock, so a concurrent
        ``record_batch`` can never resize the window mid-computation.
        """
        with self._lock:
            latencies = np.asarray(self._latencies_ms, dtype=float)
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            batches_total = self._batches_total
            snapshot: Dict[str, object] = {
                "uptime_s": time.time() - self._started_at,
                "requests_total": self._requests_total,
                "responses_total": self._responses_total,
                "errors_total": self._errors_total,
                "rejected_total": self._rejected_total,
                "batches_total": self._batches_total,
                "batch_size_histogram": {str(size): count for size, count in batch_sizes.items()},
            }
        if batches_total:
            total = sum(size * count for size, count in batch_sizes.items())
            snapshot["mean_batch_size"] = total / max(sum(batch_sizes.values()), 1)
        latency: Dict[str, float] = {"window": float(latencies.size)}
        if latencies.size == 0:
            latency["mean_ms"] = 0.0
            latency["max_ms"] = 0.0
            for quantile in LATENCY_QUANTILES:
                latency[f"p{quantile}_ms"] = 0.0
        elif latencies.size == 1:
            single = float(latencies[0])
            latency["mean_ms"] = single
            latency["max_ms"] = single
            for quantile in LATENCY_QUANTILES:
                latency[f"p{quantile}_ms"] = single
        else:
            latency["mean_ms"] = float(latencies.mean())
            latency["max_ms"] = float(latencies.max())
            for quantile in LATENCY_QUANTILES:
                latency[f"p{quantile}_ms"] = float(np.percentile(latencies, quantile))
        snapshot["latency"] = latency
        if queue_depth is not None:
            snapshot["queue_depth"] = int(queue_depth)
        if drift is not None:
            snapshot["drift"] = drift
        return snapshot

"""Model artifact registry: versioned, self-describing saved models.

An *artifact* is the directory layout written by
:meth:`~repro.models.base.UnsupervisedDigitClassifier.save` — ``state.npz``
(learned input weights, neuron-label assignments, adaptive threshold
``theta``) next to ``model.json`` (schema version, full configuration, model
identity, encoder spec).  This module completes that layout into a serving
story:

* :func:`load_artifact` reads and *validates* an artifact without needing to
  know which model class or sizes produced it — the artifact is
  self-describing, so ``repro serve <dir>`` takes nothing but the path;
* :meth:`ModelArtifact.build_model` reconstructs the trained classifier,
  bit-for-bit (weights, theta, assignments);
* :class:`ArtifactRegistry` stores artifacts under ``<root>/<name>/v<NNNN>``
  with monotonically increasing versions, so a serving deployment can roll
  forward/back by version number.

Every validation failure raises
:class:`~repro.utils.serialization.ArtifactError` with the expected-vs-found
details; nothing is ever silently mis-loaded.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.backends import available_backends, describe_backend
from repro.core.config import SpikeDynConfig
from repro.models.asp_model import ASPModel
from repro.models.base import (
    UnsupervisedDigitClassifier,
    apply_artifact_state,
    read_artifact_dir,
    validate_artifact_arrays,
)
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel
from repro.utils.serialization import ArtifactError

PathLike = Union[str, Path]

#: Model classes reconstructible from an artifact, keyed by the model name
#: recorded in its metadata (the same keys as the experiment drivers use).
MODEL_CLASSES: Dict[str, Type[UnsupervisedDigitClassifier]] = {
    "baseline": DiehlCookModel,
    "asp": ASPModel,
    "spikedyn": SpikeDynModel,
}

_VERSION_DIR = re.compile(r"^v(\d{4,})$")


@dataclass
class ModelArtifact:
    """A loaded-and-validated model artifact.

    Attributes
    ----------
    path:
        Directory the artifact was loaded from.
    schema_version:
        Artifact layout version (``1`` for legacy pre-serving saves).
    model_name:
        Registry key of the model class (``baseline`` / ``asp`` /
        ``spikedyn``).
    config:
        The full hyperparameter bundle the model was trained with.
    meta:
        The model's ``describe()`` dictionary at save time.
    encoder:
        Self-describing encoder spec (type, duration, dt, rate constants);
        empty for legacy artifacts.
    arrays:
        The stored state arrays (``input_weights``, ``assignments``, and
        ``theta`` when present).
    backend:
        Compute backend the model was saved under (``"dense"`` for pre-v3
        artifacts).  The arrays are backend-agnostic; this is the default
        backend :meth:`build_model` rebuilds replicas on.
    """

    path: Path
    schema_version: int
    model_name: str
    config: SpikeDynConfig
    meta: Dict[str, object]
    encoder: Dict[str, object]
    arrays: Dict[str, np.ndarray]
    backend: str = "dense"

    @property
    def n_input(self) -> int:
        return self.config.n_input

    @property
    def n_exc(self) -> int:
        return self.config.n_exc

    def describe(self) -> Dict[str, object]:
        """Small JSON-safe summary (for ``/healthz`` and reports)."""
        return {
            "path": str(self.path),
            "schema_version": self.schema_version,
            "model": self.model_name,
            "n_input": self.n_input,
            "n_exc": self.n_exc,
            "samples_trained": self.meta.get("samples_trained", 0),
            "backend": self.backend,
            "encoder": dict(self.encoder),
        }

    def build_model(self, *, eval_batch_size: Optional[int] = None,
                    backend: Optional[str] = None
                    ) -> UnsupervisedDigitClassifier:
        """Reconstruct the trained classifier from this artifact.

        A fresh network is built from the stored configuration and its
        learned state is overwritten with the stored arrays, so repeated
        calls return *independent* model instances with bit-identical
        weights, assignments, and theta — exactly what the replica pool
        needs to shard load across workers.

        ``backend`` selects the compute backend of the rebuilt network and
        defaults to the backend recorded in the artifact; the stored state
        is backend-agnostic, so any registered backend is valid.
        """
        if self.model_name not in MODEL_CLASSES:
            known = ", ".join(sorted(MODEL_CLASSES))
            raise ArtifactError(
                f"artifact at {self.path} names unknown model "
                f"{self.model_name!r}; known models: {known}"
            )
        cls = MODEL_CLASSES[self.model_name]
        build_backend = self.backend if backend is None else backend
        # Loading an artifact that records an unavailable backend succeeds
        # (the arrays are backend-agnostic), but rebuilding on it cannot:
        # fail here with the artifact context and the override escape hatch
        # instead of letting the registry's bare RuntimeError surface.
        info = describe_backend(build_backend)
        if not info["available"]:
            usable = ", ".join(sorted(available_backends()))
            raise ArtifactError(
                f"artifact at {self.path} records compute backend "
                f"{build_backend!r}, which is registered but not available "
                f"in this environment; rebuild with build_model(backend=...) "
                f"on an available backend ({usable})"
            )
        build_kwargs: Dict[str, object] = {"backend": build_backend}
        if eval_batch_size is not None:
            build_kwargs["eval_batch_size"] = eval_batch_size
        model = cls(self.config, **build_kwargs)
        # The arrays were validated at load time and the model is built
        # from the stored config, so the in-memory state applies directly —
        # no disk round-trip, and the artifact directory may since be gone.
        apply_artifact_state(model, self.arrays, {"meta": self.meta})
        return model


def save_artifact(model: UnsupervisedDigitClassifier,
                  directory: PathLike) -> Path:
    """Save ``model`` as a self-describing artifact (alias of ``model.save``)."""
    return model.save(directory)


def load_artifact(directory: PathLike) -> ModelArtifact:
    """Load and validate the artifact stored in ``directory``.

    Raises
    ------
    ArtifactError
        If the directory is not an artifact, its schema version is newer
        than supported, its configuration is invalid, or any stored array is
        missing or mis-shaped for the declared architecture.
    """
    directory = Path(directory)
    metadata, arrays, schema_version, backend = read_artifact_dir(directory)
    try:
        config = SpikeDynConfig.from_dict(metadata["config"])
    except (TypeError, ValueError) as error:
        raise ArtifactError(
            f"{directory} carries an invalid configuration: {error}"
        ) from error
    meta = dict(metadata.get("meta", {}))
    model_name = str(meta.get("name", "spikedyn"))
    validate_artifact_arrays(
        arrays,
        n_input=config.n_input,
        n_exc=config.n_exc,
        schema_version=schema_version,
        source=directory,
    )
    return ModelArtifact(
        path=directory,
        schema_version=schema_version,
        model_name=model_name,
        config=config,
        meta=meta,
        encoder=dict(metadata.get("encoder", {})),
        arrays=arrays,
        backend=backend,
    )


class ArtifactRegistry:
    """Versioned on-disk store of model artifacts.

    Layout: ``<root>/<name>/v0001``, ``<root>/<name>/v0002``, ... — one
    artifact directory per version, assigned monotonically by
    :meth:`publish`.  Loading without an explicit version returns the
    latest.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # -- write ---------------------------------------------------------------

    def publish(self, model: UnsupervisedDigitClassifier,
                name: Optional[str] = None) -> Path:
        """Save ``model`` as the next version of ``name`` (default: its name)."""
        name = self._check_name(model.name if name is None else name)
        version = self.latest_version(name) + 1
        directory = self.root / name / f"v{version:04d}"
        return model.save(directory)

    # -- read ----------------------------------------------------------------

    def versions(self, name: str) -> List[int]:
        """Sorted list of the published versions of ``name``."""
        directory = self.root / self._check_name(name)
        if not directory.is_dir():
            return []
        found = []
        for child in directory.iterdir():
            match = _VERSION_DIR.match(child.name)
            if match and child.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """Highest published version of ``name`` (0 when none exist)."""
        versions = self.versions(name)
        return versions[-1] if versions else 0

    def path_of(self, name: str, version: Optional[int] = None) -> Path:
        """Directory of ``name``'s ``version`` (default: the latest)."""
        name = self._check_name(name)
        if version is None:
            version = self.latest_version(name)
            if version == 0:
                raise ArtifactError(
                    f"registry at {self.root} has no artifact named {name!r}"
                )
        directory = self.root / name / f"v{int(version):04d}"
        if not directory.is_dir():
            raise ArtifactError(
                f"registry at {self.root} has no version {version} of {name!r} "
                f"(published: {self.versions(name) or 'none'})"
            )
        return directory

    def load(self, name: str, version: Optional[int] = None) -> ModelArtifact:
        """Load-and-validate ``name`` at ``version`` (default: the latest)."""
        return load_artifact(self.path_of(name, version))

    def list_artifacts(self) -> List[Tuple[str, List[int]]]:
        """All ``(name, versions)`` pairs in the registry, sorted by name."""
        if not self.root.is_dir():
            return []
        entries = []
        for child in sorted(self.root.iterdir()):
            if child.is_dir():
                versions = self.versions(child.name)
                if versions:
                    entries.append((child.name, versions))
        return entries

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> str:
        name = str(name)
        if not re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9._-]*", name):
            raise ValueError(
                "artifact names must be alphanumeric plus '._-' "
                f"(got {name!r})"
            )
        return name

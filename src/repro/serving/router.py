"""Multi-tenant model routing: LRU loading, rate limits, breaker, retry.

:class:`ModelRouter` is the control plane between the HTTP surface and the
inference pools.  It owns the *model table*: **pinned** models (given
explicitly at start-up, never evicted) plus **registry-backed** models
loaded on first request from an :class:`~repro.serving.artifacts.ArtifactRegistry`
and evicted least-recently-used once more than ``max_models`` are resident.
Each resident model gets its own pool (thread- or process-sharded — the
router is policy-only and builds pools through an injected factory), its
own circuit breaker, and a token bucket per tenant.

The request path through :meth:`predict` is hardened in order:

1. **rate limit** — the ``(model, tenant)`` token bucket; an empty bucket
   raises :class:`~repro.serving.errors.RateLimitedError` (HTTP 429 with
   ``Retry-After``), so one noisy tenant cannot starve the rest;
2. **circuit breaker** — a model whose breaker is open sheds load
   instantly (:class:`~repro.serving.errors.CircuitOpenError`, 503 with
   ``Retry-After``) instead of queueing doomed work;
3. **bounded retry** — transient shard crashes
   (:class:`~repro.serving.errors.ShardCrashedError`) are retried with
   jittered exponential backoff up to ``retries`` times, because the shard
   pool respawns dead workers and a fresh process normally succeeds;
4. **breaker bookkeeping** — model/shard failures feed the breaker,
   backpressure (a full queue) deliberately does not: an overloaded model
   is healthy, a crashing one is not.
"""

from __future__ import annotations

import random
import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import CancelledError
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.observability.structlog import get_struct_logger
from repro.serving.artifacts import ArtifactError, ArtifactRegistry
from repro.serving.batcher import QueueClosedError, QueueFullError
from repro.serving.errors import (
    ApiError,
    CircuitOpenError,
    CODE_QUEUE_FULL,
    CODE_SHUTTING_DOWN,
    CODE_UPSTREAM_FAILURE,
    ModelNotFoundError,
    RateLimitedError,
    ShardCrashedError,
)
from repro.serving.inference import PredictResult
from repro.serving.ratelimit import CircuitBreaker, TokenBucket

_log = get_struct_logger("serving.router")

#: Tenant assumed when a request carries no ``X-Tenant`` header.
DEFAULT_TENANT = "default"

#: Accepted spellings of a version selector: ``v3``, ``v0003``, ``3``.
_VERSION_RE = re.compile(r"^v?(\d{1,9})$")

#: A pool factory builds (but does not start) a pool for an artifact dir.
PoolFactory = Callable[[str], object]


def parse_version(version) -> int:
    """Normalize a version selector (``"v0003"``, ``"3"``, ``3``) to int."""
    if isinstance(version, int):
        number = version
    else:
        match = _VERSION_RE.match(str(version))
        if not match:
            raise ApiError(
                "invalid_request",
                f"invalid version selector {version!r} (expected e.g. 'v3')",
            )
        number = int(match.group(1))
    if number < 1:
        raise ApiError(
            "invalid_request",
            f"version must be >= 1, got {number}",
        )
    return number


class _ModelEntry:
    """One resident model: its pool plus per-model hardening state."""

    def __init__(self, name: str, version: Optional[int], pool,
                 breaker: Optional[CircuitBreaker], pinned: bool) -> None:
        self.name = name
        self.version = version
        self.pool = pool
        self.breaker = breaker
        self.pinned = pinned
        self.buckets: Dict[str, TokenBucket] = {}
        self.bucket_lock = threading.Lock()
        self.rate_limited_total = 0
        self.shed_total = 0
        self.retries_total = 0

    @property
    def key(self) -> str:
        """Stable identifier used in metrics labels and health payloads."""
        if self.version is None:
            return self.name
        return f"{self.name}@v{self.version:04d}"


class ModelRouter:
    """Routes requests to per-model pools with multi-tenant hardening.

    Parameters
    ----------
    pool_factory:
        Builds an (unstarted) pool — anything with the
        ``ReplicaPool``/``ShardProcessPool`` surface — from an artifact
        directory.  The router starts and stops what the factory builds.
    registry:
        Optional registry for on-demand loading; without it only pinned
        models are served.
    max_models:
        Cap on *registry-loaded* models resident at once (pinned models
        don't count); the least-recently-used entry is evicted past it.
    rate_rps, rate_burst:
        Per-``(model, tenant)`` token-bucket parameters;
        ``rate_rps=None`` disables rate limiting.
    breaker_failures, breaker_window_s, breaker_reset_s:
        Per-model circuit breaker; ``breaker_failures=None`` disables it.
    retries, retry_backoff_s:
        Bounded retry for transient shard crashes: up to ``retries``
        re-attempts with jittered exponential backoff starting at
        ``retry_backoff_s``.
    sleep, rng:
        Injectable backoff primitives (tests pass fakes).
    """

    def __init__(self, pool_factory: Optional[PoolFactory] = None, *,
                 registry: Optional[ArtifactRegistry] = None,
                 max_models: int = 4,
                 rate_rps: Optional[float] = None,
                 rate_burst: Optional[float] = None,
                 breaker_failures: Optional[int] = 5,
                 breaker_window_s: float = 30.0,
                 breaker_reset_s: float = 5.0,
                 retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None) -> None:
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if registry is not None and pool_factory is None:
            raise ValueError(
                "a registry-backed router needs a pool_factory to load "
                "artifacts with"
            )
        self.pool_factory = pool_factory
        self.registry = registry
        self.max_models = int(max_models)
        self.rate_rps = rate_rps
        self.rate_burst = rate_burst
        self.breaker_failures = breaker_failures
        self.breaker_window_s = float(breaker_window_s)
        self.breaker_reset_s = float(breaker_reset_s)
        self.retries = int(retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.RLock()
        self._pinned: Dict[str, _ModelEntry] = {}
        # Registry-loaded entries keyed (name, version); OrderedDict order
        # IS the LRU order (most recently used last).
        self._loaded: "OrderedDict[Tuple[str, int], _ModelEntry]" = OrderedDict()
        # Keys being loaded right now: pool build/start runs outside the
        # router lock, and concurrent requesters for the same key wait on
        # the per-key event instead of stalling every model's traffic.
        self._loading: Dict[Tuple[str, int], threading.Event] = {}
        self._closed = False
        self.evictions_total = 0

    # -- model table ---------------------------------------------------------

    def _make_breaker(self) -> Optional[CircuitBreaker]:
        if self.breaker_failures is None:
            return None
        return CircuitBreaker(failure_threshold=self.breaker_failures,
                              window_s=self.breaker_window_s,
                              reset_s=self.breaker_reset_s)

    def add_model(self, name: str, artifact_dir, *,
                  version: Optional[int] = None) -> None:
        """Pin ``name`` to ``artifact_dir``: loaded now, never evicted."""
        if self.pool_factory is None:
            raise RuntimeError(
                "this router has no pool_factory; use add_pool() with a "
                "pre-built pool instead"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("router is stopped")
            if name in self._pinned:
                raise ValueError(f"model {name!r} is already pinned")
            pool = self.pool_factory(str(artifact_dir))
            pool.start()
            self._pinned[name] = _ModelEntry(
                name, version, pool, self._make_breaker(), pinned=True
            )
        _log.info("model_pinned", model=name,
                  artifact_dir=str(artifact_dir))

    def add_pool(self, name: str, pool, *,
                 version: Optional[int] = None) -> None:
        """Pin an already-built pool as ``name`` (started by :meth:`start`)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("router is stopped")
            if name in self._pinned:
                raise ValueError(f"model {name!r} is already pinned")
            self._pinned[name] = _ModelEntry(
                name, version, pool, self._make_breaker(), pinned=True
            )
        _log.info("model_pinned", model=name)

    @property
    def default_model(self) -> Optional[str]:
        """The first pinned model — the target of the legacy endpoints."""
        with self._lock:
            for name in self._pinned:
                return name
            for name, _version in self._loaded:
                return name
        return None

    def default_entry(self) -> _ModelEntry:
        """Entry behind the legacy single-model endpoints.

        Resolved under one lock acquisition, so an eviction (or stop)
        racing between the name lookup and the entry lookup surfaces as a
        404, never as an internal error.
        """
        with self._lock:
            if self._closed:
                raise ApiError(CODE_SHUTTING_DOWN, "server is shutting down")
            for entry in self._pinned.values():
                return entry
            first_name = next((key_name for key_name, _ in self._loaded),
                              None)
            if first_name is not None:
                candidates = [entry for (key_name, _), entry
                              in self._loaded.items()
                              if key_name == first_name]
                return max(candidates, key=lambda entry: entry.version or 0)
        raise ModelNotFoundError(
            "no models are loaded", detail={"loaded": []}
        )

    def start(self) -> "ModelRouter":
        """Start every resident pool (idempotent, like the pools)."""
        for entry in self.entries():
            entry.pool.start()
        return self

    def resolve(self, name: str, version=None) -> _ModelEntry:
        """The entry serving ``name`` (``version`` or latest), loading it
        from the registry — and evicting the LRU entry — if needed.

        Loading is slow (a process-sharded pool blocks until every shard
        has the artifact in memory), so it runs *outside* the router lock:
        the key is reserved under the lock, the pool is built and started
        unlocked, and the finished entry is published under the lock again.
        Concurrent requesters for the same key wait on a per-key event; a
        cold load of one model never stalls traffic to the others.
        """
        wanted = parse_version(version) if version is not None else None
        while True:
            with self._lock:
                if self._closed:
                    raise ApiError(CODE_SHUTTING_DOWN,
                                   "server is shutting down")
                pinned = self._pinned.get(name)
                if pinned is not None and (wanted is None
                                           or pinned.version == wanted):
                    return pinned
                if self.registry is None:
                    raise ModelNotFoundError(
                        f"no model named {name!r}"
                        + (f" at version v{wanted}" if wanted else ""),
                        detail={"model": name,
                                "loaded": sorted(self._pinned)},
                    )
                try:
                    path = self.registry.path_of(name, wanted)
                except (ArtifactError, ValueError) as error:
                    raise ModelNotFoundError(str(error),
                                             detail={"model": name}) from None
                resolved = wanted if wanted is not None \
                    else self.registry.latest_version(name)
                key = (name, resolved)
                entry = self._loaded.get(key)
                if entry is not None:
                    self._loaded.move_to_end(key)
                    return entry
                loading = self._loading.get(key)
                if loading is None:
                    loading = threading.Event()
                    self._loading[key] = loading
                    break
            # Another thread is loading this key: wait off-lock, then
            # re-check the table (the load may also have failed).
            loading.wait()
        try:
            pool = self.pool_factory(str(path))
            pool.start()
        except BaseException:
            with self._lock:
                self._loading.pop(key, None)
            loading.set()
            raise
        evicted = []
        with self._lock:
            self._loading.pop(key, None)
            closed = self._closed
            if not closed:
                entry = _ModelEntry(name, resolved, pool,
                                    self._make_breaker(), pinned=False)
                self._loaded[key] = entry
                while len(self._loaded) > self.max_models:
                    _, victim = self._loaded.popitem(last=False)
                    evicted.append(victim)
                    self.evictions_total += 1
        loading.set()
        if closed:
            # The router stopped while we were loading; this pool was
            # never published, so stop() could not have reached it.
            pool.stop(timeout=5.0, cancel_pending=True)
            raise ApiError(CODE_SHUTTING_DOWN, "server is shutting down")
        _log.info("model_loaded", model=name, version=resolved,
                  resident=len(self._loaded))
        for victim in evicted:
            victim.pool.stop(timeout=5.0, cancel_pending=True)
            _log.info("model_evicted", model=victim.name,
                      version=victim.version)
        return entry

    def entry_if_loaded(self, name: str,
                        version=None) -> Optional[_ModelEntry]:
        """The resident entry for ``name`` (no loading side effects)."""
        wanted = parse_version(version) if version is not None else None
        with self._lock:
            pinned = self._pinned.get(name)
            if pinned is not None and (wanted is None
                                       or pinned.version == wanted):
                return pinned
            if wanted is not None:
                return self._loaded.get((name, wanted))
            candidates = [entry for (key_name, _), entry
                          in self._loaded.items() if key_name == name]
            if not candidates:
                return None
            return max(candidates, key=lambda entry: entry.version or 0)

    def entries(self) -> List[_ModelEntry]:
        """Every resident entry (pinned first), for metrics export."""
        with self._lock:
            return list(self._pinned.values()) + list(self._loaded.values())

    def list_models(self) -> List[dict]:
        """The model catalogue: resident models plus the registry listing."""
        catalogue: "OrderedDict[str, dict]" = OrderedDict()
        with self._lock:
            for name, entry in sorted(self._pinned.items()):
                catalogue[name] = {
                    "name": name,
                    "pinned": True,
                    "loaded_versions": [entry.version],
                    "registry_versions": [],
                }
            for (name, resolved), _entry in self._loaded.items():
                record = catalogue.setdefault(name, {
                    "name": name, "pinned": False,
                    "loaded_versions": [], "registry_versions": [],
                })
                record["loaded_versions"].append(resolved)
        if self.registry is not None:
            for name, versions in self.registry.list_artifacts():
                record = catalogue.setdefault(name, {
                    "name": name, "pinned": False,
                    "loaded_versions": [], "registry_versions": [],
                })
                record["registry_versions"] = versions
        for record in catalogue.values():
            record["loaded_versions"] = sorted(
                v for v in record["loaded_versions"] if v is not None
            ) or record["loaded_versions"]
        return list(catalogue.values())

    # -- request path --------------------------------------------------------

    def _bucket(self, entry: _ModelEntry, tenant: str) -> Optional[TokenBucket]:
        if self.rate_rps is None:
            return None
        with entry.bucket_lock:
            bucket = entry.buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate_rps, self.rate_burst)
                entry.buckets[tenant] = bucket
            return bucket

    def predict(self, name: str, image: np.ndarray,
                seed: Optional[int] = None, *, version=None,
                tenant: str = DEFAULT_TENANT,
                timeout: Optional[float] = None) -> PredictResult:
        """One hardened prediction: limit, shed, retry, account.

        Raises :class:`ApiError` subclasses for routing-layer rejections;
        pool-level ``ValueError`` (bad image) and future timeouts propagate
        unchanged so the HTTP layer maps them exactly as before.
        """
        entry = self.resolve(name, version)
        return self.predict_entry(entry, image, seed=seed, tenant=tenant,
                                  timeout=timeout)

    def predict_entry(self, entry: _ModelEntry, image: np.ndarray,
                      seed: Optional[int] = None, *,
                      tenant: str = DEFAULT_TENANT,
                      timeout: Optional[float] = None) -> PredictResult:
        """The hardened request path against an already-resolved entry."""
        bucket = self._bucket(entry, tenant)
        if bucket is not None and not bucket.try_acquire():
            entry.rate_limited_total += 1
            raise RateLimitedError(
                f"tenant {tenant!r} exceeded {self.rate_rps:g} requests/s "
                f"for model {entry.key!r}",
                retry_after_s=bucket.retry_after(),
                detail={"model": entry.key, "tenant": tenant,
                        "rate_rps": self.rate_rps},
            )
        breaker = entry.breaker
        if breaker is not None and not breaker.allow():
            entry.shed_total += 1
            raise CircuitOpenError(
                f"model {entry.key!r} is shedding load "
                "(circuit breaker open)",
                retry_after_s=breaker.retry_after(),
                detail={"model": entry.key, **breaker.state()},
            )
        last_crash: Optional[ShardCrashedError] = None
        # Every breaker.allow() that admitted us may have taken a half-open
        # probe slot; exactly one of record_success / record_failure /
        # release_probe must run, or the slot leaks and the model sheds
        # all traffic forever.  Outcomes that say nothing about model
        # health (bad input, backpressure, timeout, cancellation) release
        # the slot in the finally below.
        verdict_recorded = breaker is None
        try:
            for attempt in range(self.retries + 1):
                try:
                    result = entry.pool.predict(image, seed=seed,
                                                timeout=timeout)
                except ShardCrashedError as error:
                    last_crash = error
                    if breaker is not None:
                        breaker.record_failure()
                        verdict_recorded = True
                    if attempt < self.retries:
                        entry.retries_total += 1
                        backoff = self.retry_backoff_s * (2 ** attempt)
                        self._sleep(backoff * (0.5 + self._rng.random()))
                        continue
                except QueueFullError as error:
                    # Backpressure is health, not failure: 429 the caller,
                    # leave the breaker alone.
                    raise ApiError(
                        CODE_QUEUE_FULL, str(error), retry_after_s=1.0,
                        detail={"model": entry.key,
                                "queue_depth": entry.pool.queue_depth},
                    ) from None
                except QueueClosedError as error:
                    # A closed queue on a live router means *this model*
                    # was evicted/stopped, not that the server is going
                    # down — tell the client to retry, not to disconnect.
                    if self._closed:
                        raise ApiError(CODE_SHUTTING_DOWN,
                                       str(error)) from None
                    raise ApiError(
                        CODE_UPSTREAM_FAILURE,
                        f"model {entry.key!r} was unloaded mid-request; "
                        "retry",
                        retry_after_s=1.0, detail={"model": entry.key},
                    ) from None
                except CancelledError:
                    if self._closed:
                        raise
                    raise ApiError(
                        CODE_UPSTREAM_FAILURE,
                        f"model {entry.key!r} was unloaded mid-request; "
                        "retry",
                        retry_after_s=1.0, detail={"model": entry.key},
                    ) from None
                except ValueError:
                    raise
                except RuntimeError as error:
                    # The model itself failed on a live worker — count it
                    # and surface it; retrying identical input is
                    # pointless.
                    if breaker is not None:
                        breaker.record_failure()
                        verdict_recorded = True
                    raise ApiError(
                        CODE_UPSTREAM_FAILURE,
                        f"model {entry.key!r} failed: {error}",
                        detail={"model": entry.key},
                    ) from error
                else:
                    if breaker is not None:
                        breaker.record_success()
                        verdict_recorded = True
                    return result
        finally:
            if not verdict_recorded:
                breaker.release_probe()
        _log.error("shard_retries_exhausted", model=entry.key,
                   retries=self.retries, error=str(last_crash))
        raise ApiError(
            CODE_UPSTREAM_FAILURE,
            f"model {entry.key!r} unavailable after {self.retries + 1} "
            f"attempts: {last_crash}",
            detail={"model": entry.key, "attempts": self.retries + 1},
        ) from last_crash

    # -- health / metrics ----------------------------------------------------

    def health(self, name: str, version=None) -> dict:
        """Health payload for one model (loads nothing).

        ``status`` is ``"ok"`` for a resident model with a closed breaker,
        ``"shedding"`` when the breaker is open/half-open, ``"unloaded"``
        for a registry model not currently resident.
        """
        entry = self.entry_if_loaded(name, version)
        if entry is None:
            if self.registry is not None and self.registry.versions(name):
                return {"status": "unloaded", "model": name,
                        "registry_versions": self.registry.versions(name)}
            raise ModelNotFoundError(f"no model named {name!r}",
                                     detail={"model": name})
        payload = {
            "status": "ok",
            "model": entry.name,
            "version": entry.version,
            "pinned": entry.pinned,
            "n_input": entry.pool.n_input,
            "backend": entry.pool.backend_name,
            "workers": entry.pool.workers,
            "queue_depth": entry.pool.queue_depth,
            "max_batch": entry.pool.batcher.max_batch,
            "max_wait_ms": entry.pool.batcher.max_wait_ms,
            "rate_limited_total": entry.rate_limited_total,
            "shed_total": entry.shed_total,
            "retries_total": entry.retries_total,
        }
        if entry.breaker is not None:
            payload["circuit"] = entry.breaker.state()
            if entry.breaker.state_name != "closed":
                payload["status"] = "shedding"
        shards = getattr(entry.pool, "shard_pids", None)
        if shards is not None:
            payload["shard_pids"] = shards()
        return payload

    def metrics_snapshots(self) -> "OrderedDict[str, dict]":
        """Per-model metrics snapshots keyed by entry key, for Prometheus."""
        snapshots: "OrderedDict[str, dict]" = OrderedDict()
        for entry in self.entries():
            snapshot = entry.pool.metrics_snapshot()
            snapshot["rate_limited_total"] = entry.rate_limited_total
            snapshot["shed_total"] = entry.shed_total
            snapshot["retries_total"] = entry.retries_total
            if entry.breaker is not None:
                snapshot["circuit"] = entry.breaker.state()
            snapshots[entry.key] = snapshot
        return snapshots

    # -- lifecycle -----------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Stop every resident pool; the router is unusable afterwards."""
        with self._lock:
            self._closed = True
            entries = list(self._pinned.values()) + list(self._loaded.values())
            self._pinned.clear()
            self._loaded.clear()
        for entry in entries:
            entry.pool.stop(timeout=timeout, cancel_pending=True)

    def __enter__(self) -> "ModelRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

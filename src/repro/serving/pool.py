"""Replica pool: worker threads each owning an independent model copy.

``N`` worker threads share one :class:`~repro.serving.batcher.MicroBatcher`.
Each worker owns its *own* :class:`~repro.serving.inference.
PredictionService` built from the artifact — independent networks, weights,
and adaptation state, so replicas never contend on (or corrupt) shared
mutable simulation state.  A free worker claims the next micro-batch,
advances it through ``Network.run_batch`` in one vectorized step, and fans
the results back out to the per-request futures.

The pure-Python engine holds the GIL while numpy is *not* executing, but
the batched hot path spends its time inside vectorized numpy calls that
release it — so replicas overlap meaningfully on multi-core hosts, and the
pool degrades gracefully to a fair queue on one core.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.models.base import UnsupervisedDigitClassifier
from repro.observability.ledger import (
    KIND_SERVING_BATCH,
    RunLedger,
    SpanBuffer,
    artifact_lineage,
)
from repro.observability.structlog import get_struct_logger
from repro.observability.tracing import record_span
from repro.serving.artifacts import ModelArtifact
from repro.serving.batcher import MicroBatcher, PendingRequest
from repro.serving.drift import SpikeCountDriftDetector
from repro.serving.inference import PredictionService, PredictRequest, PredictResult
from repro.serving.metrics import ServingMetrics
from repro.utils.validation import check_positive_int

_log = get_struct_logger("serving.pool")


class ReplicaPool:
    """Micro-batching inference pool over ``workers`` model replicas.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building one independent model replica;
        called once per worker.  Use :meth:`from_artifact` for the common
        case.
    workers:
        Number of worker threads (= replicas).
    max_batch, max_wait_ms, max_queue:
        Micro-batcher knobs (see :class:`~repro.serving.batcher.
        MicroBatcher`).
    metrics:
        Shared metrics sink; created on demand when omitted.
    drift_detector:
        Optional online drift monitor fed every request's spike count.
    ledger:
        Optional persistent :class:`~repro.observability.ledger.RunLedger`.
        Every executed micro-batch is appended as a ``serving_batch`` entry
        carrying the deployment's lineage (see ``lineage``) plus size,
        latency, and outcome.  ``None`` (the default — benchmarks and tests
        construct pools directly) disables recording; ``repro serve``
        attaches the default ledger.
    lineage:
        Extra lineage fields stamped on every ledger entry (artifact
        name/version, config hash, ...).  :meth:`from_artifact` fills this
        from the artifact automatically.
    """

    def __init__(self, model_factory: Callable[[], UnsupervisedDigitClassifier],
                 workers: int = 2, *, max_batch: int = 32,
                 max_wait_ms: float = 5.0, max_queue: int = 1024,
                 metrics: Optional[ServingMetrics] = None,
                 drift_detector: Optional[SpikeCountDriftDetector] = None,
                 ledger: Optional[RunLedger] = None,
                 lineage: Optional[dict] = None) -> None:
        self.workers = check_positive_int(workers, "workers")
        self.batcher = MicroBatcher(max_batch=max_batch, max_wait_ms=max_wait_ms,
                                    max_queue=max_queue)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.drift_detector = drift_detector
        self.ledger = ledger
        self.lineage = dict(lineage or {})
        self.replicas: List[PredictionService] = [
            PredictionService(model_factory(), span_sink=ledger)
            for _ in range(self.workers)
        ]
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()

    @classmethod
    def from_artifact(cls, artifact: ModelArtifact, workers: int = 2, *,
                      backend: Optional[str] = None, **kwargs) -> "ReplicaPool":
        """Pool whose replicas are independent reconstructions of ``artifact``.

        ``backend`` overrides the compute backend every replica runs on
        (default: the backend recorded in the artifact).  The artifact's
        lineage (name, version, config hash, backend) is attached to the
        pool so ledger entries can attribute every batch to it.
        """
        lineage = artifact_lineage(artifact)
        if backend is not None:
            lineage["backend"] = backend
        kwargs.setdefault("lineage", lineage)
        if backend is None:
            return cls(artifact.build_model, workers, **kwargs)
        return cls(lambda: artifact.build_model(backend=backend), workers,
                   **kwargs)

    # -- introspection -------------------------------------------------------

    @property
    def n_input(self) -> int:
        """Input size every request image must match."""
        return self.replicas[0].n_input

    @property
    def model_name(self) -> str:
        return self.replicas[0].model.name

    @property
    def backend_name(self) -> str:
        """Compute backend the replicas run on (reported in ``/metrics``)."""
        return self.replicas[0].model.backend_name

    @property
    def queue_depth(self) -> int:
        return self.batcher.depth

    @property
    def running(self) -> bool:
        with self._lock:
            return self._started

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReplicaPool":
        """Start the worker threads (idempotent while running).

        A stopped pool cannot be restarted: its queue is permanently
        closed, so a second ``start()`` would report healthy workers that
        all exit immediately.  Build a fresh pool instead.
        """
        if self.batcher.closed:
            raise RuntimeError(
                "this pool has been stopped and cannot be restarted; "
                "build a new ReplicaPool"
            )
        with self._lock:
            if self._started:
                return self
            self._started = True
        for index, service in enumerate(self.replicas):
            thread = threading.Thread(
                target=self._worker_loop, args=(service,),
                name=f"repro-serve-worker-{index}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        _log.info("pool_started", workers=self.workers,
                  model=self.model_name, backend=self.backend_name,
                  max_batch=self.batcher.max_batch)
        return self

    def stop(self, timeout: float = 10.0, cancel_pending: bool = False) -> None:
        """Close the queue, drain (or cancel) pending work, join the workers."""
        self.batcher.close(cancel_pending=cancel_pending)
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        with self._lock:
            self._started = False

    def __enter__(self) -> "ReplicaPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request path --------------------------------------------------------

    def submit(self, image: np.ndarray, seed: Optional[int] = None) -> Future:
        """Enqueue one request; the future resolves to a ``PredictResult``.

        Raises :class:`~repro.serving.batcher.QueueFullError` under
        backpressure and :class:`~repro.serving.batcher.QueueClosedError`
        after :meth:`stop`; both are recorded in the metrics.
        """
        image = np.asarray(image, dtype=float)
        if image.size != self.n_input:
            self.metrics.record_rejected()
            raise ValueError(
                f"image has {image.size} pixels but the model expects "
                f"{self.n_input}"
            )
        # Encoding rejects negative intensities — but only inside a worker,
        # where one bad image would fail its whole micro-batch.  Catch it
        # here so the error stays with the offending request.
        if np.any(image < 0):
            self.metrics.record_rejected()
            raise ValueError("image intensities must be non-negative")
        request = PredictRequest(image=image, seed=seed)
        try:
            future = self.batcher.submit(request)
        except Exception:
            self.metrics.record_rejected()
            raise
        self.metrics.record_request()
        return future

    def predict(self, image: np.ndarray, seed: Optional[int] = None,
                timeout: Optional[float] = None) -> PredictResult:
        """Synchronous convenience wrapper around :meth:`submit`.

        On timeout the request is cancelled (best effort), so an abandoned
        caller does not keep consuming worker compute.
        """
        future = self.submit(image, seed=seed)
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            raise

    def metrics_snapshot(self) -> dict:
        """Current metrics, including queue depth, drift state, and backend."""
        drift = (self.drift_detector.state()
                 if self.drift_detector is not None else None)
        snapshot = self.metrics.snapshot(queue_depth=self.queue_depth,
                                         drift=drift)
        snapshot["backend"] = self.backend_name
        snapshot["model"] = self.model_name
        return snapshot

    # -- worker --------------------------------------------------------------

    def _worker_loop(self, service: PredictionService) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=0.1)
            if batch is None:
                return
            if not batch:
                continue
            self._serve_batch(service, batch)

    @staticmethod
    def _resolve(future: Future, result=None, error=None) -> None:
        """Set a future's outcome, tolerating a concurrent ``cancel()``.

        These futures never enter RUNNING state, so a handler-side
        ``cancel()`` (e.g. on request timeout) can succeed at any moment
        before the worker's ``set_result`` — including between a
        ``cancelled()`` check and the set call.  ``InvalidStateError`` from
        that race means the caller is gone; the worker must shrug, not die.
        """
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except InvalidStateError:
            pass

    def _serve_batch(self, service: PredictionService,
                     batch: Sequence[PendingRequest]) -> None:
        claimed = time.perf_counter()
        traced: List[PendingRequest] = []
        # Every ledger record of this batch — spans and the serving_batch
        # entry alike — goes through one buffer and lands in a single file
        # append on flush, so tracing adds serialized bytes to a write the
        # untraced path performs anyway, not extra syscalls per span.
        spans = SpanBuffer(self.ledger) if self.ledger is not None else None
        if spans is not None:
            for pending in batch:
                if pending.trace is None:
                    continue
                # Queue wait is timed from the submit-side enqueue stamp;
                # the serve phase gets its own span the encode/kernel spans
                # parent under.
                record_span(spans, pending.trace.child(), "queue_wait",
                            claimed - pending.enqueued_at,
                            batch_size=len(batch))
                pending.request.trace = pending.trace.child()
                traced.append(pending)
        previous_sink = service.span_sink
        if spans is not None:
            service.span_sink = spans
        try:
            try:
                results = service.predict_batch([p.request for p in batch])
            except Exception as error:  # noqa: BLE001 - fanned out to callers
                for pending in batch:
                    self._resolve(pending.future, error=error)
                self.metrics.record_errors(len(batch))
                _log.error("batch_failed", size=len(batch), error=str(error))
                self._ledger_batch(len(batch), [], outcome="error",
                                   error=str(error), sink=spans)
                failed = time.perf_counter() - claimed
                for pending in traced:
                    record_span(spans, pending.request.trace, "serve_batch",
                                failed, batch_size=len(batch),
                                error=str(error))
                return
            finished = time.perf_counter()
            for pending, result in zip(batch, results):
                self._resolve(pending.future, result=result)
            latencies = [finished - p.enqueued_at for p in batch]
            self.metrics.record_batch(len(batch), latencies)
            self._ledger_batch(len(batch), latencies, outcome="ok", sink=spans)
            for pending in traced:
                record_span(spans, pending.request.trace, "serve_batch",
                            finished - claimed, batch_size=len(batch))
        finally:
            service.span_sink = previous_sink
            if spans is not None:
                spans.flush()
        if self.drift_detector is not None:
            for result in results:
                self.drift_detector.observe(result.spike_count)

    def _ledger_batch(self, size: int, latencies_s: Sequence[float],
                      outcome: str, error: Optional[str] = None,
                      sink: Optional[SpanBuffer] = None) -> None:
        """Append one ``serving_batch`` entry with the pool's lineage.

        ``sink`` redirects the entry into a batch-scoped buffer so it
        shares the spans' single file append.
        """
        if self.ledger is None:
            return
        entry = {
            "kind": KIND_SERVING_BATCH,
            "outcome": outcome,
            "batch_size": int(size),
            "backend": self.backend_name,
            "model": self.model_name,
        }
        entry.update(self.lineage)
        if latencies_s:
            entry["latency_mean_ms"] = round(
                1000.0 * sum(latencies_s) / len(latencies_s), 3
            )
            entry["latency_max_ms"] = round(1000.0 * max(latencies_s), 3)
        if error is not None:
            entry["error"] = error
        (sink if sink is not None else self.ledger).append(entry)

"""Request-path hardening primitives: token bucket and circuit breaker.

Both are small, lock-protected state machines over an injectable monotonic
clock (tests drive them with a fake clock; production uses
``time.monotonic``).  They are policy-free: the router decides what a
rejection means (429 vs 503) and the primitives only answer "may this
request proceed *now*" and "when should the caller try again".

* :class:`TokenBucket` — classic leaky-bucket rate limiting: a bucket of
  ``burst`` tokens refilling at ``rate`` tokens/second; each request takes
  one token and is rejected when the bucket is empty.  Used per
  ``(model, tenant)`` so one noisy tenant cannot starve the others.
* :class:`CircuitBreaker` — closed/open/half-open failure isolation: after
  ``failure_threshold`` failures within ``window_s`` the circuit opens and
  sheds load instantly for ``reset_s``; then a half-open probe decides
  between closing (success) and re-opening (failure).  Used per model so a
  corrupt artifact sheds its own traffic instead of taking the server down.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.utils.validation import check_positive_int

Clock = Callable[[], float]

#: Circuit states (reported in health/metrics payloads).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class TokenBucket:
    """Thread-safe token bucket: ``burst`` capacity, ``rate`` tokens/second.

    Parameters
    ----------
    rate:
        Sustained refill rate in tokens (requests) per second.
    burst:
        Bucket capacity — the largest instantaneous burst admitted after an
        idle period.  Defaults to ``max(1, rate)``.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, rate: float, burst: Optional[float] = None, *,
                 clock: Clock = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens + 1e-9 >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when already are)."""
        with self._lock:
            self._refill(self._clock())
            missing = tokens - self._tokens
            return max(0.0, missing / self.rate)

    def state(self) -> Dict[str, float]:
        with self._lock:
            self._refill(self._clock())
            return {"rate": self.rate, "burst": self.burst,
                    "tokens": round(self._tokens, 6)}


class CircuitBreaker:
    """Per-model failure isolation with closed/open/half-open states.

    Parameters
    ----------
    failure_threshold:
        Number of failures within ``window_s`` that opens the circuit.
    window_s:
        Sliding window the failures are counted over.
    reset_s:
        How long an open circuit sheds load before probing (half-open).
    half_open_max:
        Concurrent probe requests admitted while half-open.
    """

    def __init__(self, failure_threshold: int = 5, window_s: float = 30.0,
                 reset_s: float = 5.0, *, half_open_max: int = 1,
                 clock: Clock = time.monotonic) -> None:
        self.failure_threshold = check_positive_int(failure_threshold,
                                                    "failure_threshold")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if reset_s <= 0:
            raise ValueError(f"reset_s must be > 0, got {reset_s}")
        self.window_s = float(window_s)
        self.reset_s = float(reset_s)
        self.half_open_max = check_positive_int(half_open_max, "half_open_max")
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._opened_total = 0

    def _prune(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window_s:
            self._failures.popleft()

    def allow(self) -> bool:
        """May a request proceed right now?

        Closed: always.  Open: only once ``reset_s`` has elapsed, which
        transitions to half-open and admits up to ``half_open_max`` probes.
        Half-open: only while a probe slot is free.
        """
        with self._lock:
            now = self._clock()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now - self._opened_at < self.reset_s:
                    return False
                self._state = HALF_OPEN
                self._probes_in_flight = 0
            if self._probes_in_flight >= self.half_open_max:
                return False
            self._probes_in_flight += 1
            return True

    def release_probe(self) -> None:
        """Return a half-open probe slot when the request reached no verdict.

        Every request admitted by :meth:`allow` must end in exactly one of
        :meth:`record_success`, :meth:`record_failure`, or this.  Outcomes
        that say nothing about model health (bad input, queue backpressure,
        a caller-side timeout) would otherwise pin the probe slot forever
        and the circuit would shed 100% of traffic until restart.
        """
        with self._lock:
            if self._state == HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def record_success(self) -> None:
        """A request completed; a half-open probe success closes the circuit."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._failures.clear()
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        """A request failed; may open (or re-open) the circuit."""
        with self._lock:
            now = self._clock()
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = now
                self._opened_total += 1
                self._probes_in_flight = 0
                return
            self._failures.append(now)
            self._prune(now)
            if self._state == CLOSED and \
                    len(self._failures) >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = now
                self._opened_total += 1

    def retry_after(self) -> float:
        """Seconds until an open circuit starts probing (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.reset_s - (self._clock() - self._opened_at))

    @property
    def state_name(self) -> str:
        with self._lock:
            return self._state

    def state(self) -> Dict[str, object]:
        with self._lock:
            now = self._clock()
            self._prune(now)
            return {
                "state": self._state,
                "recent_failures": len(self._failures),
                "failure_threshold": self.failure_threshold,
                "window_s": self.window_s,
                "reset_s": self.reset_s,
                "opened_total": self._opened_total,
            }

"""Network orchestration: groups, connections, monitors, and the run loop.

A :class:`Network` owns an input group, any number of downstream neuron
groups, and the connections between them.  :meth:`Network.run_sample`
presents one rate-coded sample (a boolean spike train) to the input group,
advances the whole network timestep by timestep, drives attached learning
rules, and returns per-group spike counts.

The ordering within one timestep is:

1. the input group replays the next row of its spike train;
2. every connection converts its presynaptic spikes (input spikes from this
   timestep, recurrent/lateral spikes from the previous timestep) into
   postsynaptic currents;
3. every non-input group integrates its summed current and fires;
4. plastic connections run their learning rule.

All primitive operations are tallied in the network's
:class:`~repro.snn.simulation.OperationCounter`, which feeds the energy and
latency models in :mod:`repro.estimation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.snn.monitors import SpikeMonitor, StateMonitor
from repro.snn.neurons import InputGroup, NeuronGroup
from repro.snn.simulation import OperationCounter, SimulationParameters
from repro.snn.synapses import Connection


@dataclass
class SampleResult:
    """Outcome of presenting a single sample to the network.

    Attributes
    ----------
    spike_counts:
        Mapping from group name to the per-neuron spike-count vector
        accumulated over the presentation window.
    steps:
        Number of simulation steps executed (presentation plus rest).
    learning:
        Whether plasticity was enabled during the presentation.
    """

    spike_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    steps: int = 0
    learning: bool = True

    def counts(self, group_name: str) -> np.ndarray:
        """Spike counts of ``group_name`` (raises ``KeyError`` if unknown)."""
        return self.spike_counts[group_name]


class Network:
    """A spiking neural network assembled from groups and connections.

    Parameters
    ----------
    params:
        Global simulation timing parameters.  Defaults to the paper's
        350 ms presentation / 150 ms rest at a 1 ms timestep; experiments in
        this repository typically scale these down.
    name:
        Identifier used in reports.
    """

    def __init__(self, params: Optional[SimulationParameters] = None,
                 name: str = "snn") -> None:
        self.params = params if params is not None else SimulationParameters()
        self.name = str(name)
        self.groups: Dict[str, NeuronGroup] = {}
        self.connections: List[Connection] = []
        self.spike_monitors: List[SpikeMonitor] = []
        self.state_monitors: List[StateMonitor] = []
        self.counter = OperationCounter()
        self._input_group: Optional[InputGroup] = None

    # -- construction -------------------------------------------------------

    def add_group(self, group: NeuronGroup) -> NeuronGroup:
        """Register a neuron group (its name must be unique)."""
        if group.name in self.groups:
            raise ValueError(f"a group named {group.name!r} already exists")
        self.groups[group.name] = group
        if isinstance(group, InputGroup):
            if self._input_group is not None:
                raise ValueError("network already has an input group")
            self._input_group = group
        return group

    def add_connection(self, connection: Connection) -> Connection:
        """Register a connection (both endpoint groups must be registered)."""
        for endpoint in (connection.pre, connection.post):
            if endpoint.name not in self.groups or self.groups[endpoint.name] is not endpoint:
                raise ValueError(
                    f"group {endpoint.name!r} must be added to the network "
                    "before connections that use it"
                )
        self.connections.append(connection)
        return connection

    def add_spike_monitor(self, monitor: SpikeMonitor) -> SpikeMonitor:
        """Attach a spike monitor that is sampled every timestep."""
        self.spike_monitors.append(monitor)
        return monitor

    def add_state_monitor(self, monitor: StateMonitor) -> StateMonitor:
        """Attach a state monitor that is sampled every timestep."""
        self.state_monitors.append(monitor)
        return monitor

    # -- introspection -------------------------------------------------------

    @property
    def input_group(self) -> InputGroup:
        """The network's input group (raises if none was added)."""
        if self._input_group is None:
            raise RuntimeError("network has no InputGroup")
        return self._input_group

    def group(self, name: str) -> NeuronGroup:
        """Look up a group by name."""
        return self.groups[name]

    def connection(self, name: str) -> Connection:
        """Look up a connection by name (raises ``KeyError`` if unknown)."""
        for conn in self.connections:
            if conn.name == name:
                return conn
        raise KeyError(f"no connection named {name!r}")

    @property
    def weight_count(self) -> int:
        """Total number of synaptic weights across all connections."""
        return sum(conn.weight_count for conn in self.connections)

    @property
    def neuron_parameter_count(self) -> int:
        """Total number of per-neuron state parameters across all groups."""
        return sum(group.parameter_count for group in self.groups.values())

    # -- simulation ----------------------------------------------------------

    def reset_transient_state(self) -> None:
        """Reset per-sample state (potentials, conductances, input cursors)."""
        for group in self.groups.values():
            group.reset_state(full=False)
        for connection in self.connections:
            connection.reset_state(full=False)

    def reset(self, full: bool = False) -> None:
        """Reset the network.

        With ``full=True`` adaptation variables and learning-rule state are
        also cleared; synaptic weights are never touched.
        """
        for group in self.groups.values():
            group.reset_state(full=full)
        for connection in self.connections:
            connection.reset_state(full=full)
        for monitor in self.spike_monitors:
            monitor.reset()
        for monitor in self.state_monitors:
            monitor.reset()
        self.counter.reset()

    def _step(self, dt: float, learning: bool, t_index: int) -> None:
        """Advance all groups and connections by one timestep."""
        counter = self.counter

        # 1. Input group replays the next spike-train row.
        if self._input_group is not None:
            self._input_group.step(np.zeros(self._input_group.n), dt, counter)

        # 2. Gather currents per target group (one-step delay for recurrence).
        currents: Dict[str, np.ndarray] = {
            name: np.zeros(group.n, dtype=float)
            for name, group in self.groups.items()
            if not isinstance(group, InputGroup)
        }
        for connection in self.connections:
            current = connection.propagate(dt, counter)
            currents[connection.post.name] += current

        # 3. Non-input groups integrate and fire.
        for name, group in self.groups.items():
            if isinstance(group, InputGroup):
                continue
            group.step(currents[name], dt, counter)

        # 4. Plasticity.
        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.step(connection, dt, t_index, counter)

        # 5. Monitors.
        for monitor in self.spike_monitors:
            monitor.observe()
        for monitor in self.state_monitors:
            monitor.observe()

    def run_sample(self, spike_train: np.ndarray, *, learning: bool = True,
                   include_rest: bool = False) -> SampleResult:
        """Present one rate-coded sample to the network.

        Parameters
        ----------
        spike_train:
            Boolean array of shape ``(timesteps, n_input)``.
        learning:
            Enable plasticity on connections with learning rules.
        include_rest:
            When ``True``, simulate ``params.rest_steps`` additional steps
            with no input after the presentation window.

        Returns
        -------
        SampleResult
            Per-group spike counts over the presentation window.
        """
        dt = self.params.dt
        input_group = self.input_group
        input_group.set_spike_train(spike_train)

        spike_counts = {
            name: np.zeros(group.n, dtype=np.int64)
            for name, group in self.groups.items()
        }

        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.on_sample_start(connection)

        steps = int(np.asarray(spike_train).shape[0])
        for t_index in range(steps):
            self._step(dt, learning, t_index)
            for name, group in self.groups.items():
                spike_counts[name] += group.spikes

        rest_steps = self.params.rest_steps if include_rest else 0
        if rest_steps:
            input_group.clear_spike_train()
            for t_index in range(steps, steps + rest_steps):
                self._step(dt, learning=False, t_index=t_index)

        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.on_sample_end(connection, self.counter)

        self.reset_transient_state()
        return SampleResult(
            spike_counts=spike_counts,
            steps=steps + rest_steps,
            learning=learning,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, groups={list(self.groups)}, "
            f"connections={[c.name for c in self.connections]})"
        )

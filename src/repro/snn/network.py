"""Network orchestration: groups, connections, monitors, and the run loop.

A :class:`Network` owns an input group, any number of downstream neuron
groups, and the connections between them.  :meth:`Network.run_sample`
presents one rate-coded sample (a boolean spike train) to the input group,
advances the whole network timestep by timestep, drives attached learning
rules, and returns per-group spike counts.  :meth:`Network.run_batch`
presents ``B`` samples at once, advancing ``(B, n)``-shaped state in one
vectorized step per timestep — the hot path for evaluation-heavy workloads.

The ordering within one timestep is:

1. the input group replays the next row of its spike train;
2. every connection converts its presynaptic spikes (input spikes from this
   timestep, recurrent/lateral spikes from the previous timestep) into
   postsynaptic currents;
3. every non-input group integrates its summed current and fires;
4. plastic connections run their learning rule.

All primitive operations are tallied in the network's
:class:`~repro.snn.simulation.OperationCounter`, which feeds the energy and
latency models in :mod:`repro.estimation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.snn.monitors import SpikeMonitor, StateMonitor
from repro.snn.neurons import InputGroup, NeuronGroup
from repro.snn.simulation import OperationCounter, SimulationParameters
from repro.snn.synapses import Connection


@dataclass
class SampleResult:
    """Outcome of presenting a single sample to the network.

    Attributes
    ----------
    spike_counts:
        Mapping from group name to the per-neuron spike-count vector
        accumulated over the presentation window.
    steps:
        Number of simulation steps executed (presentation plus rest).
    learning:
        Whether plasticity was enabled during the presentation.
    """

    spike_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    steps: int = 0
    learning: bool = True

    def counts(self, group_name: str) -> np.ndarray:
        """Spike counts of ``group_name`` (raises ``KeyError`` if unknown)."""
        return self.spike_counts[group_name]


class Network:
    """A spiking neural network assembled from groups and connections.

    Parameters
    ----------
    params:
        Global simulation timing parameters.  Defaults to the paper's
        350 ms presentation / 150 ms rest at a 1 ms timestep; experiments in
        this repository typically scale these down.
    name:
        Identifier used in reports.
    backend:
        Compute backend (name or instance) executing every state-update
        kernel; defaults to ``"dense"``.  The network owns the compute
        policy: every group and connection added to it is switched to this
        backend, and :meth:`set_backend` retargets a built network in place.
    """

    def __init__(self, params: Optional[SimulationParameters] = None,
                 name: str = "snn", backend: BackendLike = None) -> None:
        self.params = params if params is not None else SimulationParameters()
        self.name = str(name)
        self.backend = get_backend(backend)
        self.groups: Dict[str, NeuronGroup] = {}
        self.connections: List[Connection] = []
        self.spike_monitors: List[SpikeMonitor] = []
        self.state_monitors: List[StateMonitor] = []
        self.counter = OperationCounter()
        self._input_group: Optional[InputGroup] = None

    # -- construction -------------------------------------------------------

    def add_group(self, group: NeuronGroup) -> NeuronGroup:
        """Register a neuron group (its name must be unique)."""
        if group.name in self.groups:
            raise ValueError(f"a group named {group.name!r} already exists")
        self.groups[group.name] = group
        group.backend = self.backend
        if isinstance(group, InputGroup):
            if self._input_group is not None:
                raise ValueError("network already has an input group")
            self._input_group = group
        return group

    def add_connection(self, connection: Connection) -> Connection:
        """Register a connection (both endpoint groups must be registered)."""
        for endpoint in (connection.pre, connection.post):
            if endpoint.name not in self.groups or self.groups[endpoint.name] is not endpoint:
                raise ValueError(
                    f"group {endpoint.name!r} must be added to the network "
                    "before connections that use it"
                )
        self.connections.append(connection)
        connection.backend = self.backend
        return connection

    def add_spike_monitor(self, monitor: SpikeMonitor) -> SpikeMonitor:
        """Attach a spike monitor that is sampled every timestep."""
        self.spike_monitors.append(monitor)
        return monitor

    def add_state_monitor(self, monitor: StateMonitor) -> StateMonitor:
        """Attach a state monitor that is sampled every timestep."""
        self.state_monitors.append(monitor)
        return monitor

    # -- introspection -------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Registry name of the active compute backend."""
        return self.backend.name

    def set_backend(self, backend: BackendLike) -> None:
        """Switch the whole network to ``backend`` (name or instance).

        Backends are stateless kernel bundles, so switching mid-simulation is
        safe: all state arrays stay where they are and only the kernels that
        advance them change.
        """
        self.backend = get_backend(backend)
        for group in self.groups.values():
            group.backend = self.backend
        for connection in self.connections:
            connection.backend = self.backend

    @property
    def input_group(self) -> InputGroup:
        """The network's input group (raises if none was added)."""
        if self._input_group is None:
            raise RuntimeError("network has no InputGroup")
        return self._input_group

    def group(self, name: str) -> NeuronGroup:
        """Look up a group by name."""
        return self.groups[name]

    def connection(self, name: str) -> Connection:
        """Look up a connection by name (raises ``KeyError`` if unknown)."""
        for conn in self.connections:
            if conn.name == name:
                return conn
        raise KeyError(f"no connection named {name!r}")

    @property
    def weight_count(self) -> int:
        """Total number of synaptic weights across all connections."""
        return sum(conn.weight_count for conn in self.connections)

    @property
    def neuron_parameter_count(self) -> int:
        """Total number of per-neuron state parameters across all groups."""
        return sum(group.parameter_count for group in self.groups.values())

    # -- simulation ----------------------------------------------------------

    @property
    def batch_size(self) -> Optional[int]:
        """Active batch size while :meth:`run_batch` is executing, else ``None``."""
        if self._input_group is not None:
            return self._input_group.batch_size
        for group in self.groups.values():
            return group.batch_size
        return None

    def _begin_batch(self, batch_size: int) -> None:
        """Switch every group and connection into ``(batch_size, n)`` state."""
        for group in self.groups.values():
            group.begin_batch(batch_size)
        for connection in self.connections:
            connection.begin_batch(batch_size)

    def _end_batch(self) -> None:
        """Restore single-sample state buffers (tolerant of partial entry)."""
        for group in self.groups.values():
            group.end_batch()
        for connection in self.connections:
            connection.end_batch()

    def reset_transient_state(self) -> None:
        """Reset per-sample state (potentials, conductances, input cursors)."""
        for group in self.groups.values():
            group.reset_state(full=False)
        for connection in self.connections:
            connection.reset_state(full=False)

    def reset(self, full: bool = False) -> None:
        """Reset the network.

        With ``full=True`` adaptation variables and learning-rule state are
        also cleared; synaptic weights are never touched.  An active batch
        mode is always exited first, so after a reset every state buffer —
        and every monitor attached afterwards — sees plain ``(n,)`` shapes
        rather than stale ``(batch_size, n)`` buffers.
        """
        self._end_batch()
        for group in self.groups.values():
            group.reset_state(full=full)
        for connection in self.connections:
            connection.reset_state(full=full)
        for monitor in self.spike_monitors:
            monitor.reset()
        for monitor in self.state_monitors:
            monitor.reset()
        self.counter.reset()

    def _step(self, dt: float, learning: bool, t_index: int,
              input_override: Optional[np.ndarray] = None) -> None:
        """Advance all groups and connections by one timestep.

        ``input_override`` (the event-driven path) injects this timestep's
        input spikes directly instead of replaying the loaded spike train;
        everything downstream of stage 1 is identical either way.
        """
        counter = self.counter

        # 1. Input group replays the next spike-train row.
        if self._input_group is not None:
            if input_override is None:
                self._input_group.step(
                    np.zeros(self._input_group.state_shape), dt, counter
                )
            else:
                self._input_group.spikes = input_override

        # 2. Gather currents per target group (one-step delay for recurrence).
        currents: Dict[str, np.ndarray] = {
            name: np.zeros(group.state_shape, dtype=float)
            for name, group in self.groups.items()
            if not isinstance(group, InputGroup)
        }
        for connection in self.connections:
            current = connection.propagate(dt, counter)
            currents[connection.post.name] += current

        # 3. Non-input groups integrate and fire.
        for name, group in self.groups.items():
            if isinstance(group, InputGroup):
                continue
            group.step(currents[name], dt, counter)

        # 4. Plasticity.
        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.step(connection, dt, t_index, counter)

        # 5. Monitors.
        for monitor in self.spike_monitors:
            monitor.observe()
        for monitor in self.state_monitors:
            monitor.observe()

    def run_sample(self, spike_train: np.ndarray, *, learning: bool = True,
                   include_rest: bool = False) -> SampleResult:
        """Present one rate-coded sample to the network.

        Parameters
        ----------
        spike_train:
            Boolean array of shape ``(timesteps, n_input)``.
        learning:
            Enable plasticity on connections with learning rules.
        include_rest:
            When ``True``, simulate ``params.rest_steps`` additional steps
            with no input after the presentation window.

        Returns
        -------
        SampleResult
            Per-group spike counts over the presentation window.
        """
        dt = self.params.dt
        input_group = self.input_group
        input_group.set_spike_train(spike_train)

        spike_counts = {
            name: np.zeros(group.n, dtype=np.int64)
            for name, group in self.groups.items()
        }

        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.on_sample_start(connection)

        steps = int(np.asarray(spike_train).shape[0])
        for t_index in range(steps):
            self._step(dt, learning, t_index)
            for name, group in self.groups.items():
                spike_counts[name] += group.spikes

        rest_steps = self.params.rest_steps if include_rest else 0
        if rest_steps:
            input_group.clear_spike_train()
            for t_index in range(steps, steps + rest_steps):
                self._step(dt, learning=False, t_index=t_index)

        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.on_sample_end(connection, self.counter)

        self.reset_transient_state()
        return SampleResult(
            spike_counts=spike_counts,
            steps=steps + rest_steps,
            learning=learning,
        )

    def run_batch(self, spike_trains: np.ndarray, *, learning: bool = False,
                  include_rest: bool = False) -> List[SampleResult]:
        """Present a batch of rate-coded samples and return per-sample results.

        Parameters
        ----------
        spike_trains:
            Boolean array of shape ``(batch_size, timesteps, n_input)`` (or a
            sequence of equal-length ``(timesteps, n_input)`` trains, which is
            stacked).
        learning:
            When ``False`` (the default, the inference hot path) all samples
            advance simultaneously in ``(batch_size, n)``-shaped vectorized
            state.  When ``True`` the samples are applied one at a time via
            :meth:`run_sample`, so plasticity sees exactly the same weight
            trajectory as a sequential loop.
        include_rest:
            When ``True``, simulate ``params.rest_steps`` additional steps
            with no input after the presentation window.

        Returns
        -------
        list of SampleResult
            One result per sample, in input order — identical to what ``B``
            :meth:`run_sample` calls would return.

        Notes
        -----
        **Equivalence guarantee.**  Batched inference performs, per sample,
        exactly the same floating-point operations as the sequential path
        (elementwise updates broadcast over the batch axis; the dense
        spike-to-conductance projection runs one vector-matrix product per
        spiking sample), so spike counts, membrane trajectories, and
        :class:`~repro.snn.simulation.OperationCounter` totals are bit-for-bit
        identical to ``B`` independent :meth:`run_sample` calls.

        **Adaptation state.**  Samples in a batch are independent: each gets
        its own copy of slowly-varying adaptation state (e.g. the threshold
        potential ``theta``), and the persistent copy is restored unchanged
        when the batch finishes.  A *sequential* loop over samples instead
        carries ``theta`` drift from one sample into the next; the two modes
        therefore only diverge when ``adapt_theta`` is enabled with a nonzero
        ``theta_plus``.  With ``learning=True`` the sequential-equivalent path
        is used, which preserves that drift exactly.
        """
        try:
            trains = np.asarray(spike_trains)
        except ValueError as error:
            raise ValueError(
                "all spike trains in a batch must have the same number of "
                "timesteps"
            ) from error
        if trains.dtype == object:
            raise ValueError(
                "all spike trains in a batch must have the same number of "
                "timesteps"
            )
        if trains.ndim != 3:
            raise ValueError(
                "spike_trains must have shape (batch_size, timesteps, "
                f"n_input), got {trains.shape}"
            )
        input_group = self.input_group
        if trains.shape[2] != input_group.n:
            raise ValueError(
                f"spike_trains must have {input_group.n} input channels, "
                f"got {trains.shape[2]}"
            )

        if learning:
            # Sequential-equivalent application keeps the weight trajectory —
            # and therefore the learned weights — bit-for-bit identical to a
            # run_sample loop.
            return [
                self.run_sample(train, learning=True, include_rest=include_rest)
                for train in trains
            ]

        dt = self.params.dt
        batch_size, steps, _ = trains.shape
        self._begin_batch(batch_size)
        try:
            input_group.set_spike_train(trains)
            spike_counts = {
                name: np.zeros((batch_size, group.n), dtype=np.int64)
                for name, group in self.groups.items()
            }
            for t_index in range(steps):
                self._step(dt, learning=False, t_index=t_index)
                for name, group in self.groups.items():
                    spike_counts[name] += group.spikes

            rest_steps = self.params.rest_steps if include_rest else 0
            if rest_steps:
                input_group.clear_spike_train()
                for t_index in range(steps, steps + rest_steps):
                    self._step(dt, learning=False, t_index=t_index)
        finally:
            self._end_batch()

        return [
            SampleResult(
                spike_counts={name: counts[index].copy()
                              for name, counts in spike_counts.items()},
                steps=steps + rest_steps,
                learning=False,
            )
            for index in range(batch_size)
        ]

    def run_events(self, events, *, learning: bool = False,
                   include_rest: bool = False,
                   allow_jumps: Optional[bool] = None):
        """Present input as spike *events*; cost scales with events, not steps.

        The event-driven counterpart of :meth:`run_sample`: the input is a
        time-ordered queue of (step, channel) firings, and between active
        steps the engine advances all exponential state (membranes,
        conductances, theta, STDP traces) analytically across the silent
        gap — but only when a conservative bound proves the gap could not
        have produced a spike under the stepped arithmetic (see
        :mod:`repro.snn.events`).  Steps that deliver events, or whose
        silence is not provable (e.g. post-burst conductance tails), are
        executed with the ordinary per-timestep kernels, so spike counts
        match the stepped reference exactly on every workload the bound
        covers; float state differs only by closed-form-vs-iterated decay
        rounding (the ``eventqueue`` backend's ``tolerance`` tier).

        Parameters
        ----------
        events:
            An :class:`~repro.snn.events.EventStream`, a dense boolean
            ``(timesteps, n_input)`` train (converted losslessly), or a
            sequence / ``(batch, timesteps, n_input)`` stack of either —
            batches are streamed one sample at a time, which is the
            intended serving shape for long-horizon low-rate inputs.
        learning:
            Enable plasticity.  Gaps are only jumped when every attached
            learning rule declares ``supports_analytic_silence`` (pairwise
            STDP does; rules that update weights on silent steps, like ASP
            leak or SpikeDyn window boundaries, force full stepping).
        include_rest:
            Simulate ``params.rest_steps`` of silence after the
            presentation — usually one analytic jump.
        allow_jumps:
            Override the jump policy; defaults to the active backend's
            ``supports_events`` declaration, and monitors always force
            stepping (they observe every timestep).

        Returns
        -------
        SampleResult or list of SampleResult
            One result for a single stream/train, a list for a batch.
        """
        from repro.snn.events import as_event_stream

        if isinstance(events, (list, tuple)):
            return [self.run_events(item, learning=learning,
                                    include_rest=include_rest,
                                    allow_jumps=allow_jumps)
                    for item in events]
        if not hasattr(events, "n_events"):
            dense = np.asarray(events)
            if dense.ndim == 3:
                return [self.run_events(train, learning=learning,
                                        include_rest=include_rest,
                                        allow_jumps=allow_jumps)
                        for train in dense]
        if self.batch_size is not None:
            raise RuntimeError(
                "run_events requires single-sample mode; end the active "
                "batch first"
            )
        input_group = self.input_group
        stream = as_event_stream(events, n_channels=input_group.n)

        jumps = allow_jumps if allow_jumps is not None \
            else self.backend.supports_events
        if self.spike_monitors or self.state_monitors:
            jumps = False
        if learning and jumps:
            jumps = all(
                getattr(conn.learning_rule, "supports_analytic_silence", False)
                for conn in self.connections
                if conn.learning_rule is not None
            )

        from repro.snn.events import advance_analytic, silence_is_provable

        dt = self.params.dt
        steps = stream.n_steps
        rest_steps = self.params.rest_steps if include_rest else 0
        total_steps = steps + rest_steps

        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.on_sample_start(connection)

        spike_counts = {
            name: np.zeros(group.n, dtype=np.int64)
            for name, group in self.groups.items()
        }
        active_times, channels_per_step = stream.step_channels()
        silent_row = np.zeros(input_group.n, dtype=bool)

        pointer = 0
        t_index = 0
        while t_index < total_steps:
            if pointer < active_times.size and active_times[pointer] == t_index:
                channels = channels_per_step[pointer]
                pointer += 1
                row = np.zeros(input_group.n, dtype=bool)
                row[channels] = True
                delivered = int(channels.size)
            else:
                row = silent_row
                delivered = 0

            if delivered == 0 and jumps:
                next_active = int(active_times[pointer]) \
                    if pointer < active_times.size else total_steps
                # Plasticity stops at the presentation boundary (the rest
                # period never updates traces), so jumps do not cross it.
                if learning and t_index < steps:
                    next_active = min(next_active, steps)
                gap = next_active - t_index
                if gap > 0 and silence_is_provable(self):
                    advance_analytic(
                        self, gap,
                        decay_traces=learning and t_index < steps,
                    )
                    t_index = next_active
                    continue

            learn_now = learning and t_index < steps
            self._step(dt, learn_now, t_index, input_override=row)
            if delivered:
                self.counter.add(events_processed=delivered)
            if t_index < steps:
                for name, group in self.groups.items():
                    spike_counts[name] += group.spikes
            t_index += 1

        if learning:
            for connection in self.connections:
                if connection.learning_rule is not None:
                    connection.learning_rule.on_sample_end(connection, self.counter)

        self.reset_transient_state()
        return SampleResult(
            spike_counts=spike_counts,
            steps=total_steps,
            learning=learning,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, groups={list(self.groups)}, "
            f"connections={[c.name for c in self.connections]})"
        )

"""Simulation-wide parameters and operation accounting.

The :class:`OperationCounter` is the bridge between the functional simulation
and the energy/latency estimation in :mod:`repro.estimation`: every neuron
update, synaptic event, exponential decay evaluation, trace update, and weight
update performed by the engine is tallied here.  The paper's energy savings
(eliminating the inhibitory layer, removing exponential calculations, and
reducing spurious weight updates) therefore show up directly as reduced
operation counts, which the hardware model converts into time and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from repro.utils.validation import check_positive


@dataclass
class SimulationParameters:
    """Global timing parameters of a clock-driven simulation.

    Parameters
    ----------
    dt:
        Simulation timestep in milliseconds.
    t_sim:
        Presentation time of a single input sample in milliseconds.
    t_rest:
        Resting (no input) period between samples in milliseconds, used to
        let membrane potentials and conductances settle.
    """

    dt: float = 1.0
    t_sim: float = 350.0
    t_rest: float = 150.0

    def __post_init__(self) -> None:
        check_positive(self.dt, "dt")
        check_positive(self.t_sim, "t_sim")
        if self.t_rest < 0:
            raise ValueError(f"t_rest must be >= 0, got {self.t_rest}")
        if self.t_sim < self.dt:
            raise ValueError(
                f"t_sim ({self.t_sim}) must be at least one timestep ({self.dt})"
            )

    @property
    def steps_per_sample(self) -> int:
        """Number of simulation steps used to present one sample."""
        return int(round(self.t_sim / self.dt))

    @property
    def rest_steps(self) -> int:
        """Number of simulation steps in the inter-sample rest period."""
        return int(round(self.t_rest / self.dt))


@dataclass
class OperationCounter:
    """Tally of the primitive operations executed by the simulation engine.

    Attributes
    ----------
    neuron_updates:
        Number of per-neuron state updates (one per neuron per timestep).
    synaptic_events:
        Number of synapse activations, i.e. (presynaptic spike, outgoing
        synapse) pairs that injected charge into a postsynaptic conductance.
    exponential_ops:
        Number of exponential-decay evaluations (membrane, threshold
        adaptation, conductance, spike traces, and weight decay).
    trace_updates:
        Number of spike-trace element updates.
    weight_updates:
        Number of individual synaptic-weight modifications performed by a
        learning rule (potentiation, depression, decay, or leak).
    spike_events:
        Total number of spikes emitted by non-input neuron groups.
    events_processed:
        Number of input spike events delivered by the event-driven engine
        (:meth:`repro.snn.network.Network.run_events`).  Stays zero on the
        clock-driven paths.
    steps_skipped:
        Number of timesteps the event-driven engine advanced analytically
        (closed-form exponential decay) instead of executing step by step.
        Together with ``events_processed`` this attributes the energy-proxy
        savings of event-driven execution to skipped grid work.
    """

    neuron_updates: int = 0
    synaptic_events: int = 0
    exponential_ops: int = 0
    trace_updates: int = 0
    weight_updates: int = 0
    spike_events: int = 0
    events_processed: int = 0
    steps_skipped: int = 0

    def add(self, **increments: int) -> None:
        """Increment one or more counters by the given amounts."""
        for name, value in increments.items():
            if not hasattr(self, name):
                raise AttributeError(f"OperationCounter has no counter named {name!r}")
            setattr(self, name, getattr(self, name) + int(value))

    def reset(self) -> None:
        """Zero every counter."""
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def total_ops(self) -> int:
        """Total number of counted primitive operations."""
        return (
            self.neuron_updates
            + self.synaptic_events
            + self.exponential_ops
            + self.trace_updates
            + self.weight_updates
        )

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def copy(self) -> "OperationCounter":
        """Return an independent copy of the current counts."""
        return OperationCounter(**self.as_dict())

    def __add__(self, other: "OperationCounter") -> "OperationCounter":
        if not isinstance(other, OperationCounter):
            return NotImplemented
        merged = {
            key: self.as_dict()[key] + other.as_dict()[key] for key in self.as_dict()
        }
        return OperationCounter(**merged)

    def __sub__(self, other: "OperationCounter") -> "OperationCounter":
        if not isinstance(other, OperationCounter):
            return NotImplemented
        merged = {
            key: self.as_dict()[key] - other.as_dict()[key] for key in self.as_dict()
        }
        return OperationCounter(**merged)

"""Synaptic connections between neuron groups.

A :class:`Connection` holds a dense weight matrix and a per-postsynaptic
conductance vector.  When a presynaptic neuron spikes, the conductance of
every postsynaptic target is increased by the corresponding weight; otherwise
the conductance decays exponentially (paper Section II).  The connection's
``sign`` determines whether the resulting current is excitatory (+1) or
inhibitory (-1), which is how direct lateral inhibition is expressed without
an explicit inhibitory neuron layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.snn.neurons import NeuronGroup
from repro.snn.simulation import OperationCounter
from repro.utils.validation import check_positive, check_positive_int


class Connection:
    """Dense synaptic projection from ``pre`` to ``post``.

    Parameters
    ----------
    pre, post:
        Source and target neuron groups.
    weights:
        Weight matrix of shape ``(pre.n, post.n)``.  Weights are kept
        non-negative; inhibition is expressed through ``sign``.
    sign:
        ``+1`` for an excitatory projection, ``-1`` for an inhibitory one.
    tau_syn:
        Exponential decay time constant of the postsynaptic conductance (ms).
    w_min, w_max:
        Bounds applied when a learning rule modifies the weights.
    gain:
        Scalar multiplier converting conductance into input current.
    learning_rule:
        Optional object implementing ``on_sample_start(connection)``,
        ``step(connection, dt, t_index, counter)`` and
        ``on_sample_end(connection, counter)``; attached learned projections
        are updated by :class:`~repro.snn.network.Network` every timestep.
    norm:
        Optional target for per-postsynaptic-neuron incoming weight sums.
        When set, :meth:`normalize` rescales each column of the weight matrix
        to this total (the standard Diehl & Cook weight normalization).
    name:
        Connection identifier.
    backend:
        Compute backend executing the propagation kernels; defaults to the
        dense reference backend and is overwritten with the network's
        backend by :meth:`repro.snn.network.Network.add_connection`.
    """

    def __init__(
        self,
        pre: NeuronGroup,
        post: NeuronGroup,
        weights: np.ndarray,
        *,
        sign: int = 1,
        tau_syn: float = 5.0,
        w_min: float = 0.0,
        w_max: float = 1.0,
        gain: float = 1.0,
        learning_rule=None,
        norm: Optional[float] = None,
        name: str = "connection",
        backend: BackendLike = None,
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (pre.n, post.n):
            raise ValueError(
                f"weights must have shape ({pre.n}, {post.n}), got {weights.shape}"
            )
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        if w_max <= w_min:
            raise ValueError(f"w_max ({w_max}) must exceed w_min ({w_min})")

        self.pre = pre
        self.post = post
        self.weights = weights.copy()
        self.sign = int(sign)
        self.tau_syn = check_positive(tau_syn, "tau_syn")
        self.w_min = float(w_min)
        self.w_max = float(w_max)
        self.gain = float(gain)
        self.learning_rule = learning_rule
        self.norm = None if norm is None else float(norm)
        self.name = str(name)
        self.backend = get_backend(backend)

        self.conductance = np.zeros(post.n, dtype=float)
        self._batch_size: Optional[int] = None
        self._refresh_fanout()

    # -- batch lifecycle ----------------------------------------------------

    @property
    def batch_size(self) -> Optional[int]:
        """Active batch size, or ``None`` outside batch mode."""
        return self._batch_size

    def begin_batch(self, batch_size: int) -> None:
        """Switch the conductance to a ``(batch_size, post.n)`` buffer."""
        if self._batch_size is not None:
            raise RuntimeError(
                f"connection {self.name!r} is already in batch mode "
                f"(batch_size={self._batch_size})"
            )
        self._batch_size = check_positive_int(batch_size, "batch_size")
        self.conductance = np.zeros((self._batch_size, self.post.n), dtype=float)

    def end_batch(self) -> None:
        """Return to a single-sample conductance (no-op outside batch mode)."""
        if self._batch_size is None:
            return
        self._batch_size = None
        self.conductance = np.zeros(self.post.n, dtype=float)

    # -- bookkeeping --------------------------------------------------------

    def _refresh_fanout(self) -> None:
        """Recompute the synapse count charged per simulation step.

        The energy methodology of the paper measures GPU executions, where a
        stored projection is processed as a dense (or structurally sparse)
        tensor operation every timestep.  Plastic projections are charged for
        the full dense matrix; fixed topologies (e.g. the one-to-one
        excitatory->inhibitory projection) only for their structurally
        non-zero weights.
        """
        if self.is_plastic:
            self._ops_per_step = int(self.weights.size)
        else:
            self._ops_per_step = int(np.count_nonzero(self.weights))

    @property
    def fanout(self) -> float:
        """Average number of stored synapses per presynaptic neuron."""
        return self._ops_per_step / self.pre.n if self.pre.n else 0.0

    @property
    def weight_count(self) -> int:
        """Number of stored synaptic weights (used by the memory model).

        Plastic (learned) projections store the full dense matrix; fixed
        topologies only store their structurally non-zero weights.
        """
        return self._ops_per_step

    @property
    def is_plastic(self) -> bool:
        """Whether a learning rule is attached to this connection."""
        return self.learning_rule is not None

    def reset_state(self, full: bool = False) -> None:
        """Clear the conductance (and, with ``full``, learning-rule state)."""
        self.conductance[:] = 0.0
        if full and self.learning_rule is not None:
            reset = getattr(self.learning_rule, "reset", None)
            if callable(reset):
                reset()

    # -- simulation ---------------------------------------------------------

    def propagate(self, dt: float,
                  counter: Optional[OperationCounter] = None) -> np.ndarray:
        """Advance the conductance one timestep and return the input current
        delivered to the postsynaptic group (signed).

        In batch mode the presynaptic spikes have shape ``(batch_size, pre.n)``
        and the returned current ``(batch_size, post.n)``.  Decay and the
        spike-to-conductance projection run on the connection's compute
        backend: the dense backend evaluates one vector-matrix product per
        spiking sample (bit-for-bit identical to the sequential path), while
        the sparse backend gathers only the spiking weight rows.
        """
        # Rebind per the kernel contract: backends running at a different
        # state dtype (float32) hand back a converted array here, after
        # which the conductance stays at the backend's precision.
        self.conductance = self.backend.decay_state(
            self.conductance, np.exp(-dt / self.tau_syn)
        )
        self.backend.propagate_spikes(self.conductance, self.pre.spikes,
                                      self.weights)
        if counter is not None:
            # Dense (GPU-style) accounting: the stored projection is processed
            # once per timestep regardless of how many presynaptic spikes
            # occurred, matching the paper's GPU-based energy measurements.
            batch = self._batch_size if self._batch_size is not None else 1
            counter.add(
                exponential_ops=self.post.n * batch,
                synaptic_events=self._ops_per_step * batch,
            )
        return self.sign * self.gain * self.conductance

    # -- plasticity helpers -------------------------------------------------

    def clip_weights(self) -> None:
        """Clamp the weights into ``[w_min, w_max]`` in place."""
        np.clip(self.weights, self.w_min, self.w_max, out=self.weights)

    def normalize(self, counter: Optional[OperationCounter] = None) -> None:
        """Rescale incoming weights of every postsynaptic neuron to ``norm``.

        No-op when ``norm`` is ``None``.
        """
        if self.norm is None:
            return
        column_sums = self.weights.sum(axis=0)
        # Avoid division by zero for silent columns.
        safe = np.where(column_sums > 0.0, column_sums, 1.0)
        self.weights *= self.norm / safe
        self.clip_weights()
        if counter is not None:
            counter.add(weight_updates=self.weights.size)

    def apply_weight_delta(self, delta: np.ndarray,
                           counter: Optional[OperationCounter] = None) -> None:
        """Add ``delta`` (same shape as ``weights``) and clip to bounds."""
        delta = np.asarray(delta, dtype=float)
        if delta.shape != self.weights.shape:
            raise ValueError(
                f"delta must have shape {self.weights.shape}, got {delta.shape}"
            )
        self.weights += delta
        self.clip_weights()
        if counter is not None:
            counter.add(weight_updates=int(np.count_nonzero(delta)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "exc" if self.sign > 0 else "inh"
        return (
            f"Connection(name={self.name!r}, {self.pre.name}->{self.post.name}, "
            f"shape={self.weights.shape}, sign={kind}, plastic={self.is_plastic})"
        )


class UniformLateralInhibition:
    """Direct lateral inhibition with a single shared strength (SpikeDyn).

    This is the paper's Section III-B mechanism: instead of routing
    excitatory spikes through an inhibitory neuron layer (one-to-one
    excitatory->inhibitory plus dense inhibitory->excitatory projections),
    every excitatory spike directly inhibits all *other* excitatory neurons
    with a single shared strength.  Because the strength is uniform, the
    projection needs no stored weight matrix and can be evaluated with an
    O(n) broadcast per timestep — this is where the memory and energy savings
    of the optimized architecture come from (paper Fig. 4).

    The class implements the same interface as :class:`Connection` so the
    :class:`~repro.snn.network.Network` treats it uniformly.

    Parameters
    ----------
    group:
        The excitatory group that inhibits itself laterally.
    strength:
        Inhibitory conductance increment contributed by one spike (positive
        number; the delivered current is negative).
    tau_syn:
        Exponential decay time constant of the inhibitory conductance (ms).
    gain:
        Scalar multiplier converting conductance into current.
    name:
        Connection identifier.
    """

    def __init__(self, group: NeuronGroup, strength: float, *,
                 tau_syn: float = 2.0, gain: float = 1.0,
                 name: str = "lateral_inhibition",
                 backend: BackendLike = None) -> None:
        if strength < 0:
            raise ValueError(f"strength must be >= 0, got {strength}")
        self.pre = group
        self.post = group
        self.backend = get_backend(backend)
        self.strength = float(strength)
        self.tau_syn = check_positive(tau_syn, "tau_syn")
        self.gain = float(gain)
        self.sign = -1
        self.learning_rule = None
        self.norm = None
        self.name = str(name)
        self.conductance = np.zeros(group.n, dtype=float)
        self._batch_size: Optional[int] = None

    # -- batch lifecycle ----------------------------------------------------

    @property
    def batch_size(self) -> Optional[int]:
        """Active batch size, or ``None`` outside batch mode."""
        return self._batch_size

    def begin_batch(self, batch_size: int) -> None:
        """Switch the conductance to a ``(batch_size, n)`` buffer."""
        if self._batch_size is not None:
            raise RuntimeError(
                f"connection {self.name!r} is already in batch mode "
                f"(batch_size={self._batch_size})"
            )
        self._batch_size = check_positive_int(batch_size, "batch_size")
        self.conductance = np.zeros((self._batch_size, self.post.n), dtype=float)

    def end_batch(self) -> None:
        """Return to a single-sample conductance (no-op outside batch mode)."""
        if self._batch_size is None:
            return
        self._batch_size = None
        self.conductance = np.zeros(self.post.n, dtype=float)

    @property
    def is_plastic(self) -> bool:
        """Lateral inhibition is never learned."""
        return False

    @property
    def weight_count(self) -> int:
        """Only the single shared strength is stored."""
        return 1

    @property
    def fanout(self) -> float:
        """Each spike reaches every other neuron in the group."""
        return float(self.post.n - 1)

    def reset_state(self, full: bool = False) -> None:
        """Clear the inhibitory conductance."""
        self.conductance[:] = 0.0

    def propagate(self, dt: float,
                  counter: Optional[OperationCounter] = None) -> np.ndarray:
        """Advance the conductance and return the (negative) lateral current."""
        self.conductance = self.backend.decay_state(
            self.conductance, np.exp(-dt / self.tau_syn)
        )
        self.backend.propagate_lateral(self.conductance, self.pre.spikes,
                                       self.strength)
        if counter is not None:
            # O(n) broadcast: decay plus a scalar subtraction per neuron.
            batch = self._batch_size if self._batch_size is not None else 1
            counter.add(exponential_ops=self.post.n * batch,
                        synaptic_events=self.post.n * batch)
        return -self.gain * self.conductance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformLateralInhibition(group={self.pre.name!r}, "
            f"strength={self.strength}, tau_syn={self.tau_syn})"
        )

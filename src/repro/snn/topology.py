"""Weight-matrix builders for the network topologies used in the paper.

The baseline (Diehl & Cook / ASP) architecture uses three connection groups:
a learned dense input→excitatory projection, a fixed one-to-one
excitatory→inhibitory projection, and a fixed all-to-all-except-self
inhibitory→excitatory projection.  SpikeDyn's optimized architecture replaces
the last two with a single *direct lateral inhibition* matrix between
excitatory neurons (Section III-B).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive_int


def dense_random_weights(
    n_pre: int,
    n_post: int,
    *,
    low: float = 0.0,
    high: float = 0.3,
    rng: SeedLike = None,
) -> np.ndarray:
    """Uniformly random dense weights of shape ``(n_pre, n_post)``.

    Used to initialize the learned input→excitatory projection.
    """
    check_positive_int(n_pre, "n_pre")
    check_positive_int(n_post, "n_post")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    generator = ensure_rng(rng)
    return generator.uniform(low, high, size=(n_pre, n_post))


def one_to_one_weights(n: int, value: float) -> np.ndarray:
    """Diagonal weights connecting neuron ``i`` of the pre group to neuron
    ``i`` of the post group (the excitatory→inhibitory projection)."""
    check_positive_int(n, "n")
    check_non_negative(value, "value")
    return np.eye(n, dtype=float) * value


def all_to_all_except_self_weights(n: int, value: float) -> np.ndarray:
    """Uniform weights between all distinct pairs, zero on the diagonal
    (the inhibitory→excitatory projection)."""
    check_positive_int(n, "n")
    check_non_negative(value, "value")
    weights = np.full((n, n), value, dtype=float)
    np.fill_diagonal(weights, 0.0)
    return weights


def lateral_inhibition_weights(n: int, strength: float) -> np.ndarray:
    """Direct lateral inhibition among excitatory neurons.

    Equivalent in connectivity to :func:`all_to_all_except_self_weights` but
    intended to be used with a *negative* (inhibitory) sign on the excitatory
    group itself, eliminating the inhibitory layer entirely (paper Fig. 4a).
    """
    return all_to_all_except_self_weights(n, strength)

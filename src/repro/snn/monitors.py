"""Recording utilities for simulations.

Monitors are attached to a :class:`~repro.snn.network.Network` and sampled
once per timestep.  They are used by the evaluation protocols (spike-count
responses for neuron labelling) and by tests that inspect internal dynamics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.snn.neurons import NeuronGroup


class SpikeMonitor:
    """Accumulates spike counts (and optionally the full raster) of a group.

    Parameters
    ----------
    group:
        The neuron group to observe.
    record_raster:
        When ``True`` the full boolean spike raster is kept (one row per
        timestep); otherwise only cumulative per-neuron counts are stored.
    """

    def __init__(self, group: NeuronGroup, record_raster: bool = False) -> None:
        self.group = group
        self.record_raster = bool(record_raster)
        self.counts = np.zeros(group.n, dtype=np.int64)
        self._raster: List[np.ndarray] = []

    def observe(self) -> None:
        """Sample the group's current spike vector.

        In batch mode (``(batch_size, n)`` spikes) the per-neuron counts
        accumulate the spikes of every sample, so ``counts`` always keeps its
        ``(n,)`` shape — batch-shaped buffers never leak into the monitor's
        accumulators.
        """
        spikes = self.group.spikes
        if spikes.ndim == 2:
            self.counts += spikes.sum(axis=0)
        else:
            self.counts += spikes
        if self.record_raster:
            self._raster.append(spikes.copy())

    def reset(self) -> None:
        """Clear accumulated counts and raster."""
        self.counts[:] = 0
        self._raster.clear()

    @property
    def total_spikes(self) -> int:
        """Total number of spikes observed since the last reset."""
        return int(self.counts.sum())

    @property
    def raster(self) -> np.ndarray:
        """Boolean raster (empty if not recorded).

        Shape ``(timesteps, n)`` for single-sample runs and
        ``(timesteps, batch_size, n)`` for batched runs.  Mixing the two in
        one recording raises; call :meth:`reset` (or ``Network.reset``)
        between runs of different batch shapes.
        """
        if not self._raster:
            return np.zeros((0, self.group.n), dtype=bool)
        shapes = {row.shape for row in self._raster}
        if len(shapes) > 1:
            raise ValueError(
                "raster mixes single-sample and batched observations "
                f"({sorted(shapes)}); reset the monitor between runs of "
                "different batch shapes"
            )
        return np.stack(self._raster)


class StateMonitor:
    """Records a named numeric attribute of any simulation object each step."""

    def __init__(self, target, attribute: str) -> None:
        if not hasattr(target, attribute):
            raise AttributeError(
                f"{type(target).__name__} has no attribute {attribute!r}"
            )
        self.target = target
        self.attribute = attribute
        self._history: List[np.ndarray] = []

    def observe(self) -> None:
        """Append a copy of the observed attribute's current value."""
        value = getattr(self.target, self.attribute)
        self._history.append(np.array(value, dtype=float, copy=True))

    def reset(self) -> None:
        """Clear the recorded history."""
        self._history.clear()

    @property
    def history(self) -> np.ndarray:
        """Stacked history with shape ``(timesteps, *value_shape)``.

        Like :attr:`SpikeMonitor.raster`, mixing observations of different
        shapes (e.g. a batched and a single-sample run without a reset in
        between) raises a descriptive error.
        """
        if not self._history:
            return np.zeros((0,), dtype=float)
        shapes = {value.shape for value in self._history}
        if len(shapes) > 1:
            raise ValueError(
                "history mixes observations of different shapes "
                f"({sorted(shapes)}); reset the monitor between runs of "
                "different batch shapes"
            )
        return np.stack(self._history)

    @property
    def last(self) -> Optional[np.ndarray]:
        """Most recently observed value, or ``None`` if nothing was recorded."""
        return self._history[-1] if self._history else None

"""Recording utilities for simulations.

Monitors are attached to a :class:`~repro.snn.network.Network` and sampled
once per timestep.  They are used by the evaluation protocols (spike-count
responses for neuron labelling) and by tests that inspect internal dynamics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.snn.neurons import NeuronGroup


class SpikeMonitor:
    """Accumulates spike counts (and optionally the full raster) of a group.

    Parameters
    ----------
    group:
        The neuron group to observe.
    record_raster:
        When ``True`` the full boolean spike raster is kept (one row per
        timestep); otherwise only cumulative per-neuron counts are stored.
    """

    def __init__(self, group: NeuronGroup, record_raster: bool = False) -> None:
        self.group = group
        self.record_raster = bool(record_raster)
        self.counts = np.zeros(group.n, dtype=np.int64)
        self._raster: List[np.ndarray] = []

    def observe(self) -> None:
        """Sample the group's current spike vector."""
        self.counts += self.group.spikes
        if self.record_raster:
            self._raster.append(self.group.spikes.copy())

    def reset(self) -> None:
        """Clear accumulated counts and raster."""
        self.counts[:] = 0
        self._raster.clear()

    @property
    def total_spikes(self) -> int:
        """Total number of spikes observed since the last reset."""
        return int(self.counts.sum())

    @property
    def raster(self) -> np.ndarray:
        """Boolean raster of shape ``(timesteps, n)`` (empty if not recorded)."""
        if not self._raster:
            return np.zeros((0, self.group.n), dtype=bool)
        return np.vstack(self._raster)


class StateMonitor:
    """Records a named numeric attribute of any simulation object each step."""

    def __init__(self, target, attribute: str) -> None:
        if not hasattr(target, attribute):
            raise AttributeError(
                f"{type(target).__name__} has no attribute {attribute!r}"
            )
        self.target = target
        self.attribute = attribute
        self._history: List[np.ndarray] = []

    def observe(self) -> None:
        """Append a copy of the observed attribute's current value."""
        value = getattr(self.target, self.attribute)
        self._history.append(np.array(value, dtype=float, copy=True))

    def reset(self) -> None:
        """Clear the recorded history."""
        self._history.clear()

    @property
    def history(self) -> np.ndarray:
        """Stacked history with shape ``(timesteps, *value_shape)``."""
        if not self._history:
            return np.zeros((0,), dtype=float)
        return np.stack(self._history)

    @property
    def last(self) -> Optional[np.ndarray]:
        """Most recently observed value, or ``None`` if nothing was recorded."""
        return self._history[-1] if self._history else None

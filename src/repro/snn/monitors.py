"""Recording utilities for simulations.

Monitors are attached to a :class:`~repro.snn.network.Network` and sampled
once per timestep.  They are used by the evaluation protocols (spike-count
responses for neuron labelling) and by tests that inspect internal dynamics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.snn.neurons import NeuronGroup


class SpikeMonitor:
    """Accumulates spike counts (and optionally the full raster) of a group.

    Parameters
    ----------
    group:
        The neuron group to observe.
    record_raster:
        When ``True`` the full boolean spike raster is kept (one row per
        timestep); otherwise only cumulative per-neuron counts are stored.
    """

    def __init__(self, group: NeuronGroup, record_raster: bool = False) -> None:
        self.group = group
        self.record_raster = bool(record_raster)
        self.counts = np.zeros(group.n, dtype=np.int64)
        self._raster: List[np.ndarray] = []

    def observe(self) -> None:
        """Sample the group's current spike vector.

        In batch mode (``(batch_size, n)`` spikes) the per-neuron counts
        accumulate the spikes of every sample, so ``counts`` always keeps its
        ``(n,)`` shape — batch-shaped buffers never leak into the monitor's
        accumulators.
        """
        spikes = self.group.spikes
        if spikes.ndim == 2:
            self.counts += spikes.sum(axis=0)
        else:
            self.counts += spikes
        if self.record_raster:
            self._raster.append(spikes.copy())

    def reset(self) -> None:
        """Clear accumulated counts and raster."""
        self.counts[:] = 0
        self._raster.clear()

    @property
    def total_spikes(self) -> int:
        """Total number of spikes observed since the last reset."""
        return int(self.counts.sum())

    @property
    def raster(self) -> np.ndarray:
        """Boolean raster (empty if not recorded).

        Shape ``(timesteps, n)`` for single-sample runs and
        ``(timesteps, batch_size, n)`` for batched runs.  Mixing the two in
        one recording raises; call :meth:`reset` (or ``Network.reset``)
        between runs of different batch shapes.
        """
        if not self._raster:
            return np.zeros((0, self.group.n), dtype=bool)
        shapes = {row.shape for row in self._raster}
        if len(shapes) > 1:
            raise ValueError(
                "raster mixes single-sample and batched observations "
                f"({sorted(shapes)}); reset the monitor between runs of "
                "different batch shapes"
            )
        return np.stack(self._raster)


#: Rows the state-monitor buffer starts with; doubled whenever it fills.
_INITIAL_CAPACITY = 64


class StateMonitor:
    """Records a named numeric attribute of any simulation object each step.

    Observations land in a preallocated buffer that doubles when full
    (``np.copyto`` into the next row), so a long run costs one amortized
    row copy per step instead of a fresh ``np.array(..., copy=True)``
    allocation every timestep.
    """

    def __init__(self, target, attribute: str) -> None:
        if not hasattr(target, attribute):
            raise AttributeError(
                f"{type(target).__name__} has no attribute {attribute!r}"
            )
        self.target = target
        self.attribute = attribute
        self._buffer: Optional[np.ndarray] = None
        self._count = 0
        # Observations whose shape disagrees with the buffer's (e.g. a
        # batched run after a single-sample run without a reset).  They are
        # kept — ``last`` still reports the most recent observation — and
        # make ``history`` raise, exactly like the pre-buffer behaviour.
        self._mismatched: List[np.ndarray] = []
        self._last_was_mismatched = False

    def observe(self) -> None:
        """Record the observed attribute's current value (copied)."""
        value = np.asarray(getattr(self.target, self.attribute), dtype=float)
        if self._buffer is None:
            self._buffer = np.empty((_INITIAL_CAPACITY,) + value.shape,
                                    dtype=float)
        elif value.shape != self._buffer.shape[1:]:
            self._mismatched.append(value.copy())
            self._last_was_mismatched = True
            return
        if self._count == self._buffer.shape[0]:
            grown = np.empty((2 * self._count,) + self._buffer.shape[1:],
                             dtype=float)
            grown[: self._count] = self._buffer
            self._buffer = grown
        # In-place row copy (0-d values assign through indexing, where
        # np.copyto would see an unwritable scalar).
        self._buffer[self._count] = value
        self._count += 1
        self._last_was_mismatched = False

    def reset(self) -> None:
        """Clear the recorded history (the next run may change shapes)."""
        self._buffer = None
        self._count = 0
        self._mismatched.clear()
        self._last_was_mismatched = False

    @property
    def history(self) -> np.ndarray:
        """Stacked history with shape ``(timesteps, *value_shape)``.

        Like :attr:`SpikeMonitor.raster`, mixing observations of different
        shapes (e.g. a batched and a single-sample run without a reset in
        between) raises a descriptive error.
        """
        if self._mismatched:
            shapes = {self._buffer.shape[1:]}
            shapes.update(value.shape for value in self._mismatched)
            raise ValueError(
                "history mixes observations of different shapes "
                f"({sorted(shapes)}); reset the monitor between runs of "
                "different batch shapes"
            )
        if self._count == 0:
            return np.zeros((0,), dtype=float)
        return self._buffer[: self._count].copy()

    @property
    def last(self) -> Optional[np.ndarray]:
        """Most recently observed value, or ``None`` if nothing was recorded."""
        if self._last_was_mismatched:
            return self._mismatched[-1]
        if self._count == 0:
            return None
        # np.array keeps 0-d observations as 0-d arrays (plain indexing of a
        # 1-D buffer would hand back an immutable numpy scalar).
        return np.array(self._buffer[self._count - 1], dtype=float)

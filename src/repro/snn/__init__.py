"""Clock-driven spiking-neural-network simulation substrate.

This package implements the simulation engine that every model in the
reproduction is built on: neuron groups (Poisson input, LIF, adaptive LIF),
conductance-style synaptic connections, spike traces, topology builders,
monitors, and the :class:`~repro.snn.network.Network` orchestrator.

The engine is intentionally small and fully vectorized with numpy, with the
same semantics as the BindsNET/Brian-style pipelines used by the original
paper: exponential membrane / conductance / trace decay, adaptive threshold
potential, and per-timestep learning-rule hooks.
"""

from repro.snn.monitors import SpikeMonitor, StateMonitor
from repro.snn.network import Network
from repro.snn.neurons import (
    AdaptiveLIFGroup,
    InputGroup,
    LIFGroup,
    NeuronGroup,
)
from repro.snn.simulation import OperationCounter, SimulationParameters
from repro.snn.synapses import Connection, UniformLateralInhibition
from repro.snn.topology import (
    all_to_all_except_self_weights,
    dense_random_weights,
    lateral_inhibition_weights,
    one_to_one_weights,
)
from repro.snn.traces import SpikeTrace

__all__ = [
    "AdaptiveLIFGroup",
    "Connection",
    "InputGroup",
    "LIFGroup",
    "Network",
    "NeuronGroup",
    "OperationCounter",
    "SimulationParameters",
    "SpikeMonitor",
    "SpikeTrace",
    "StateMonitor",
    "UniformLateralInhibition",
    "all_to_all_except_self_weights",
    "dense_random_weights",
    "lateral_inhibition_weights",
    "one_to_one_weights",
]

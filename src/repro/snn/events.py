"""Event-stream representation and the analytic silent-gap machinery.

This module is the heart of the event-driven simulation path
(:meth:`repro.snn.network.Network.run_events`): instead of walking every
timestep of the grid, the engine keeps a time-ordered queue of input spike
events and advances the network between events with *closed-form*
exponential decay.

Two pieces live here:

:class:`EventStream`
    A native sparse representation of an input spike train — parallel
    ``(times, channels)`` arrays of step-indexed firings, the
    ``list_firings`` idiom.  Converts losslessly to and from the dense
    ``(timesteps, n)`` boolean trains the rest of the system uses, so both
    representations drive the same engine.

The analytic advance
    :func:`silence_is_provable` decides whether a gap of input-silent
    timesteps can be skipped: it proves, with a conservative bound, that no
    neuron could fire anywhere in the gap even under the stepped
    arithmetic.  :func:`advance_analytic` then moves every exponential
    state variable (membranes, conductances, theta, STDP traces) across
    the gap in one closed-form update each.

The no-spike bound
------------------
With the engine's step order (conductances decay *before* injecting
current), a gap of ``k`` input-silent steps evolves each membrane as::

    v_k - v_rest = lam**k (v_0 - v_rest)
                   + dt * sum_j c_j g_j0 * sum_{m=1..k} lam**(k-m) mu_j**m

where ``lam = exp(-dt/tau_m)``, ``mu_j = exp(-dt/tau_syn_j)`` and ``c_j``
is the connection's signed gain.  Dropping inhibitory terms (``c_j < 0``),
bounding ``lam**(k-m) <= 1`` and summing the geometric tail gives the
per-neuron ceiling::

    v_k <= v_rest + max(v_0 - v_rest, 0) + dt * sum_{c_j>0} c_j g_j0 mu_j/(1-mu_j)

valid for *every* ``k``.  If that ceiling clears the firing-threshold
floor (``v_thresh``; adaptive theta only raises it) by an absolute safety
margin far above float rounding, the whole gap is provably silent and can
be jumped.  Anything unprovable is simply stepped with the ordinary
bit-exact kernels — correctness never depends on the bound being tight.

The closed form multiplies by ``decay**k`` where the stepped path
multiplies by ``decay`` ``k`` times; the two differ by accumulated
rounding (~1 ULP per decade of ``k``), which is why the ``eventqueue``
backend declares the ``tolerance`` equivalence tier for float state while
spike counts stay exact (jumped steps are provably spike-free under
either arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup

#: Absolute safety margin (mV) between the no-spike ceiling and the
#: threshold floor.  Stepped float rounding over a gap is ~1e-10 mV; the
#: margin is orders of magnitude above it, and a bound this close to
#: threshold is not worth jumping anyway.
NO_SPIKE_MARGIN = 1e-6


@dataclass(frozen=True)
class EventStream:
    """Sparse (time, channel) representation of an input spike train.

    Parameters
    ----------
    times:
        Integer step indices of the events, ``0 <= t < n_steps``.  Sorted
        on construction (stably, so same-step channel order is kept).
    channels:
        Input-channel index of each event, ``0 <= c < n_channels``.
    n_steps:
        Length of the time grid the events live on.
    n_channels:
        Width of the input population.
    """

    times: np.ndarray
    channels: np.ndarray
    n_steps: int
    n_channels: int

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.int64).ravel()
        channels = np.asarray(self.channels, dtype=np.int64).ravel()
        if times.shape != channels.shape:
            raise ValueError(
                f"times and channels must have equal length, got "
                f"{times.size} and {channels.size}"
            )
        n_steps = int(self.n_steps)
        n_channels = int(self.n_channels)
        if n_steps <= 0 or n_channels <= 0:
            raise ValueError(
                f"n_steps and n_channels must be positive, got "
                f"({n_steps}, {n_channels})"
            )
        if times.size:
            if times.min() < 0 or times.max() >= n_steps:
                raise ValueError(
                    f"event times must lie in [0, {n_steps}), got "
                    f"[{times.min()}, {times.max()}]"
                )
            if channels.min() < 0 or channels.max() >= n_channels:
                raise ValueError(
                    f"event channels must lie in [0, {n_channels}), got "
                    f"[{channels.min()}, {channels.max()}]"
                )
            order = np.argsort(times, kind="stable")
            times = times[order]
            channels = channels[order]
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "channels", channels)
        object.__setattr__(self, "n_steps", n_steps)
        object.__setattr__(self, "n_channels", n_channels)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dense(cls, train: np.ndarray) -> "EventStream":
        """Convert a dense ``(timesteps, n)`` boolean train losslessly."""
        train = np.asarray(train)
        if train.ndim != 2:
            raise ValueError(
                f"dense train must have shape (timesteps, n), got {train.shape}"
            )
        times, channels = np.nonzero(np.asarray(train, dtype=bool))
        return cls(times=times, channels=channels,
                   n_steps=train.shape[0], n_channels=train.shape[1])

    @classmethod
    def empty(cls, n_steps: int, n_channels: int) -> "EventStream":
        """A stream with no events (an all-silent input)."""
        return cls(times=np.zeros(0, dtype=np.int64),
                   channels=np.zeros(0, dtype=np.int64),
                   n_steps=n_steps, n_channels=n_channels)

    # -- views ---------------------------------------------------------------

    @property
    def n_events(self) -> int:
        """Total number of (time, channel) events."""
        return int(self.times.size)

    @property
    def density(self) -> float:
        """Events per grid cell, ``n_events / (n_steps * n_channels)``."""
        return self.n_events / float(self.n_steps * self.n_channels)

    @property
    def active_steps(self) -> np.ndarray:
        """Sorted unique step indices that carry at least one event."""
        return np.unique(self.times)

    def to_dense(self) -> np.ndarray:
        """The equivalent dense ``(n_steps, n_channels)`` boolean train."""
        train = np.zeros((self.n_steps, self.n_channels), dtype=bool)
        train[self.times, self.channels] = True
        return train

    def step_channels(self) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Events grouped by step: ``(active_steps, channels_per_step)``."""
        if not self.n_events:
            return np.zeros(0, dtype=np.int64), []
        unique_times, starts = np.unique(self.times, return_index=True)
        return unique_times, np.split(self.channels, starts[1:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventStream(n_events={self.n_events}, n_steps={self.n_steps}, "
            f"n_channels={self.n_channels}, density={self.density:.4%})"
        )


def as_event_stream(source, n_channels: Optional[int] = None) -> "EventStream":
    """Coerce ``source`` (EventStream or dense 2-D train) to an EventStream."""
    if isinstance(source, EventStream):
        stream = source
    else:
        stream = EventStream.from_dense(source)
    if n_channels is not None and stream.n_channels != n_channels:
        raise ValueError(
            f"event stream has {stream.n_channels} channels, "
            f"expected {n_channels}"
        )
    return stream


# -- the analytic silent-gap advance ----------------------------------------


def _incoming_connections(network) -> dict:
    """Connections grouped by target-group name (lateral loops included)."""
    incoming: dict = {name: [] for name, group in network.groups.items()
                      if not isinstance(group, InputGroup)}
    for connection in network.connections:
        incoming[connection.post.name].append(connection)
    return incoming


def silence_is_provable(network, margin: float = NO_SPIKE_MARGIN) -> bool:
    """Whether no neuron can fire in an input-silent gap starting now.

    Conservative on three axes: pending spikes or active refractory timers
    anywhere veto the jump outright (their delayed deliveries and reset
    dynamics are cheap to just step through), inhibitory drive is dropped
    from the membrane ceiling, and the ceiling must clear the threshold
    floor by :data:`NO_SPIKE_MARGIN`.  A ``False`` costs a few stepped
    timesteps; a ``True`` is a proof.
    """
    dt = network.params.dt
    incoming = _incoming_connections(network)
    for name, group in network.groups.items():
        if isinstance(group, InputGroup):
            continue
        if group.spikes.any():
            # Last step's spikes still owe a delayed lateral/recurrent
            # delivery on the next step; step it instead of proving it.
            return False
        if np.any(group.refrac_remaining > 0.0):
            return False
        ceiling = group.v_rest + np.maximum(group.v - group.v_rest, 0.0)
        for connection in incoming[name]:
            if connection.sign <= 0:
                continue  # inhibition only lowers the ceiling
            mu = np.exp(-dt / connection.tau_syn)
            tail = mu / (1.0 - mu)
            ceiling = ceiling + (
                dt * connection.gain * tail
                * np.maximum(connection.conductance, 0.0)
            )
        floor = group.v_thresh
        theta = getattr(group, "theta", None)
        if theta is not None:
            # theta >= 0 only raises the threshold; a (hypothetical)
            # negative theta decays toward zero from below, so its initial
            # value is the conservative floor offset.
            floor = floor + min(float(np.min(theta)), 0.0)
        if np.max(ceiling) >= floor - margin:
            return False
    return True


def _geometric_drive(mu: float, lam: float, delta: int) -> float:
    """``sum_{m=1..delta} lam**(delta-m) * mu**m`` in closed form."""
    if abs(mu - lam) < 1e-12:
        return delta * lam ** delta
    return mu * (mu ** delta - lam ** delta) / (mu - lam)


def advance_analytic(network, delta: int, *, decay_traces: bool = False) -> None:
    """Advance all exponential state across ``delta`` provably silent steps.

    One closed-form update per state array: membranes get the two-exponential
    drive formula from the module docstring, conductances / theta / traces a
    single ``decay**delta``.  Tallies the work actually performed (one
    analytic update per element) plus ``steps_skipped=delta``, which is what
    lets the energy model attribute event-driven savings honestly.

    Callers must have established :func:`silence_is_provable` first; this
    function assumes zero refractory timers and no pending spikes.
    """
    dt = network.params.dt
    counter = network.counter
    incoming = _incoming_connections(network)

    for name, group in network.groups.items():
        if isinstance(group, InputGroup) or not isinstance(group, LIFGroup):
            continue
        lam = np.exp(-dt / group.tau_m)
        lam_pow = lam ** delta
        drive = np.zeros(group.state_shape, dtype=float)
        for connection in incoming[name]:
            mu = np.exp(-dt / connection.tau_syn)
            coefficient = connection.sign * connection.gain
            drive += (coefficient * _geometric_drive(mu, lam, delta)) \
                * connection.conductance
        group.v = group.v_rest + (group.v - group.v_rest) * lam_pow + dt * drive
        counter.add(neuron_updates=group.n, exponential_ops=group.n)
        if isinstance(group, AdaptiveLIFGroup) and group.adapt_theta:
            group.theta = group.theta * np.exp(-dt / group.tau_theta) ** delta
            counter.add(neuron_updates=group.n, exponential_ops=group.n)

    for connection in network.connections:
        mu = np.exp(-dt / connection.tau_syn)
        connection.conductance = connection.conductance * mu ** delta
        counter.add(exponential_ops=connection.post.n)

    if decay_traces:
        for connection in network.connections:
            rule = connection.learning_rule
            if rule is None:
                continue
            for trace in (getattr(rule, "pre_trace", None),
                          getattr(rule, "post_trace", None)):
                if trace is None:
                    continue
                trace.values = trace.values * np.exp(-dt / trace.tau) ** delta
                counter.add(exponential_ops=trace.n, trace_updates=trace.n)

    counter.add(steps_skipped=int(delta))

"""Neuron group models.

Three neuron groups are provided:

``InputGroup``
    Replays a pre-computed spike train (e.g. a Poisson rate-coded image).
``LIFGroup``
    Leaky Integrate-and-Fire neurons with exponential membrane decay,
    refractory period, and a fixed firing threshold.  Used for the inhibitory
    layer of the baseline architecture.
``AdaptiveLIFGroup``
    LIF neurons with an adaptation potential ``theta`` added to the firing
    threshold (``V_th + theta``), increased on every spike and exponentially
    decaying otherwise.  Used for the excitatory layer, exactly as in
    Diehl & Cook (2015) and in the SpikeDyn paper's Section II.

All state is vectorized; a group of ``n`` neurons stores ``n``-element numpy
arrays and advances one timestep per :meth:`step` call.

Batched simulation
------------------
Every group additionally supports a *batch mode* used by
:meth:`repro.snn.network.Network.run_batch`: between :meth:`~NeuronGroup.begin_batch`
and :meth:`~NeuronGroup.end_batch` the per-neuron state arrays take the shape
``(batch_size, n)`` and :meth:`step` advances ``batch_size`` independent
samples at once.  Because every state update is elementwise, the batched
update of sample ``b`` performs exactly the same floating-point operations as
a sequential update of that sample, so results are bit-for-bit identical.
Slowly-varying adaptation state (``theta``) is copied per sample on entry and
restored on exit — a batched run never mutates persistent adaptation state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.snn.simulation import OperationCounter
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


class NeuronGroup:
    """Base class for all neuron groups.

    Parameters
    ----------
    n:
        Number of neurons in the group.
    name:
        Human-readable identifier used by the network and monitors.
    backend:
        Compute backend executing the group's state-update kernels; defaults
        to the dense reference backend.  :meth:`repro.snn.network.Network.
        add_group` overwrites it with the network's backend, so the network
        is the single place that decides the compute policy.
    """

    def __init__(self, n: int, name: str = "group",
                 backend: BackendLike = None) -> None:
        self.n = check_positive_int(n, "n")
        self.name = str(name)
        self.backend = get_backend(backend)
        self._batch_size: Optional[int] = None
        self.spikes = np.zeros(self.n, dtype=bool)

    # -- properties ---------------------------------------------------------

    @property
    def parameter_count(self) -> int:
        """Number of per-neuron state parameters held in memory.

        Used by the analytical memory model (Section III-C of the paper):
        each neuron parameter contributes ``bit_precision`` bits.
        """
        return 0

    @property
    def batch_size(self) -> Optional[int]:
        """Active batch size, or ``None`` outside batch mode."""
        return self._batch_size

    @property
    def state_shape(self) -> tuple:
        """Shape of the per-neuron state arrays in the current mode."""
        if self._batch_size is None:
            return (self.n,)
        return (self._batch_size, self.n)

    # -- batch lifecycle ----------------------------------------------------

    def begin_batch(self, batch_size: int) -> None:
        """Switch the group's state arrays to ``(batch_size, n)`` buffers."""
        if self._batch_size is not None:
            raise RuntimeError(
                f"group {self.name!r} is already in batch mode "
                f"(batch_size={self._batch_size})"
            )
        self._batch_size = check_positive_int(batch_size, "batch_size")
        self._enter_batch()

    def end_batch(self) -> None:
        """Return to single-sample ``(n,)`` buffers (no-op outside batch mode)."""
        if self._batch_size is None:
            return
        self._batch_size = None
        self._exit_batch()

    def _enter_batch(self) -> None:
        """Allocate batch-shaped transient state (hook for subclasses)."""
        self.spikes = np.zeros(self.state_shape, dtype=bool)

    def _exit_batch(self) -> None:
        """Restore single-sample transient state (hook for subclasses)."""
        self.spikes = np.zeros(self.n, dtype=bool)

    # -- lifecycle ----------------------------------------------------------

    def reset_state(self, full: bool = False) -> None:
        """Clear transient state between samples.

        Parameters
        ----------
        full:
            When ``True`` also clear slowly-varying adaptation state (e.g.
            the threshold adaptation ``theta``), returning the group to its
            construction-time state.
        """
        # Reassign instead of zeroing in place: ``spikes`` may alias external
        # data (e.g. a row of the spike train an InputGroup is replaying).
        self.spikes = np.zeros(self.state_shape, dtype=bool)

    def step(self, input_current: np.ndarray, dt: float,
             counter: Optional[OperationCounter] = None) -> np.ndarray:
        """Advance the group by one timestep and return the spike vector."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, n={self.n})"


class InputGroup(NeuronGroup):
    """Spike-source group that replays an externally supplied spike train."""

    def __init__(self, n: int, name: str = "input") -> None:
        super().__init__(n, name)
        self._train: Optional[np.ndarray] = None
        self._cursor = 0

    @property
    def parameter_count(self) -> int:
        # Input neurons carry no persistent state parameters.
        return 0

    def set_spike_train(self, train: np.ndarray) -> None:
        """Load a boolean spike train for replay.

        Expects shape ``(timesteps, n)`` in single-sample mode and
        ``(batch_size, timesteps, n)`` in batch mode.
        """
        train = np.asarray(train)
        if self._batch_size is None:
            if train.ndim != 2 or train.shape[1] != self.n:
                raise ValueError(
                    f"spike train must have shape (timesteps, {self.n}), got {train.shape}"
                )
        elif (train.ndim != 3 or train.shape[0] != self._batch_size
              or train.shape[2] != self.n):
            raise ValueError(
                "batched spike train must have shape "
                f"({self._batch_size}, timesteps, {self.n}), got {train.shape}"
            )
        self._train = train.astype(bool)
        self._cursor = 0

    def clear_spike_train(self) -> None:
        """Remove the loaded spike train (the group then emits no spikes)."""
        self._train = None
        self._cursor = 0

    @property
    def remaining_steps(self) -> int:
        """Number of not-yet-replayed timesteps in the loaded train."""
        if self._train is None:
            return 0
        time_axis = 1 if self._train.ndim == 3 else 0
        return max(0, self._train.shape[time_axis] - self._cursor)

    def reset_state(self, full: bool = False) -> None:
        super().reset_state(full)
        self._cursor = 0
        if full:
            self._train = None

    def _enter_batch(self) -> None:
        # A previously loaded (timesteps, n) train is invalid in batch mode.
        super()._enter_batch()
        self.clear_spike_train()

    def _exit_batch(self) -> None:
        super()._exit_batch()
        self.clear_spike_train()

    def step(self, input_current: np.ndarray, dt: float,
             counter: Optional[OperationCounter] = None) -> np.ndarray:
        """Emit the next row of the loaded spike train (or silence)."""
        if self._train is None or self.remaining_steps == 0:
            self.spikes = np.zeros(self.state_shape, dtype=bool)
        elif self._train.ndim == 3:
            self.spikes = self._train[:, self._cursor]
            self._cursor += 1
        else:
            self.spikes = self._train[self._cursor]
            self._cursor += 1
        return self.spikes


class LIFGroup(NeuronGroup):
    """Leaky Integrate-and-Fire neurons.

    The membrane potential follows exponential decay towards ``v_rest`` and
    integrates the synaptic input current::

        v <- v_rest + (v - v_rest) * exp(-dt / tau_m) + I * dt

    A neuron fires when ``v`` exceeds :meth:`firing_threshold`, after which
    the potential is clamped to ``v_reset`` for ``refractory`` milliseconds.

    Parameters
    ----------
    n:
        Number of neurons.
    v_rest, v_reset, v_thresh:
        Resting, reset, and threshold potentials (mV).
    tau_m:
        Membrane time constant (ms).
    refractory:
        Absolute refractory period (ms).
    name:
        Group identifier.
    """

    def __init__(
        self,
        n: int,
        *,
        v_rest: float = -65.0,
        v_reset: float = -65.0,
        v_thresh: float = -52.0,
        tau_m: float = 100.0,
        refractory: float = 5.0,
        name: str = "lif",
    ) -> None:
        super().__init__(n, name)
        if v_thresh <= v_reset:
            raise ValueError(
                f"v_thresh ({v_thresh}) must be above v_reset ({v_reset})"
            )
        self.v_rest = float(v_rest)
        self.v_reset = float(v_reset)
        self.v_thresh = float(v_thresh)
        self.tau_m = check_positive(tau_m, "tau_m")
        self.refractory = check_non_negative(refractory, "refractory")

        self.v = np.full(self.n, self.v_rest, dtype=float)
        self.refrac_remaining = np.zeros(self.n, dtype=float)

    @property
    def parameter_count(self) -> int:
        # Membrane potential and refractory timer per neuron.
        return 2 * self.n

    def firing_threshold(self) -> np.ndarray:
        """Per-neuron firing threshold (``V_th`` for a plain LIF group)."""
        return np.full(self.n, self.v_thresh, dtype=float)

    def reset_state(self, full: bool = False) -> None:
        super().reset_state(full)
        self.v[:] = self.v_rest
        self.refrac_remaining[:] = 0.0

    def _enter_batch(self) -> None:
        super()._enter_batch()
        self.v = np.full(self.state_shape, self.v_rest, dtype=float)
        self.refrac_remaining = np.zeros(self.state_shape, dtype=float)

    def _exit_batch(self) -> None:
        super()._exit_batch()
        self.v = np.full(self.n, self.v_rest, dtype=float)
        self.refrac_remaining = np.zeros(self.n, dtype=float)

    def step(self, input_current: np.ndarray, dt: float,
             counter: Optional[OperationCounter] = None) -> np.ndarray:
        input_current = np.asarray(input_current, dtype=float)
        if input_current.shape != self.state_shape:
            raise ValueError(
                f"input_current must have shape {self.state_shape}, "
                f"got {input_current.shape}"
            )

        # Decay, integrate, fire, reset — executed by the active backend
        # (the decay factor is precomputed so every backend sees the same
        # scalar).
        self.v, self.spikes, self.refrac_remaining = self.backend.lif_step(
            self.v,
            self.refrac_remaining,
            input_current,
            self.firing_threshold(),
            decay=np.exp(-dt / self.tau_m),
            v_rest=self.v_rest,
            v_reset=self.v_reset,
            refractory=self.refractory,
            dt=dt,
        )

        if counter is not None:
            batch = self._batch_size if self._batch_size is not None else 1
            counter.add(
                neuron_updates=self.n * batch,
                exponential_ops=self.n * batch,
                spike_events=int(self.spikes.sum()),
            )
        self._post_spike_update(dt, counter)
        return self.spikes

    def _post_spike_update(self, dt: float,
                           counter: Optional[OperationCounter]) -> None:
        """Hook for subclasses to update adaptation state after spiking."""


class AdaptiveLIFGroup(LIFGroup):
    """LIF neurons with an adaptive threshold potential ``V_th + theta``.

    Each spike increases the neuron's adaptation potential ``theta`` by
    ``theta_plus``; otherwise ``theta`` decays exponentially with time
    constant ``tau_theta``.  This is the homeostatic mechanism that prevents
    single neurons from dominating the spiking activity (paper Section II).

    Parameters
    ----------
    theta_plus:
        Increment added to ``theta`` on every spike (mV).
    tau_theta:
        Exponential decay time constant of ``theta`` (ms).  The paper calls
        the corresponding decay rate ``theta_decay``.
    theta_init:
        Initial adaptation potential applied to all neurons (mV).
    """

    def __init__(
        self,
        n: int,
        *,
        v_rest: float = -65.0,
        v_reset: float = -65.0,
        v_thresh: float = -52.0,
        tau_m: float = 100.0,
        refractory: float = 5.0,
        theta_plus: float = 0.05,
        tau_theta: float = 1.0e7,
        theta_init: float = 0.0,
        name: str = "excitatory",
    ) -> None:
        super().__init__(
            n,
            v_rest=v_rest,
            v_reset=v_reset,
            v_thresh=v_thresh,
            tau_m=tau_m,
            refractory=refractory,
            name=name,
        )
        self.theta_plus = check_non_negative(theta_plus, "theta_plus")
        self.tau_theta = check_positive(tau_theta, "tau_theta")
        self.theta_init = check_non_negative(theta_init, "theta_init")
        self.theta = np.full(self.n, self.theta_init, dtype=float)
        self.adapt_theta = True
        self._theta_stash: Optional[np.ndarray] = None

    @property
    def parameter_count(self) -> int:
        # Membrane potential, refractory timer, and theta per neuron.
        return 3 * self.n

    @property
    def theta_decay_rate(self) -> float:
        """Decay rate of the adaptation potential (``1 / tau_theta``)."""
        return 1.0 / self.tau_theta

    def firing_threshold(self) -> np.ndarray:
        return self.v_thresh + self.theta

    def reset_state(self, full: bool = False) -> None:
        super().reset_state(full)
        if full:
            self.theta[:] = self.theta_init
            if self._theta_stash is not None:
                self._theta_stash[:] = self.theta_init

    def _enter_batch(self) -> None:
        # Each sample in the batch adapts an independent copy of the current
        # theta; the persistent vector is restored untouched on exit.
        self._theta_stash = self.theta
        self.theta = np.repeat(self.theta[None, :], self._batch_size, axis=0)
        super()._enter_batch()

    def _exit_batch(self) -> None:
        super()._exit_batch()
        if self._theta_stash is not None:
            self.theta = self._theta_stash
            self._theta_stash = None

    def _post_spike_update(self, dt: float,
                           counter: Optional[OperationCounter]) -> None:
        if not self.adapt_theta:
            return
        # Exponential decay of theta, plus an additive boost on spikes.
        self.theta = self.backend.theta_step(
            self.theta,
            self.spikes,
            decay=np.exp(-dt / self.tau_theta),
            theta_plus=self.theta_plus,
        )
        if counter is not None:
            batch = self._batch_size if self._batch_size is not None else 1
            counter.add(exponential_ops=self.n * batch, neuron_updates=self.n * batch)

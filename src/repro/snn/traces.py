"""Exponentially decaying spike traces.

Trace-based STDP (used by the baseline, ASP, and SpikeDyn learning rules)
keeps a low-pass-filtered record of recent spiking activity per neuron: a
trace ``x`` is bumped whenever the neuron spikes and decays exponentially
otherwise.  The trace value at the moment of the *other* side's spike
determines the magnitude of the weight change.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.snn.simulation import OperationCounter
from repro.utils.validation import check_choice, check_positive, check_positive_int


class SpikeTrace:
    """Vector of exponentially decaying spike traces.

    Parameters
    ----------
    n:
        Number of trace elements (one per neuron).
    tau:
        Exponential decay time constant in milliseconds.
    increment:
        Amount added (``mode='add'``) or assigned (``mode='set'``) on a spike.
    mode:
        ``'add'`` accumulates increments (the trace can exceed ``increment``);
        ``'set'`` clamps the trace to ``increment`` on each spike, which is
        the behaviour used by Diehl & Cook style pipelines.
    backend:
        Compute backend executing the decay/bump kernels; learning rules
        keep it synchronized with their connection's backend.
    """

    def __init__(
        self,
        n: int,
        tau: float = 20.0,
        increment: float = 1.0,
        mode: str = "set",
        backend: BackendLike = None,
    ) -> None:
        self.n = check_positive_int(n, "n")
        self.tau = check_positive(tau, "tau")
        self.increment = float(increment)
        self.mode = check_choice(mode, ("set", "add"), "mode")
        self.backend = get_backend(backend)
        self._batch_size: Optional[int] = None
        self.values = np.zeros(self.n, dtype=float)

    @property
    def batch_size(self) -> Optional[int]:
        """Active batch size, or ``None`` outside batch mode."""
        return self._batch_size

    @property
    def state_shape(self) -> tuple:
        """Shape of the trace array in the current mode."""
        if self._batch_size is None:
            return (self.n,)
        return (self._batch_size, self.n)

    def begin_batch(self, batch_size: int) -> None:
        """Track ``batch_size`` independent trace vectors at once.

        Note: the engine currently applies plasticity sequentially
        (``run_batch(learning=True)`` delegates to ``run_sample``), so this
        lifecycle is not driven by :class:`~repro.snn.network.Network` yet;
        it exists so learning rules can batch their trace updates when a
        vectorized learning path lands.
        """
        if self._batch_size is not None:
            raise RuntimeError(
                f"trace is already in batch mode (batch_size={self._batch_size})"
            )
        self._batch_size = check_positive_int(batch_size, "batch_size")
        self.values = np.zeros(self.state_shape, dtype=float)

    def end_batch(self) -> None:
        """Return to a single trace vector (no-op outside batch mode)."""
        if self._batch_size is None:
            return
        self._batch_size = None
        self.values = np.zeros(self.n, dtype=float)

    def reset(self) -> None:
        """Zero all trace values."""
        self.values[:] = 0.0

    def decay(self, dt: float, counter: Optional[OperationCounter] = None) -> None:
        """Apply one timestep of exponential decay."""
        self.values = self.backend.decay_state(self.values,
                                               np.exp(-dt / self.tau))
        if counter is not None:
            batch = self._batch_size if self._batch_size is not None else 1
            counter.add(exponential_ops=self.n * batch, trace_updates=self.n * batch)

    def update(self, spikes: np.ndarray,
               counter: Optional[OperationCounter] = None) -> None:
        """Bump the traces of the neurons that spiked this timestep."""
        spikes = np.asarray(spikes, dtype=bool)
        if spikes.shape != self.state_shape:
            raise ValueError(
                f"spikes must have shape {self.state_shape}, got {spikes.shape}"
            )
        self.values = self.backend.bump_trace(
            self.values, spikes, self.increment, self.mode
        )
        if counter is not None:
            counter.add(trace_updates=int(spikes.sum()))

    def step(self, spikes: np.ndarray, dt: float,
             counter: Optional[OperationCounter] = None) -> np.ndarray:
        """Decay then update in one call; returns the current trace values."""
        self.decay(dt, counter)
        self.update(spikes, counter)
        return self.values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpikeTrace(n={self.n}, tau={self.tau}, mode={self.mode!r})"

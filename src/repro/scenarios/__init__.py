"""Composable continual-learning scenarios.

This package turns the repository's two stock streams (strict
task-incremental and i.i.d. shuffled — :mod:`repro.datasets.streams`) into a
whole workload axis: declarative :class:`ScenarioSpec` objects compose a task
*schedule* (class-incremental arrival, recurring/interleaved tasks, i.i.d.
mixtures) with a chain of stream *transforms* (gradual and abrupt label
drift, Gaussian noise, occlusion, contrast changes, class imbalance).  Every
scenario is fully seed-deterministic, so scenario experiments flow through
the parallel runner's content-addressed result cache like any other driver.

The named catalogue lives in :data:`SCENARIOS`; the continual-learning
metrics the scenarios are evaluated with live in
:mod:`repro.evaluation.continual`.
"""

from repro.scenarios.spec import (
    SCENARIOS,
    Phase,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)
from repro.scenarios.transforms import (
    TRANSFORMS,
    ClassImbalance,
    ContrastScale,
    GaussianNoise,
    LabelDrift,
    Occlusion,
    StreamTransform,
    build_transform,
)

__all__ = [
    "SCENARIOS",
    "TRANSFORMS",
    "ClassImbalance",
    "ContrastScale",
    "GaussianNoise",
    "LabelDrift",
    "Occlusion",
    "Phase",
    "ScenarioSpec",
    "StreamTransform",
    "build_transform",
    "get_scenario",
    "scenario_names",
]

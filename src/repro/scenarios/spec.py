"""Declarative, seed-deterministic scenario specifications.

A :class:`ScenarioSpec` is a small JSON-safe description of one
continual-learning workload: a *schedule* (which tasks arrive, in which
order, with how many samples) plus a chain of *transforms* (corruptions,
drift, imbalance — see :mod:`repro.scenarios.transforms`).  Building the
spec against a digit source materializes the stream:

>>> spec = ScenarioSpec(
...     name="demo",
...     schedule={"kind": "class_incremental", "tasks": [[0, 1], [2, 3]],
...               "samples_per_task": 8},
...     transforms=({"kind": "gaussian_noise", "sigma": 0.05},),
... )
>>> stream = spec.build(source, rng=0)   # doctest: +SKIP

Everything is derived from the seed handed to :meth:`ScenarioSpec.build`, so
the same spec and seed always produce a bit-identical stream — the property
the result cache and the regression tests rely on.

:data:`SCENARIOS` is the catalogue of named scenario families; each entry is
a builder ``(scale) -> ScenarioSpec`` that sizes the scenario from an
:class:`~repro.experiments.common.ExperimentScale`.
"""

from __future__ import annotations

import json
import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.datasets.streams import (
    StreamSample,
    nondynamic_stream,
    normalize_task_schedule,
    task_schedule_stream,
)
from repro.scenarios.transforms import StreamTransform, build_transform
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Schedule kinds a spec may declare.
SCHEDULE_KINDS: Tuple[str, ...] = ("class_incremental", "recurring", "iid")


@dataclass(frozen=True)
class Phase:
    """One training phase of a built scenario.

    Attributes
    ----------
    index:
        Position of the phase in the stream (equals the samples'
        ``task_index``).
    task_id:
        Identity of the task this phase trains; recurring schedules visit
        the same ``task_id`` in several phases.
    classes:
        Classes the schedule declares for this task (drift transforms may
        replace some of them in the materialized stream).
    """

    index: int
    task_id: int
    classes: Tuple[int, ...]


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one continual-learning workload.

    Attributes
    ----------
    name:
        Catalogue name of the scenario (used in reports and cache keys).
    schedule:
        ``{"kind": ..., ...}`` declaration — one of

        * ``class_incremental``: ``tasks`` (list of class lists) presented
          once each, ``samples_per_task`` samples per task;
        * ``recurring``: like ``class_incremental`` plus ``repeats`` — the
          whole task list is cycled that many times, so earlier tasks recur
          after later ones (interleaved task arrival);
        * ``iid``: a single phase of ``n_samples`` samples with labels drawn
          uniformly from ``classes``.
    transforms:
        Chain of transform declarations applied to the scheduled stream in
        order (see :data:`repro.scenarios.transforms.TRANSFORMS`).
    description:
        One-line human-readable summary for ``repro scenarios list``.
    """

    name: str
    schedule: Mapping[str, Any]
    transforms: Tuple[Mapping[str, Any], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        # Deep copies: the declarations hold nested lists, and a frozen spec
        # must not be mutable through aliases the caller (or to_dict) holds.
        schedule = copy.deepcopy(dict(self.schedule))
        kind = schedule.get("kind")
        if kind not in SCHEDULE_KINDS:
            known = ", ".join(SCHEDULE_KINDS)
            raise ValueError(f"unknown schedule kind {kind!r}; known kinds: {known}")
        object.__setattr__(self, "schedule", schedule)
        object.__setattr__(
            self, "transforms", tuple(copy.deepcopy(dict(t)) for t in self.transforms)
        )
        # Validate eagerly so a bad spec fails at declaration time, not in a
        # worker process halfway through a suite run.
        self.phases()
        self.built_transforms()

    # -- declaration-derived structure ------------------------------------------

    def phases(self) -> List[Phase]:
        """The training phases this scenario's stream will contain."""
        kind = self.schedule["kind"]
        if kind == "iid":
            classes = tuple(int(c) for c in self.schedule.get("classes", ()))
            if not classes:
                raise ValueError("an iid schedule needs a non-empty class list")
            check_positive_int(int(self.schedule.get("n_samples", 0)), "n_samples")
            return [Phase(index=0, task_id=0, classes=classes)]

        tasks = normalize_task_schedule(self.schedule.get("tasks", ()))
        check_positive_int(
            int(self.schedule.get("samples_per_task", 0)), "samples_per_task"
        )
        repeats = 1
        if kind == "recurring":
            repeats = int(self.schedule.get("repeats", 2))
            check_positive_int(repeats, "repeats")
        phases: List[Phase] = []
        for cycle in range(repeats):
            del cycle
            for task_id, classes in enumerate(tasks):
                phases.append(
                    Phase(index=len(phases), task_id=task_id, classes=classes)
                )
        return phases

    def tasks(self) -> Dict[int, Tuple[int, ...]]:
        """Distinct ``{task_id: classes}`` in first-appearance order."""
        tasks: Dict[int, Tuple[int, ...]] = {}
        for phase in self.phases():
            tasks.setdefault(phase.task_id, phase.classes)
        return tasks

    def classes(self) -> Tuple[int, ...]:
        """Every class the schedule declares, in first-appearance order."""
        seen: List[int] = []
        for phase in self.phases():
            for cls in phase.classes:
                if cls not in seen:
                    seen.append(cls)
        return tuple(seen)

    def built_transforms(self) -> List[StreamTransform]:
        """Instantiated transform chain (validates the declarations)."""
        return [build_transform(declaration) for declaration in self.transforms]

    # -- materialization ---------------------------------------------------------

    def build(self, source, rng: SeedLike = None) -> List[StreamSample]:
        """Materialize the stream against ``source``; fully seed-determined.

        The schedule and every transform draw from one generator in stream
        order, so equal ``(spec, source state, rng seed)`` triples produce
        bit-identical streams.
        """
        generator = ensure_rng(rng)
        kind = self.schedule["kind"]
        if kind == "iid":
            stream = nondynamic_stream(
                source,
                n_samples=int(self.schedule["n_samples"]),
                classes=list(self.schedule["classes"]),
                rng=generator,
            )
        else:
            schedule = [phase.classes for phase in self.phases()]
            stream = task_schedule_stream(
                source,
                schedule,
                samples_per_task=int(self.schedule["samples_per_task"]),
                rng=generator,
            )
        for transform in self.built_transforms():
            stream = transform.apply(stream, source, generator)
        return stream

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe declaration (round-trips through :meth:`from_dict`).

        The result is a deep copy: mutating it never changes this spec.
        """
        return {
            "name": self.name,
            "schedule": copy.deepcopy(dict(self.schedule)),
            "transforms": [copy.deepcopy(dict(t)) for t in self.transforms],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        return cls(
            name=data["name"],
            schedule=dict(data["schedule"]),
            transforms=tuple(dict(t) for t in data.get("transforms", ())),
            description=data.get("description", ""),
        )

    def canonical_json(self) -> str:
        """Canonical JSON form (sorted keys): a stable, order-independent
        serialization for comparing or hashing specs.

        Note that the runner's job keys do *not* include this: the catalogue
        scenarios are part of the driver code, so editing one is covered by
        the same contract as editing any other driver — bump the package
        version (which is in every job key) to invalidate cached results.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


# -- catalogue -------------------------------------------------------------------


def _pair_tasks(classes: Sequence[int]) -> List[List[int]]:
    """Group a class sequence into two-class tasks (last task may be one)."""
    classes = [int(c) for c in classes]
    return [classes[i:i + 2] for i in range(0, len(classes), 2)]


def _single_tasks(classes: Sequence[int]) -> List[List[int]]:
    return [[int(c)] for c in classes]


def class_incremental_scenario(scale) -> ScenarioSpec:
    """Class-incremental arrival with two-class tasks (CIL-style)."""
    return ScenarioSpec(
        name="class-incremental",
        schedule={
            "kind": "class_incremental",
            "tasks": _pair_tasks(scale.class_sequence),
            "samples_per_task": 2 * scale.samples_per_task,
        },
        description="two-class tasks arriving once each, never revisited",
    )


def recurring_scenario(scale) -> ScenarioSpec:
    """Recurring/interleaved tasks: the task cycle is visited twice."""
    return ScenarioSpec(
        name="recurring",
        schedule={
            "kind": "recurring",
            "tasks": _single_tasks(scale.class_sequence),
            "samples_per_task": scale.samples_per_task,
            "repeats": 2,
        },
        description="single-class tasks recurring over two interleaved cycles",
    )


def label_drift_scenario(scale) -> ScenarioSpec:
    """Gradual concept drift: the first class drifts into the last one."""
    classes = [int(c) for c in scale.class_sequence]
    return ScenarioSpec(
        name="label-drift",
        schedule={
            "kind": "recurring",
            "tasks": _single_tasks(classes),
            "samples_per_task": scale.samples_per_task,
            "repeats": 2,
        },
        transforms=(
            {
                "kind": "label_drift",
                "mapping": {str(classes[0]): classes[-1]},
                "start": 0.25,
                "end": 1.0,
            },
        ),
        description="recurring tasks whose first class gradually drifts into "
                    "the last one",
    )


def abrupt_drift_scenario(scale) -> ScenarioSpec:
    """Abrupt concept drift at the middle of the stream."""
    classes = [int(c) for c in scale.class_sequence]
    return ScenarioSpec(
        name="abrupt-drift",
        schedule={
            "kind": "recurring",
            "tasks": _single_tasks(classes),
            "samples_per_task": scale.samples_per_task,
            "repeats": 2,
        },
        transforms=(
            {
                "kind": "label_drift",
                "mapping": {str(classes[0]): classes[-1]},
                "start": 0.5,
                "end": 0.5,
            },
        ),
        description="recurring tasks whose first class switches abruptly to "
                    "the last one at mid-stream",
    )


def corrupted_scenario(scale) -> ScenarioSpec:
    """Class-incremental arrival under input corruption (noise + occlusion)."""
    return ScenarioSpec(
        name="corrupted",
        schedule={
            "kind": "class_incremental",
            "tasks": _pair_tasks(scale.class_sequence),
            "samples_per_task": 2 * scale.samples_per_task,
        },
        transforms=(
            {"kind": "gaussian_noise", "sigma": 0.08},
            {"kind": "occlusion", "fraction": 0.25},
        ),
        description="two-class incremental tasks with Gaussian noise and "
                    "random occlusion patches",
    )


def imbalanced_scenario(scale) -> ScenarioSpec:
    """I.i.d. stream with a heavily under-represented first class."""
    classes = [int(c) for c in scale.class_sequence]
    return ScenarioSpec(
        name="imbalanced",
        schedule={
            "kind": "iid",
            "classes": classes,
            "n_samples": max(2, scale.samples_per_task) * len(classes),
        },
        transforms=(
            {"kind": "class_imbalance", "keep": {str(classes[0]): 0.25}},
        ),
        description="i.i.d. stream where the first class is subsampled to "
                    "one quarter of its share",
    )


def mixture_scenario(scale) -> ScenarioSpec:
    """Recurring tasks under mild mixed corruption (contrast + noise)."""
    return ScenarioSpec(
        name="mixture",
        schedule={
            "kind": "recurring",
            "tasks": _single_tasks(scale.class_sequence),
            "samples_per_task": scale.samples_per_task,
            "repeats": 2,
        },
        transforms=(
            {"kind": "contrast", "factor": 0.7},
            {"kind": "gaussian_noise", "sigma": 0.05},
        ),
        description="recurring tasks with washed-out contrast and mild "
                    "Gaussian noise",
    )


#: Catalogue of named scenario families: ``{name: builder(scale) -> spec}``.
SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "class-incremental": class_incremental_scenario,
    "recurring": recurring_scenario,
    "label-drift": label_drift_scenario,
    "abrupt-drift": abrupt_drift_scenario,
    "corrupted": corrupted_scenario,
    "imbalanced": imbalanced_scenario,
    "mixture": mixture_scenario,
}


def scenario_names() -> List[str]:
    """Catalogue names in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str, scale) -> ScenarioSpec:
    """Build the named scenario sized to ``scale``.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is not in the catalogue.
    """
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
    return builder(scale)

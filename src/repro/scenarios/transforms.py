"""Composable stream transforms for continual-learning scenarios.

A transform maps one task stream (a list of
:class:`~repro.datasets.streams.StreamSample`) to another.  Transforms never
mutate the input stream or its images; each returns a fresh list with fresh
image arrays, so a built scenario can be replayed or re-transformed safely.

Every transform is a small frozen dataclass with an
``apply(stream, source, rng) -> List[StreamSample]`` method:

* ``stream`` is the incoming task stream;
* ``source`` is the digit source the stream was drawn from (only the label
  drift needs it, to regenerate images for drifted classes);
* ``rng`` is the scenario's random generator — transforms draw from it in
  stream order, so a fixed seed yields a bit-identical stream.

Transforms are declared by name in a :class:`~repro.scenarios.spec.
ScenarioSpec` and instantiated through :func:`build_transform`; their
parameters are plain JSON values so a spec can travel through the parallel
runner's content-addressed job keys.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Mapping, Tuple, Type

import numpy as np

from repro.datasets.streams import StreamSample
from repro.utils.validation import check_non_negative, check_positive

#: Valid intensity range of every image in a (possibly corrupted) stream.
INTENSITY_RANGE: Tuple[float, float] = (0.0, 1.0)


def _copy_sample(sample: StreamSample, *, image=None, label=None) -> StreamSample:
    """Fresh :class:`StreamSample` with selected fields replaced."""
    return StreamSample(
        image=np.array(sample.image if image is None else image, dtype=float),
        label=int(sample.label if label is None else label),
        task_index=sample.task_index,
    )


def _clip(image: np.ndarray) -> np.ndarray:
    """Clip an image into the valid intensity range."""
    low, high = INTENSITY_RANGE
    return np.clip(image, low, high)


@dataclass(frozen=True)
class StreamTransform:
    """Base class of every scenario transform (name + apply contract)."""

    #: Registry name of the transform kind; set by each subclass.
    kind = "base"

    def apply(self, stream: List[StreamSample], source, rng) -> List[StreamSample]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe declaration (``kind`` plus the dataclass fields)."""
        data: Dict[str, Any] = {"kind": self.kind}
        data.update(asdict(self))
        return data


@dataclass(frozen=True)
class GaussianNoise(StreamTransform):
    """Additive Gaussian pixel noise, clipped back into the intensity range.

    Parameters
    ----------
    sigma:
        Standard deviation of the noise in intensity units.
    """

    sigma: float = 0.1
    kind = "gaussian_noise"

    def __post_init__(self) -> None:
        check_non_negative(self.sigma, "sigma")

    def apply(self, stream, source, rng):
        del source
        out = []
        for sample in stream:
            noise = rng.normal(0.0, self.sigma, size=sample.image.shape)
            out.append(_copy_sample(sample, image=_clip(sample.image + noise)))
        return out


@dataclass(frozen=True)
class Occlusion(StreamTransform):
    """Zero out a randomly placed square patch of each image.

    Parameters
    ----------
    fraction:
        Side length of the occluded square as a fraction of the image side
        (0 disables the patch, 1 blanks the whole image).
    """

    fraction: float = 0.3
    kind = "occlusion"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], got {self.fraction}")

    def apply(self, stream, source, rng):
        del source
        out = []
        for sample in stream:
            image = np.array(sample.image, dtype=float)
            side = int(round(self.fraction * min(image.shape)))
            if side > 0:
                row = int(rng.integers(0, image.shape[0] - side + 1))
                col = int(rng.integers(0, image.shape[1] - side + 1))
                image[row:row + side, col:col + side] = 0.0
            out.append(_copy_sample(sample, image=image))
        return out


@dataclass(frozen=True)
class ContrastScale(StreamTransform):
    """Rescale image contrast around the mid-intensity point.

    Parameters
    ----------
    factor:
        Contrast multiplier; values below 1 wash the image out, values above
        1 saturate it (the result is clipped into the intensity range).
    """

    factor: float = 0.5
    kind = "contrast"

    def __post_init__(self) -> None:
        check_positive(self.factor, "factor")

    def apply(self, stream, source, rng):
        del source, rng
        midpoint = 0.5 * (INTENSITY_RANGE[0] + INTENSITY_RANGE[1])
        return [
            _copy_sample(
                sample,
                image=_clip(midpoint + self.factor * (sample.image - midpoint)),
            )
            for sample in stream
        ]


@dataclass(frozen=True)
class LabelDrift(StreamTransform):
    """Gradual or abrupt concept drift from one class to another.

    Samples whose label is a key of ``mapping`` are replaced — label *and*
    image — by a freshly drawn sample of the mapped class with probability
    ramping from 0 at ``start`` to 1 at ``end`` (positions are fractions of
    the stream).  ``start == end`` gives an abrupt switch at that point;
    ``start < end`` gives a linear ramp (gradual drift).

    Parameters
    ----------
    mapping:
        ``{old_class: new_class}`` drift targets (JSON object keys are
        strings, so string keys are accepted and coerced).
    start, end:
        Drift window as fractions of the stream length, ``0 <= start <=
        end <= 1``.
    """

    mapping: Mapping[Any, int] = None  # type: ignore[assignment]
    start: float = 0.5
    end: float = 0.5
    kind = "label_drift"

    def __post_init__(self) -> None:
        if not self.mapping:
            raise ValueError("mapping must contain at least one old -> new class")
        if not 0.0 <= self.start <= self.end <= 1.0:
            raise ValueError(
                f"need 0 <= start <= end <= 1, got start={self.start} end={self.end}"
            )
        # Freeze a canonical int -> int copy (JSON round-trips keys as str).
        canonical = {int(key): int(value) for key, value in dict(self.mapping).items()}
        object.__setattr__(self, "mapping", canonical)

    def _drift_probability(self, position: float) -> float:
        """Probability that a sample at stream fraction ``position`` drifts."""
        if position < self.start:
            return 0.0
        if position >= self.end:
            return 1.0
        return (position - self.start) / (self.end - self.start)

    def apply(self, stream, source, rng):
        out = []
        n = max(len(stream) - 1, 1)
        for index, sample in enumerate(stream):
            target = self.mapping.get(int(sample.label))
            if target is not None and rng.random() < self._drift_probability(index / n):
                image = source.generate(int(target), 1, rng=rng)[0]
                out.append(_copy_sample(sample, image=image, label=target))
            else:
                out.append(_copy_sample(sample))
        return out

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        # JSON object keys must be strings; from_dict coerces them back.
        data["mapping"] = {str(key): value for key, value in self.mapping.items()}
        return data


@dataclass(frozen=True)
class ClassImbalance(StreamTransform):
    """Subsample classes to the given keep probabilities.

    Parameters
    ----------
    keep:
        ``{class: probability}`` of keeping each sample of that class;
        classes not listed are always kept.  At least one sample of the
        stream always survives (the stream is never emptied).
    """

    keep: Mapping[Any, float] = None  # type: ignore[assignment]
    kind = "class_imbalance"

    def __post_init__(self) -> None:
        if not self.keep:
            raise ValueError("keep must contain at least one class probability")
        canonical = {int(key): float(value) for key, value in dict(self.keep).items()}
        for cls, probability in canonical.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"keep probability of class {cls} must lie in [0, 1], "
                    f"got {probability}"
                )
        object.__setattr__(self, "keep", canonical)

    def apply(self, stream, source, rng):
        del source
        out = []
        for sample in stream:
            probability = self.keep.get(int(sample.label), 1.0)
            if rng.random() < probability:
                out.append(_copy_sample(sample))
        if not out and stream:
            out.append(_copy_sample(stream[0]))
        return out

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["keep"] = {str(key): value for key, value in self.keep.items()}
        return data


#: Transform kinds instantiable from a declarative spec.
TRANSFORMS: Dict[str, Type[StreamTransform]] = {
    cls.kind: cls
    for cls in (GaussianNoise, Occlusion, ContrastScale, LabelDrift, ClassImbalance)
}


def build_transform(declaration: Mapping[str, Any]) -> StreamTransform:
    """Instantiate a transform from its ``{"kind": ..., **params}`` form."""
    data = dict(declaration)
    kind = data.pop("kind", None)
    if kind not in TRANSFORMS:
        known = ", ".join(sorted(TRANSFORMS))
        raise ValueError(f"unknown transform kind {kind!r}; known kinds: {known}")
    cls = TRANSFORMS[kind]
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {', '.join(unknown)} for transform {kind!r}"
        )
    return cls(**data)

"""Auto-dispatching backend: profile once per workload bucket, then route.

The fixed backends trade off against each other along two axes the caller
usually does not want to think about: *network size* (below roughly the
196x40 geometry the sparse backend's gather/segment-sum overhead costs more
than the dense GEMV it avoids) and *spike density* (above a few percent the
event count approaches the state size and the dense product wins again).
:class:`AutoBackend` closes that gap: the first time a synaptic-propagation
call lands in a new ``(n_pre x n_post, density-band)`` bucket it times the
candidate backends — dense, sparse, and numba when installed — on a copy of
the live arrays, records the winner, and from then on dispatches every call
in that bucket to it with nothing but a dict lookup on the hot path.

Only :meth:`propagate_spikes` is profiled: it is where the crossover lives.
The remaining kernels are inherited from the dense reference — they are
elementwise or scatter updates whose cost differences between backends are
small and roughly size-independent, and inheriting dense keeps auto within
a few percent of the best fixed backend on the *small* networks where
per-kernel overhead matters most.

Profiles can be pinned for deterministic dispatch — a JSON file of
``{"decisions": {bucket: backend}}`` loaded via :meth:`load_profile` or the
``REPRO_AUTO_PROFILE`` environment variable; pinned buckets are never
re-profiled, so a deployment (or a regression test) gets reproducible
routing.  :meth:`save_profile` writes the learned decisions back out in the
same format.

Equivalence contract (``exact`` tier): every candidate's *kernels* compute
exact-tier results (the ``eventqueue`` candidate shares the sparse kernels
bit for bit — its ``tolerance`` declaration concerns only the analytic
silent-gap jumps of ``Network.run_events``, which auto never performs), so
whichever wins a bucket, spike counts, predictions, and tallies are
identical to the dense reference — profiling noise can never change
*results*, only which equivalent kernel computes them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.backends.base import Backend
from repro.backends.dense import DenseBackend
from repro.backends.numba_backend import NumbaBackend
from repro.backends.sparse import SparseEventBackend

#: Environment variable naming a pinned profile file loaded at construction.
PROFILE_ENV = "REPRO_AUTO_PROFILE"

#: Upper bounds (inclusive) of the spike-density buckets, with their labels.
#: The ``le01`` band (<= 0.1 %) separates long-horizon low-rate event
#: streams — where the event-queue backend's gather kernels win — from the
#: ordinary sparse regime; without it every such workload collapsed into
#: ``le1`` and profiling could not tell them apart.
DENSITY_BANDS: Tuple[Tuple[float, str], ...] = (
    (0.001, "le01"),
    (0.01, "le1"),
    (0.05, "le5"),
    (0.20, "le20"),
    (1.00, "gt20"),
)

#: Timing repetitions per candidate when profiling a bucket (best-of).
PROFILE_REPEATS = 3


def density_band(density: float) -> str:
    """Label of the spike-density bucket ``density`` falls into."""
    for bound, label in DENSITY_BANDS:
        if density <= bound:
            return label
    return DENSITY_BANDS[-1][1]


def propagation_bucket(n_pre: int, n_post: int, density: float) -> str:
    """Stable profile key for a propagation call's workload shape."""
    return f"propagate:{int(n_pre)}x{int(n_post)}:{density_band(density)}"


class AutoBackend(DenseBackend):
    """Profiling dispatcher over the fixed exact-tier backends."""

    name = "auto"
    description = (
        "Auto-dispatch: profiles dense/sparse/eventqueue/numba once per "
        "(network-size, spike-density) bucket and routes each propagation "
        "call to the winner"
    )

    # Dispatched propagation may route to an event-driven candidate whose
    # summation order differs from the dense product, so auto carries the
    # sparse backend's double-precision bounds rather than dense's zero
    # bounds (every candidate is exact-tier, so integer results are still
    # identical whatever the routing).
    state_rtol = 1e-9
    state_atol = 1e-12

    def __init__(self) -> None:
        self._decisions: Dict[str, str] = {}
        self._pinned: set = set()
        self._lock = threading.Lock()
        self._candidates: Optional[Dict[str, Backend]] = None
        # Hot-path routing cache keyed by (n_pre, n_post, band-label): the
        # profile/pinning API speaks human-readable bucket strings, but
        # formatting one per propagation call would tax exactly the small
        # networks auto exists to route well; dispatch pays only a tuple
        # hash after a bucket's first call.
        self._route: Dict[Tuple[int, int, str], Backend] = {}
        profile_path = os.environ.get(PROFILE_ENV)
        if profile_path:
            self.load_profile(profile_path)

    # -- profile management --------------------------------------------------

    @property
    def candidates(self) -> Dict[str, Backend]:
        """The fixed backends this dispatcher chooses between (lazy)."""
        if self._candidates is None:
            from repro.backends.eventqueue import EventQueueBackend

            candidates: Dict[str, Backend] = {
                "dense": DenseBackend(),
                "sparse": SparseEventBackend(),
                "eventqueue": EventQueueBackend(),
            }
            if NumbaBackend.available():
                candidates["numba"] = NumbaBackend()
            self._candidates = candidates
        return self._candidates

    @property
    def decisions(self) -> Dict[str, str]:
        """Copy of the bucket -> backend routing table learned so far."""
        with self._lock:
            return dict(self._decisions)

    def decision_for(self, n_pre: int, n_post: int,
                     density: float) -> Optional[str]:
        """The recorded winner for a workload shape (``None`` if unseen)."""
        return self.decisions.get(propagation_bucket(n_pre, n_post, density))

    def reset_profile(self) -> None:
        """Forget every decision, pinned or learned (mainly for tests)."""
        with self._lock:
            self._decisions.clear()
            self._pinned.clear()
            self._route.clear()

    def load_profile(self, path: Union[str, Path]) -> Dict[str, str]:
        """Pin the decisions stored in the JSON profile at ``path``.

        Pinned buckets are never re-profiled, making dispatch fully
        deterministic for every bucket the file covers; buckets it does not
        cover are still profiled live on first encounter.  Unknown backend
        names are rejected so a stale profile cannot route to nothing.
        """
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        decisions = payload.get("decisions")
        if not isinstance(decisions, dict):
            raise ValueError(
                f"auto-backend profile {path} has no 'decisions' object"
            )
        known = set(self.candidates)
        for bucket, choice in decisions.items():
            if choice not in known:
                raise ValueError(
                    f"auto-backend profile {path} routes {bucket!r} to "
                    f"{choice!r}, which is not an available candidate "
                    f"({', '.join(sorted(known))})"
                )
        with self._lock:
            for bucket, choice in decisions.items():
                self._decisions[str(bucket)] = str(choice)
                self._pinned.add(str(bucket))
            # Any hot-path cache entries predating the pin are stale now.
            self._route.clear()
        return {str(k): str(v) for k, v in decisions.items()}

    def save_profile(self, path: Union[str, Path]) -> Path:
        """Write the current routing table as a pinnable JSON profile."""
        path = Path(path)
        payload = {"version": 1, "decisions": self.decisions}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # -- profiling -----------------------------------------------------------

    def _profile_propagation(self, bucket: str, conductance, pre_spikes,
                             weights) -> str:
        """Time every candidate on copies of the live arrays; store winner."""
        band = bucket.rsplit(":", 1)[-1]
        timings: List[Tuple[float, str]] = []
        for name, candidate in self.candidates.items():
            if name == "eventqueue" and band not in ("le01", "le1"):
                # Outside the event-stream density bands the eventqueue
                # candidate is kernel-identical to sparse, so racing it
                # would only add a second coin-flip of timing noise; it
                # stays pinnable everywhere via a loaded profile.
                continue
            scratch = np.array(conductance, dtype=float)
            # Warm pass outside the clock (numba pays JIT compilation on
            # first call; the others populate allocator/cache state).
            candidate.propagate_spikes(scratch, pre_spikes, weights)
            best = float("inf")
            for _ in range(PROFILE_REPEATS):
                scratch = np.array(conductance, dtype=float)
                start = time.perf_counter()
                candidate.propagate_spikes(scratch, pre_spikes, weights)
                best = min(best, time.perf_counter() - start)
            timings.append((best, name))
        winner = min(timings)[1]
        with self._lock:
            # A concurrent profiler or a pinned profile may have raced us in;
            # first write (and any pin) wins so routing stays stable.
            recorded = self._decisions.setdefault(bucket, winner)
        return recorded

    # -- dispatched kernels --------------------------------------------------

    def propagate_spikes(self, conductance, pre_spikes, weights):
        size = pre_spikes.size
        events = int(np.count_nonzero(pre_spikes))
        density = events / size if size else 0.0
        key = (weights.shape[0], weights.shape[1], density_band(density))
        target = self._route.get(key)
        if target is None:
            bucket = propagation_bucket(key[0], key[1], density)
            choice = self._decisions.get(bucket)
            if choice is None:
                choice = self._profile_propagation(bucket, conductance,
                                                   pre_spikes, weights)
            target = self.candidates[choice]
            self._route[key] = target
        target.propagate_spikes(conductance, pre_spikes, weights)

"""The event-queue backend: kernels for event-driven simulation.

:class:`EventQueueBackend` is the kernel bundle behind the engine's
event-driven path (:meth:`repro.snn.network.Network.run_events`).  The
per-timestep kernels are inherited unchanged from
:class:`~repro.backends.sparse.SparseEventBackend` — on every *executed*
timestep the arithmetic is identical to the sparse event-driven kernels, so
stepped simulations on this backend reproduce the dense reference exactly
like ``sparse`` does.  What the backend adds is the *declaration* that it
drives the event-queue scheduler: ``supports_events`` makes ``run_events``
prefer analytic silent-gap jumps, the CLI advertise the event mode, and
``auto`` consider it for sparse long-horizon streams.

Equivalence story (why the tier is ``tolerance`` and not ``exact``)
-------------------------------------------------------------------
Between spike events the engine advances every exponential state variable
(membranes, conductances, theta, STDP traces) in closed form: a gap of
``k`` silent timesteps multiplies a decaying quantity by ``decay ** k``
(one ``np.power``) instead of ``k`` successive multiplications.  The two
are equal in real arithmetic but differ by accumulated rounding in floats
(~1 ULP per decade of ``k``), so float state after a jump is only
*tolerance*-close to the stepped reference — hence ``state_rtol=1e-6``.
Integer results remain bit-exact in the conformance suite's workloads: a
gap is only jumped when a conservative no-spike bound proves (with an
absolute safety margin far above the rounding error) that stepping it
could not have fired, and every step that *can* fire is executed with the
inherited bit-exact kernels.  The golden-trace replay at matched
discretization (``tests/backends/``) pins exactly this: spike counts and
predictions identical, float state within the declared bounds.
"""

from __future__ import annotations

from repro.backends.sparse import SparseEventBackend


class EventQueueBackend(SparseEventBackend):
    """Sparse kernels plus the event-queue scheduler declaration."""

    name = "eventqueue"
    description = (
        "event-driven scheduler kernels: O(spike events) via analytic "
        "decay across silent gaps (run_events), sparse kernels when stepped"
    )
    equivalence_tier = "tolerance"
    # Closed-form decay (decay ** k) vs k stepped multiplies accumulates
    # ~1 ULP of rounding per decade of gap length; 1e-6 relative bounds it
    # with orders of magnitude to spare on T ~ 10^4 horizons.
    state_rtol = 1e-6
    state_atol = 1e-9
    supports_events = True

"""Single-precision backend: half-memory dynamic state, tolerance-tier floats.

:class:`Float32Backend` runs every state-update kernel in ``np.float32``.
The orchestration layers allocate float64 buffers as always, but because the
kernel contract is *return the array holding the result and callers rebind*,
the first timestep's kernels hand back float32 arrays and from then on all
dynamic state — membrane potentials, refractory timers, adaptation
thresholds, conductances, spike traces — lives at half the memory footprint.
That is the point of this backend: a serving replica's per-worker state
(and the per-sample state of a large inference batch) shrinks by 2x, which
is what lets twice as many replicas fit on the same host.

Synaptic *weights* deliberately stay at float64: they are the learned
artifact, shared with every other backend, and keeping them at artifact
precision is what keeps artifacts backend-agnostic.  The propagation and
STDP kernels therefore gather only the rows/columns touched by spikes and
downcast just those (``O(events * fanout)`` per step, never a full-matrix
cast), reusing the event-driven structure of
:class:`~repro.backends.sparse.SparseEventBackend`.

Equivalence contract (the ``tolerance`` tier, enforced by the conformance
suite in ``tests/backends/``):

* spike counts, predictions, and ``OperationCounter`` tallies are asserted
  *identical* to the dense float64 reference on the committed workloads —
  membrane trajectories sit far enough from the firing threshold that
  single-precision rounding does not flip spike decisions there;
* float state (membranes, traces, conductances, theta, learned weights
  after float32 training) only has to agree within ``(state_rtol,
  state_atol)``.

Inside the backend, the single-sample and batched propagation paths sum the
gathered weight rows with the same sequential ``np.add.reduceat``
accumulation, so batched and sequential runs of *this* backend stay
bit-for-bit identical to each other — the same invariant the other backends
provide, just at float32 precision.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dense import DenseBackend

_ZERO = np.float32(0.0)


def _f32(array: np.ndarray) -> np.ndarray:
    """View/convert ``array`` as float32 (no copy when already float32)."""
    return np.asarray(array, dtype=np.float32)


class Float32Backend(DenseBackend):
    """Single-precision kernels: half-memory state, tolerance-tier floats."""

    name = "float32"
    description = (
        "Single-precision (float32) kernels; dynamic state uses half the "
        "memory, counts/predictions stay exact, float state is "
        "tolerance-tier"
    )
    equivalence_tier = "tolerance"
    state_rtol = 1e-4
    state_atol = 1e-5
    state_dtype = np.float32

    # -- neuron kernels ------------------------------------------------------

    def lif_step(self, v, refrac_remaining, input_current, threshold, *,
                 decay, v_rest, v_reset, refractory, dt):
        v = _f32(v)
        refrac_remaining = _f32(refrac_remaining)
        input_current = _f32(input_current)
        threshold = _f32(threshold)
        decay = np.float32(decay)
        v_rest = np.float32(v_rest)
        v_reset = np.float32(v_reset)
        refractory = np.float32(refractory)
        dt = np.float32(dt)

        v = v_rest + (v - v_rest) * decay
        active = refrac_remaining <= _ZERO
        v = np.where(active, v + input_current * dt, v)
        spikes = active & (v >= threshold)
        v = np.where(spikes, v_reset, v)
        refrac_remaining = np.where(
            spikes, refractory, np.maximum(refrac_remaining - dt, _ZERO)
        )
        return v, spikes, refrac_remaining

    def theta_step(self, theta, spikes, *, decay, theta_plus):
        theta = _f32(theta) * np.float32(decay)
        if theta_plus > 0.0:
            theta = theta + np.float32(theta_plus) * spikes
        return theta

    # -- synapse kernels -----------------------------------------------------

    def decay_state(self, values, decay):
        values = _f32(values)
        values *= np.float32(decay)
        return values

    def propagate_spikes(self, conductance, pre_spikes, weights):
        if pre_spikes.ndim == 1:
            active = np.flatnonzero(pre_spikes)
            if active.size:
                rows = weights[active].astype(np.float32)
                # Single-segment reduceat keeps the accumulation order
                # identical to the batched path below, so batched and
                # sequential float32 runs stay bit-for-bit equal.
                conductance += np.add.reduceat(
                    rows, np.array([0]), axis=0
                )[0]
            return
        samples, pres = np.nonzero(pre_spikes)
        if not samples.size:
            return
        rows = weights[pres].astype(np.float32)
        offsets = np.concatenate(([0], np.flatnonzero(np.diff(samples)) + 1))
        conductance[samples[offsets]] += np.add.reduceat(rows, offsets, axis=0)

    def propagate_lateral(self, conductance, spikes, strength):
        strength = np.float32(strength)
        if spikes.ndim == 1:
            n_spiking = int(np.count_nonzero(spikes))
            if n_spiking:
                total = strength * np.float32(n_spiking)
                conductance += total - strength * spikes.astype(np.float32)
        elif spikes.any():
            totals = strength * spikes.sum(axis=1, dtype=np.float32)
            conductance += totals[:, None] - strength * spikes.astype(np.float32)

    # -- trace kernels -------------------------------------------------------

    def bump_trace(self, values, spikes, increment, mode):
        values = _f32(values)
        if mode == "set":
            return np.where(spikes, np.float32(increment), values)
        return values + np.float32(increment) * spikes

    # -- STDP weight-update kernels ------------------------------------------

    def stdp_potentiation(self, pre_trace, post_spikes, weights, *,
                          nu, w_max, soft_bounds):
        delta = np.zeros(weights.shape, dtype=np.float32)
        active = np.flatnonzero(post_spikes)
        if active.size:
            column = np.float32(nu) * _f32(pre_trace)
            if soft_bounds:
                delta[:, active] = column[:, None] * (
                    np.float32(w_max) - weights[:, active].astype(np.float32)
                )
            else:
                delta[:, active] = column[:, None]
        return delta

    def stdp_depression(self, pre_spikes, post_trace, weights, *,
                        nu, w_min, soft_bounds):
        delta = np.zeros(weights.shape, dtype=np.float32)
        active = np.flatnonzero(pre_spikes)
        if active.size:
            row = np.float32(nu) * _f32(post_trace)
            if soft_bounds:
                delta[active, :] = row[None, :] * (
                    weights[active, :].astype(np.float32) - np.float32(w_min)
                )
            else:
                delta[active, :] = row[None, :]
        return -delta

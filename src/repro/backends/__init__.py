"""Pluggable compute backends for the SNN simulation engine.

The engine's state-update kernels (LIF membrane update, conductance/trace
decay, synaptic propagation, STDP weight updates, threshold adaptation) live
behind the :class:`~repro.backends.base.Backend` interface, selected by name
through a small registry:

>>> from repro.backends import get_backend
>>> get_backend("dense")        # bit-for-bit reference kernels
DenseBackend(name='dense')
>>> get_backend("sparse")       # event-driven gather/scatter kernels
SparseEventBackend(name='sparse')
>>> get_backend("float32")      # half-memory single-precision state
Float32Backend(name='float32')
>>> get_backend("auto")         # profiles once per bucket, then routes
AutoBackend(name='auto')

A fifth backend, ``numba``, JIT-compiles the kernel chain and registers
itself unconditionally but reports :meth:`~repro.backends.base.Backend.
available` ``False`` when the optional numba package is missing, so
``repro backends list`` shows it while :func:`get_backend` refuses it.
The sixth, ``eventqueue``, carries the sparse kernels plus the
``supports_events`` declaration that drives the event-queue scheduler
(:meth:`repro.snn.network.Network.run_events`): work proportional to
spike events, with silent gaps advanced by closed-form exponential decay.

Every backend declares an *equivalence tier*
(:attr:`~repro.backends.base.Backend.equivalence_tier`): ``exact`` backends
(dense, sparse, numba, auto) reproduce the dense reference's spike counts,
predictions, and ``OperationCounter`` tallies with float state equal to
summation-order rounding; the ``tolerance`` tier (float32, eventqueue)
keeps counts/predictions/tallies exact but only bounds float state by the
backend's declared ``(state_rtol, state_atol)``.  The conformance suite in
``tests/backends/`` enforces the declared tier for every registered
backend.

Backend selection threads through every layer of the system:
``Network(backend=...)``, ``SpikeDynConfig(backend=...)`` (and therefore
model artifacts, schema v3), ``ExperimentScale(backend=...)`` (and therefore
runner cache keys), ``repro serve --backend``, and ``repro backends list``.

Backends are stateless kernel bundles (``auto`` holds only its routing
table), so :func:`get_backend` hands out one shared instance per name.
Future accelerator backends (GPU) register themselves with
:func:`register_backend` and report
:meth:`~repro.backends.base.Backend.available` based on their optional
dependency, without the rest of the system changing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, Union

from repro.backends.auto import AutoBackend
from repro.backends.base import Backend
from repro.backends.dense import DenseBackend
from repro.backends.eventqueue import EventQueueBackend
from repro.backends.float32 import Float32Backend
from repro.backends.numba_backend import NumbaBackend
from repro.backends.sparse import SparseEventBackend

#: Backend used when nothing selects one explicitly.
DEFAULT_BACKEND = "dense"

#: Registered backend classes by name, in registration order.
_REGISTRY: Dict[str, Type[Backend]] = {}

#: Shared stateless instances handed out by :func:`get_backend`.
_INSTANCES: Dict[str, Backend] = {}

BackendLike = Union[None, str, Backend]


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Register a :class:`Backend` subclass under its ``name`` (decorator).

    Raises ``ValueError`` on an empty or already-taken name so two backends
    can never silently shadow each other.
    """
    name = getattr(cls, "name", "")
    if not name or name == Backend.name:
        raise ValueError(f"backend class {cls.__name__} must set a name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(
            f"a backend named {name!r} is already registered "
            f"({_REGISTRY[name].__name__})"
        )
    _REGISTRY[name] = cls
    return cls


def backend_names() -> List[str]:
    """Names of every registered backend, in registration order."""
    return list(_REGISTRY)


def available_backends() -> Dict[str, Type[Backend]]:
    """Registered backends whose dependencies are importable right now."""
    return {name: cls for name, cls in _REGISTRY.items() if cls.available()}


def describe_backend(name: str) -> Dict[str, object]:
    """JSON-safe summary of a registered backend, without instantiating it.

    Works for unavailable backends too (name, description, and availability
    are all class-level), which is what lets ``repro backends list`` show
    ``available: no`` instead of failing on the missing dependency.
    """
    cls = _REGISTRY[normalize_backend_name(name)]
    return {
        "name": cls.name,
        "description": cls.description,
        "available": cls.available(),
        "tier": cls.equivalence_tier,
        "events": cls.supports_events,
    }


def normalize_backend_name(name: str) -> str:
    """Validate ``name`` against the registry and return it.

    Raises ``ValueError`` naming the known backends — used by configuration
    objects that must record a backend without instantiating it.
    """
    name = str(name)
    if name not in _REGISTRY:
        known = ", ".join(backend_names())
        raise ValueError(f"unknown backend {name!r}; known backends: {known}")
    return name


def get_backend(backend: BackendLike = None) -> Backend:
    """Resolve ``backend`` to a shared :class:`Backend` instance.

    Accepts a registered name, an existing instance (returned as is), or
    ``None`` for the default (``dense``).  Raises ``ValueError`` for unknown
    names and ``RuntimeError`` for registered-but-unavailable backends.
    """
    if isinstance(backend, Backend):
        return backend
    name = DEFAULT_BACKEND if backend is None else normalize_backend_name(backend)
    if name not in _INSTANCES:
        cls = _REGISTRY[name]
        if not cls.available():
            raise RuntimeError(
                f"backend {name!r} is registered but not available in this "
                "environment"
            )
        _INSTANCES[name] = cls()
    return _INSTANCES[name]


register_backend(DenseBackend)
register_backend(SparseEventBackend)
register_backend(Float32Backend)
register_backend(NumbaBackend)
register_backend(AutoBackend)
register_backend(EventQueueBackend)

__all__ = [
    "AutoBackend",
    "Backend",
    "DenseBackend",
    "EventQueueBackend",
    "Float32Backend",
    "NumbaBackend",
    "SparseEventBackend",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_names",
    "describe_backend",
    "get_backend",
    "normalize_backend_name",
    "register_backend",
]

"""The reference dense vectorized-NumPy backend.

These kernels are the engine's original hot-path arithmetic, moved verbatim
behind the :class:`~repro.backends.base.Backend` interface: every operation,
its order, and its rounding are unchanged, so a network running on
``DenseBackend`` reproduces the committed golden traces *bit for bit*.  All
work is proportional to the full state size regardless of how sparse the
spiking activity is — which is exactly the inefficiency the paper's
event-driven view of SNNs targets, and what
:class:`~repro.backends.sparse.SparseEventBackend` exploits.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend


class DenseBackend(Backend):
    """Vectorized dense kernels (the bit-for-bit reference implementation)."""

    name = "dense"
    description = (
        "Vectorized dense NumPy kernels; bit-for-bit reference, work is "
        "O(state size) per step regardless of spike sparsity"
    )
    # The dense backend *is* the reference: the conformance suite compares
    # it against itself bit-for-bit.
    state_rtol = 0.0
    state_atol = 0.0

    # -- neuron kernels ------------------------------------------------------

    def lif_step(self, v, refrac_remaining, input_current, threshold, *,
                 decay, v_rest, v_reset, refractory, dt):
        # Exponential membrane decay towards the resting potential.
        v = v_rest + (v - v_rest) * decay
        # Integrate input only outside the refractory period.
        active = refrac_remaining <= 0.0
        v = np.where(active, v + input_current * dt, v)
        # Spike generation against the (possibly adaptive) threshold.
        spikes = active & (v >= threshold)
        # Reset and refractory bookkeeping.
        v = np.where(spikes, v_reset, v)
        refrac_remaining = np.where(
            spikes, refractory, np.maximum(refrac_remaining - dt, 0.0)
        )
        return v, spikes, refrac_remaining

    def theta_step(self, theta, spikes, *, decay, theta_plus):
        theta = theta * decay
        if theta_plus > 0.0:
            theta = theta + theta_plus * spikes
        return theta

    # -- synapse kernels -----------------------------------------------------

    def decay_state(self, values, decay):
        values *= decay
        return values

    def propagate_spikes(self, conductance, pre_spikes, weights):
        if pre_spikes.ndim == 1:
            if np.count_nonzero(pre_spikes):
                conductance += pre_spikes.astype(float) @ weights
        else:
            # One vector-matrix product per spiking sample — the exact BLAS
            # call the single-sample path performs, so batched results stay
            # bit-for-bit identical to sequential ones (a single (B, n) GEMM
            # is faster but rounds differently).
            spikes_float = pre_spikes.astype(float)
            for index in np.flatnonzero(pre_spikes.any(axis=1)):
                conductance[index] += spikes_float[index] @ weights

    def propagate_lateral(self, conductance, spikes, strength):
        if spikes.ndim == 1:
            n_spiking = int(np.count_nonzero(spikes))
            if n_spiking:
                # Every neuron is inhibited by the spikes of all *other*
                # neurons.
                total = strength * n_spiking
                conductance += total - strength * spikes.astype(float)
        elif spikes.any():
            # Per-sample spike counts; elementwise arithmetic is identical
            # to the single-sample path, so results stay bit-for-bit equal.
            totals = strength * spikes.sum(axis=1, dtype=float)
            conductance += totals[:, None] - strength * spikes.astype(float)

    # -- trace kernels -------------------------------------------------------

    def bump_trace(self, values, spikes, increment, mode):
        if mode == "set":
            return np.where(spikes, increment, values)
        return values + increment * spikes

    # -- STDP weight-update kernels ------------------------------------------

    def stdp_potentiation(self, pre_trace, post_spikes, weights, *,
                          nu, w_max, soft_bounds):
        delta = nu * np.outer(np.asarray(pre_trace, dtype=float),
                              post_spikes.astype(float))
        if soft_bounds:
            delta *= w_max - weights
        return delta

    def stdp_depression(self, pre_spikes, post_trace, weights, *,
                        nu, w_min, soft_bounds):
        delta = nu * np.outer(pre_spikes.astype(float),
                              np.asarray(post_trace, dtype=float))
        if soft_bounds:
            delta *= weights - w_min
        return -delta

"""The compute-backend kernel interface.

A :class:`Backend` bundles every *state-update kernel* the simulation engine
executes on its hot path — LIF membrane integration, threshold adaptation,
conductance/trace decay, synaptic propagation, and the STDP weight-update
deltas.  The orchestration layers (:mod:`repro.snn`, :mod:`repro.learning`)
own shapes, lifecycles, and :class:`~repro.snn.simulation.OperationCounter`
accounting; backends own nothing but the arithmetic.  That split is what
makes the engine retargetable: a backend may reorder the arithmetic (e.g.
visit only spike events), run at a different precision, or dispatch to a
JIT/GPU kernel, without the network, models, runner, or serving layers
knowing anything changed.

Two implementations ship today — :class:`repro.backends.dense.DenseBackend`
(the reference vectorized-NumPy kernels, bit-for-bit identical to the
pre-backend engine) and :class:`repro.backends.sparse.SparseEventBackend`
(event-driven gather/scatter kernels that touch only spiking rows/columns).
Operation accounting is *modelled* (GPU-style dense charging, paper Section
III) rather than measured, so every backend reports identical
``OperationCounter`` tallies for the same simulation.

Conventions shared by every kernel:

* ``spikes`` arguments are boolean arrays shaped ``(n,)`` in single-sample
  mode or ``(batch, n)`` in batch mode; kernels must handle both.
* Decay factors are precomputed by the caller (``exp(-dt / tau)``) so all
  backends see the exact same scalar.
* Kernels may mutate arrays marked "in place" below and must *return* the
  array holding the result either way; callers always rebind.
"""

from __future__ import annotations

import abc

import numpy as np


#: Valid values of :attr:`Backend.equivalence_tier`.
EQUIVALENCE_TIERS = ("exact", "tolerance")


class Backend(abc.ABC):
    """Abstract kernel set behind the simulation engine's hot path."""

    #: Registry key (``repro.backends.get_backend(name)``).
    name: str = "abstract"
    #: One-line human-readable description (``repro backends list``).
    description: str = ""
    #: Declared equivalence tier against the dense reference backend,
    #: enforced by the conformance suite in ``tests/backends/``:
    #:
    #: ``"exact"``
    #:     Spike counts, predictions, and ``OperationCounter`` tallies are
    #:     *identical* to the dense reference; float state (membranes,
    #:     conductances, traces) may differ only by summation-order rounding
    #:     and must match within ``(state_rtol, state_atol)``.
    #: ``"tolerance"``
    #:     Counts, predictions, and tallies are still identical, but float
    #:     state is computed at reduced precision and only has to agree
    #:     within the (much wider) declared bounds.
    equivalence_tier: str = "exact"
    #: Relative/absolute bounds the backend's float state must satisfy
    #: against the dense reference (``0.0`` means bit-for-bit).
    state_rtol: float = 1e-9
    state_atol: float = 1e-12
    #: dtype the backend keeps rebound float state in.  Callers that follow
    #: the rebinding contract end up holding state of this dtype, which is
    #: how the float32 backend halves the dynamic-state footprint without
    #: the orchestration layer allocating anything differently.
    state_dtype = np.float64
    #: Whether the backend is meant to drive the event-queue simulation
    #: path (:meth:`repro.snn.network.Network.run_events` with analytic
    #: silent-gap jumps).  ``run_events`` works on any backend, but only
    #: backends declaring ``supports_events`` advertise the event mode in
    #: the CLI and are routed to by ``auto`` for sparse event streams.
    supports_events: bool = False

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment.

        Pure-NumPy backends are always available; backends wrapping optional
        accelerators (numba, GPU) override this to probe their dependency
        instead of failing at first kernel call.
        """
        return True

    # -- neuron kernels ------------------------------------------------------

    @abc.abstractmethod
    def lif_step(self, v: np.ndarray, refrac_remaining: np.ndarray,
                 input_current: np.ndarray, threshold: np.ndarray, *,
                 decay: float, v_rest: float, v_reset: float,
                 refractory: float, dt: float):
        """One LIF timestep: decay, integrate, fire, reset.

        Returns the ``(v, spikes, refrac_remaining)`` triple for the next
        timestep.  ``threshold`` broadcasts against ``v`` (it is ``(n,)``
        for a fixed threshold even in batch mode).
        """

    @abc.abstractmethod
    def theta_step(self, theta: np.ndarray, spikes: np.ndarray, *,
                   decay: float, theta_plus: float) -> np.ndarray:
        """Threshold-adaptation update: decay ``theta``, bump it on spikes."""

    # -- synapse kernels -----------------------------------------------------

    @abc.abstractmethod
    def decay_state(self, values: np.ndarray, decay: float) -> np.ndarray:
        """Exponential decay of a state vector, in place."""

    @abc.abstractmethod
    def propagate_spikes(self, conductance: np.ndarray,
                         pre_spikes: np.ndarray,
                         weights: np.ndarray) -> None:
        """Add each spiking presynaptic neuron's weight row into the
        postsynaptic conductance, in place.

        ``conductance`` is ``(n_post,)`` / ``(batch, n_post)`` and
        ``pre_spikes`` ``(n_pre,)`` / ``(batch, n_pre)``.
        """

    @abc.abstractmethod
    def propagate_lateral(self, conductance: np.ndarray, spikes: np.ndarray,
                          strength: float) -> None:
        """Uniform lateral inhibition: every spike inhibits all *other*
        neurons of the group by ``strength``, accumulated in place."""

    # -- trace kernels -------------------------------------------------------

    @abc.abstractmethod
    def bump_trace(self, values: np.ndarray, spikes: np.ndarray,
                   increment: float, mode: str) -> np.ndarray:
        """Bump the traces of the spiking neurons (``'set'`` or ``'add'``)."""

    # -- STDP weight-update kernels ------------------------------------------

    @abc.abstractmethod
    def stdp_potentiation(self, pre_trace: np.ndarray,
                          post_spikes: np.ndarray, weights: np.ndarray, *,
                          nu: float, w_max: float,
                          soft_bounds: bool) -> np.ndarray:
        """Weight *increment* triggered by postsynaptic spikes.

        Returns a full ``weights``-shaped delta (zero outside the spiking
        postsynaptic columns) so callers can apply and account for it
        uniformly across backends.
        """

    @abc.abstractmethod
    def stdp_depression(self, pre_spikes: np.ndarray,
                        post_trace: np.ndarray, weights: np.ndarray, *,
                        nu: float, w_min: float,
                        soft_bounds: bool) -> np.ndarray:
        """Weight *decrement* (returned negative) triggered by presynaptic
        spikes; zero outside the spiking presynaptic rows."""

    def describe(self) -> dict:
        """JSON-safe summary used by the CLI and the serving metrics."""
        return {
            "name": self.name,
            "description": self.description,
            "available": type(self).available(),
            "tier": self.equivalence_tier,
            "events": self.supports_events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

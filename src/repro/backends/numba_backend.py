"""Numba-JIT backend: fuse the per-timestep kernel chain into compiled loops.

On small networks the engine's cost is dominated not by arithmetic but by
*Python dispatch*: every timestep issues a chain of NumPy ufunc calls whose
fixed per-call overhead (argument parsing, broadcasting, temporary
allocation) dwarfs the few microseconds of actual floating-point work on a
few-hundred-element state vector.  :class:`NumbaBackend` compiles each
kernel into a single ``@njit`` loop, replacing ~8 ufunc invocations and
their temporaries per LIF step with one C-speed call that mutates state in
place.

The dependency is optional and probed, never imported at module load:
:meth:`NumbaBackend.available` checks ``importlib.util.find_spec("numba")``,
so on a stdlib-only install the backend degrades to *registered but
unavailable* — it shows up in ``repro backends list`` with ``available:
no``, ``get_backend("numba")`` raises ``RuntimeError``, and the conformance
suite (parametrized over ``available_backends()``) skips it cleanly.
Kernels are compiled lazily on first instantiation and cached on disk
(``cache=True``), so only the first process ever pays the compile cost.

Equivalence contract (``exact`` tier): every elementwise kernel performs
scalar-for-scalar the same IEEE operations as the dense reference, so
membranes, traces, theta, and STDP deltas are bit-for-bit equal.  Synaptic
propagation accumulates the spiking weight rows sequentially instead of
through one BLAS product over mostly-zeros, so conductances may differ by
summation-order rounding — the same (and only) liberty the sparse backend
takes; spike counts, predictions, and tallies remain identical.
"""

from __future__ import annotations

import importlib.util
from typing import Dict, Optional

import numpy as np

from repro.backends.dense import DenseBackend

#: Compiled kernel table, built once per process on first instantiation.
_KERNELS: Optional[Dict[str, object]] = None


def _as_c(array, dtype=np.float64) -> np.ndarray:
    """C-contiguous view/copy of ``array`` at ``dtype``."""
    return np.ascontiguousarray(array, dtype=dtype)


def _build_kernels() -> Dict[str, object]:
    """Compile the jitted kernel loops (requires numba to be importable)."""
    from numba import njit

    @njit(cache=True)
    def lif_step(v, refrac, current, threshold, spikes,
                 decay, v_rest, v_reset, refractory, dt):
        # Flat loops over raveled views; scalar arithmetic matches the dense
        # ufunc chain operation for operation (decay, integrate, fire,
        # reset), so the result is bit-for-bit identical.
        for i in range(v.shape[0]):
            vi = v_rest + (v[i] - v_rest) * decay
            active = refrac[i] <= 0.0
            if active:
                vi = vi + current[i] * dt
            fired = active and vi >= threshold[i]
            if fired:
                vi = v_reset
                refrac[i] = refractory
            else:
                remaining = refrac[i] - dt
                refrac[i] = remaining if remaining > 0.0 else 0.0
            v[i] = vi
            spikes[i] = fired

    @njit(cache=True)
    def theta_step(theta, spikes, decay, theta_plus):
        for i in range(theta.shape[0]):
            value = theta[i] * decay
            if theta_plus > 0.0 and spikes[i]:
                value = value + theta_plus
            theta[i] = value

    @njit(cache=True)
    def decay_state(values, decay):
        for i in range(values.shape[0]):
            values[i] *= decay

    @njit(cache=True)
    def propagate_rows(conductance, active_rows, weights):
        for k in range(active_rows.shape[0]):
            row = active_rows[k]
            for j in range(conductance.shape[0]):
                conductance[j] += weights[row, j]

    @njit(cache=True)
    def propagate_events(conductance, samples, pres, weights):
        for k in range(samples.shape[0]):
            sample = samples[k]
            row = pres[k]
            for j in range(conductance.shape[1]):
                conductance[sample, j] += weights[row, j]

    @njit(cache=True)
    def propagate_lateral(conductance, spikes, strength):
        # conductance and spikes are (batch, n); single-sample input is
        # reshaped to (1, n) by the wrapper.
        for b in range(conductance.shape[0]):
            count = 0
            for i in range(spikes.shape[1]):
                if spikes[b, i]:
                    count += 1
            if count == 0:
                continue
            total = strength * count
            for i in range(conductance.shape[1]):
                if spikes[b, i]:
                    conductance[b, i] += total - strength * 1.0
                else:
                    conductance[b, i] += total
        return

    @njit(cache=True)
    def bump_trace_set(values, spikes, increment):
        for i in range(values.shape[0]):
            if spikes[i]:
                values[i] = increment

    @njit(cache=True)
    def bump_trace_add(values, spikes, increment):
        for i in range(values.shape[0]):
            if spikes[i]:
                values[i] += increment

    @njit(cache=True)
    def stdp_potentiation(delta, pre_trace, active_cols, weights,
                          nu, w_max, soft_bounds):
        for a in range(active_cols.shape[0]):
            col = active_cols[a]
            for i in range(pre_trace.shape[0]):
                value = nu * pre_trace[i]
                if soft_bounds:
                    value *= w_max - weights[i, col]
                delta[i, col] = value

    @njit(cache=True)
    def stdp_depression(delta, post_trace, active_rows, weights,
                        nu, w_min, soft_bounds):
        for a in range(active_rows.shape[0]):
            row = active_rows[a]
            for j in range(post_trace.shape[0]):
                value = nu * post_trace[j]
                if soft_bounds:
                    value *= weights[row, j] - w_min
                delta[row, j] = value

    return {
        "lif_step": lif_step,
        "theta_step": theta_step,
        "decay_state": decay_state,
        "propagate_rows": propagate_rows,
        "propagate_events": propagate_events,
        "propagate_lateral": propagate_lateral,
        "bump_trace_set": bump_trace_set,
        "bump_trace_add": bump_trace_add,
        "stdp_potentiation": stdp_potentiation,
        "stdp_depression": stdp_depression,
    }


class NumbaBackend(DenseBackend):
    """JIT-compiled kernels that kill per-timestep Python dispatch overhead."""

    name = "numba"
    description = (
        "Numba-JIT fused kernel loops; removes Python/ufunc dispatch "
        "overhead, fastest on small networks (requires numba)"
    )

    # Elementwise kernels are bit-exact, but sequential accumulation in the
    # propagation loops reorders additions relative to the dense BLAS
    # product — the same summation-order liberty the sparse backend takes,
    # so the same double-precision bounds apply (not dense's zero bounds).
    state_rtol = 1e-9
    state_atol = 1e-12

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("numba") is not None

    def __init__(self) -> None:
        if not type(self).available():
            raise RuntimeError(
                "the 'numba' backend requires the optional numba package, "
                "which is not installed in this environment"
            )
        global _KERNELS
        if _KERNELS is None:
            _KERNELS = _build_kernels()
        self._kernels = _KERNELS

    # -- neuron kernels ------------------------------------------------------

    def lif_step(self, v, refrac_remaining, input_current, threshold, *,
                 decay, v_rest, v_reset, refractory, dt):
        v = _as_c(v)
        refrac_remaining = _as_c(refrac_remaining)
        input_current = _as_c(input_current)
        threshold = _as_c(
            np.broadcast_to(np.asarray(threshold, dtype=np.float64), v.shape)
        )
        spikes = np.empty(v.shape, dtype=np.bool_)
        self._kernels["lif_step"](
            v.ravel(), refrac_remaining.ravel(), input_current.ravel(),
            threshold.ravel(), spikes.ravel(),
            float(decay), float(v_rest), float(v_reset), float(refractory),
            float(dt),
        )
        return v, spikes, refrac_remaining

    def theta_step(self, theta, spikes, *, decay, theta_plus):
        theta = _as_c(theta)
        self._kernels["theta_step"](
            theta.ravel(), _as_c(spikes, np.bool_).ravel(),
            float(decay), float(theta_plus),
        )
        return theta

    # -- synapse kernels -----------------------------------------------------

    def decay_state(self, values, decay):
        values = _as_c(values)
        self._kernels["decay_state"](values.ravel(), float(decay))
        return values

    def propagate_spikes(self, conductance, pre_spikes, weights):
        weights = _as_c(weights)
        # These kernels mutate ``conductance`` in place and return nothing,
        # so a contiguity copy must be written back explicitly.
        target = _as_c(conductance)
        if pre_spikes.ndim == 1:
            active = np.flatnonzero(pre_spikes)
            if active.size:
                self._kernels["propagate_rows"](target, active, weights)
        else:
            samples, pres = np.nonzero(pre_spikes)
            if samples.size:
                self._kernels["propagate_events"](target, samples, pres,
                                                  weights)
        if target is not conductance:
            np.copyto(conductance, target, casting="same_kind")

    def propagate_lateral(self, conductance, spikes, strength):
        target = _as_c(conductance)
        spikes = _as_c(spikes, np.bool_)
        if spikes.ndim == 1:
            self._kernels["propagate_lateral"](
                target.reshape(1, -1), spikes.reshape(1, -1), float(strength)
            )
        else:
            self._kernels["propagate_lateral"](target, spikes,
                                               float(strength))
        if target is not conductance:
            np.copyto(conductance, target, casting="same_kind")

    # -- trace kernels -------------------------------------------------------

    def bump_trace(self, values, spikes, increment, mode):
        values = _as_c(values)
        kernel = self._kernels[
            "bump_trace_set" if mode == "set" else "bump_trace_add"
        ]
        kernel(values.ravel(), _as_c(spikes, np.bool_).ravel(),
               float(increment))
        return values

    # -- STDP weight-update kernels ------------------------------------------

    def stdp_potentiation(self, pre_trace, post_spikes, weights, *,
                          nu, w_max, soft_bounds):
        delta = np.zeros(weights.shape, dtype=np.float64)
        active = np.flatnonzero(post_spikes)
        if active.size:
            self._kernels["stdp_potentiation"](
                delta, _as_c(pre_trace), active, _as_c(weights),
                float(nu), float(w_max), bool(soft_bounds),
            )
        return delta

    def stdp_depression(self, pre_spikes, post_trace, weights, *,
                        nu, w_min, soft_bounds):
        delta = np.zeros(weights.shape, dtype=np.float64)
        active = np.flatnonzero(pre_spikes)
        if active.size:
            self._kernels["stdp_depression"](
                delta, _as_c(post_trace), active, _as_c(weights),
                float(nu), float(w_min), bool(soft_bounds),
            )
        return -delta

"""Event-driven sparse backend: compute only where spikes happened.

The paper's energy argument is that SNN work should scale with *spike
events*, not with state size.  :class:`SparseEventBackend` applies that idea
to the engine itself: synaptic propagation gathers only the weight rows of
neurons that actually spiked (``np.flatnonzero`` + gather/segment-sum over
the batch dimension), trace and threshold bumps scatter only into spiking
positions, and STDP deltas are materialized only in the spiking rows/columns.
Per-timestep cost of the synaptic kernels drops from ``O(n_pre * n_post)``
to ``O(n_events * n_post)``, which at realistic input densities (a few
percent) is a large constant-factor win on ``Network.run_batch``.

Purely elementwise kernels with no event structure to exploit (LIF membrane
integration, exponential decays) are inherited unchanged from
:class:`~repro.backends.dense.DenseBackend`.

Numerical contract: every *scalar* operation applied to a touched element is
identical to the dense kernel's, so trace, theta, and STDP results are
bit-for-bit equal.  Synaptic propagation sums the same weight rows in a
different association order (a k-row segment sum instead of a length-n dot
product over mostly zeros), so conductances — and anything downstream — may
differ by last-ULP rounding; spike counts, predictions, and operation tallies
are asserted identical to the dense backend by the cross-backend equivalence
suite.
"""

from __future__ import annotations

import numpy as np

from repro.backends.dense import DenseBackend


class SparseEventBackend(DenseBackend):
    """Event-driven kernels: gather/scatter on spike positions only."""

    name = "sparse"
    description = (
        "Event-driven sparse kernels; synaptic work scales with spike "
        "events (O(events * fanout)), fastest at low spike densities"
    )

    # Exact tier, but not bit-for-bit on float state: segment-summing only
    # the spiking weight rows reorders the additions, so the dense
    # reference's zero-tolerance bounds are re-widened to the base class's
    # double-precision tightness.
    state_rtol = 1e-9
    state_atol = 1e-12

    # -- neuron kernels ------------------------------------------------------

    def theta_step(self, theta, spikes, *, decay, theta_plus):
        theta = theta * decay
        if theta_plus > 0.0 and spikes.any():
            # Scatter the bump into spiking positions only; adding
            # ``theta_plus * 1.0`` there is the exact dense arithmetic.
            theta[spikes] += theta_plus
        return theta

    # -- synapse kernels -----------------------------------------------------

    def propagate_spikes(self, conductance, pre_spikes, weights):
        if pre_spikes.ndim == 1:
            active = np.flatnonzero(pre_spikes)
            if active.size == 1:
                conductance += weights[active[0]]
            elif active.size:
                conductance += weights[active].sum(axis=0)
            return
        # Batched: one gather of every (sample, presynaptic) spike event's
        # weight row, segment-summed per sample, scattered into the spiking
        # samples' conductance rows.
        samples, pres = np.nonzero(pre_spikes)
        if not samples.size:
            return
        rows = weights[pres]
        # ``samples`` is sorted, so segment boundaries are where it changes.
        offsets = np.concatenate(
            ([0], np.flatnonzero(np.diff(samples)) + 1)
        )
        conductance[samples[offsets]] += np.add.reduceat(rows, offsets, axis=0)

    def propagate_lateral(self, conductance, spikes, strength):
        if spikes.ndim == 1:
            super().propagate_lateral(conductance, spikes, strength)
            return
        counts = spikes.sum(axis=1, dtype=float)
        active = np.flatnonzero(counts)
        if active.size:
            conductance[active] += (
                strength * counts[active][:, None]
                - strength * spikes[active].astype(float)
            )

    # -- trace kernels -------------------------------------------------------

    def bump_trace(self, values, spikes, increment, mode):
        if not spikes.any():
            return values
        if mode == "set":
            values[spikes] = increment
        else:
            values[spikes] += increment
        return values

    # -- STDP weight-update kernels ------------------------------------------

    def stdp_potentiation(self, pre_trace, post_spikes, weights, *,
                          nu, w_max, soft_bounds):
        delta = np.zeros_like(weights)
        active = np.flatnonzero(post_spikes)
        if active.size:
            column = nu * np.asarray(pre_trace, dtype=float)
            if soft_bounds:
                delta[:, active] = column[:, None] * (w_max - weights[:, active])
            else:
                delta[:, active] = column[:, None]
        return delta

    def stdp_depression(self, pre_spikes, post_trace, weights, *,
                        nu, w_min, soft_bounds):
        delta = np.zeros_like(weights)
        active = np.flatnonzero(pre_spikes)
        if active.size:
            row = nu * np.asarray(post_trace, dtype=float)
            if soft_bounds:
                delta[active, :] = row[None, :] * (weights[active, :] - w_min)
            else:
                delta[active, :] = row[None, :]
        return -delta

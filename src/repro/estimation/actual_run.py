"""Instrumented "actual run" measurements (the reference of Fig. 5).

The paper validates its analytical memory/energy models against actual
execution runs.  In this reproduction the "actual run" replays real samples
through a constructed network, collects the engine's operation counters, and
derives time and energy from them through the device cost model; the actual
memory footprint additionally includes the transient simulation state
(conductances, refractory timers, spike traces) that the analytical model
``(Pw + Pn) * BP`` deliberately ignores — which is precisely why the
analytical estimate lands close to, but not exactly on, the measured value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.estimation.energy import EnergyEstimate, EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.snn.network import Network
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup
from repro.snn.simulation import OperationCounter


@dataclass
class ActualRunMeasurement:
    """Result of replaying a set of samples through an instrumented network.

    Attributes
    ----------
    counter:
        Total operation counts accumulated over all replayed samples.
    n_samples:
        Number of samples replayed.
    memory_bytes:
        Measured memory footprint of the network's persistent and transient
        state.
    energy:
        Total time/energy of the replayed workload on the chosen device.
    """

    counter: OperationCounter
    n_samples: int
    memory_bytes: float
    energy: EnergyEstimate

    @property
    def per_sample_energy(self) -> EnergyEstimate:
        """Average per-sample energy (``E1`` in the paper's notation)."""
        if self.n_samples == 0:
            return self.energy
        return self.energy.scaled(1.0 / self.n_samples)

    def extrapolated(self, n_samples: int) -> EnergyEstimate:
        """Energy for ``n_samples`` samples, scaled from the measured average."""
        return self.per_sample_energy.scaled(float(n_samples))


def actual_memory_bytes(network: Network, bit_precision: int = 32) -> float:
    """Measured memory footprint of a network's state in bytes.

    Counts the stored synaptic weights, every persistent neuron parameter,
    and the transient simulation state (conductances, spike flags, trace
    vectors owned by learning rules).
    """
    bytes_per_value = bit_precision / 8.0
    elements = 0

    for connection in network.connections:
        elements += connection.weight_count
        conductance = getattr(connection, "conductance", None)
        if conductance is not None:
            elements += int(np.asarray(conductance).size)
        rule = connection.learning_rule
        if rule is not None:
            for trace_name in ("pre_trace", "post_trace"):
                trace = getattr(rule, trace_name, None)
                if trace is not None:
                    elements += trace.n

    for group in network.groups.values():
        elements += group.parameter_count
        if isinstance(group, (LIFGroup, AdaptiveLIFGroup)):
            elements += group.n  # spike flags
        elif isinstance(group, InputGroup):
            elements += group.n  # spike flags

    return elements * bytes_per_value


def measure_sample_operations(network: Network, spike_train: np.ndarray, *,
                              learning: bool = True) -> OperationCounter:
    """Operation counts of presenting exactly one sample to ``network``."""
    before = network.counter.copy()
    network.run_sample(spike_train, learning=learning)
    return network.counter - before


def run_actual_measurement(
    network: Network,
    spike_trains: Iterable[np.ndarray],
    *,
    learning: bool = True,
    device: DeviceProfile = GTX_1080_TI,
    op_costs: Optional[Mapping[str, float]] = None,
    bit_precision: int = 32,
) -> ActualRunMeasurement:
    """Replay ``spike_trains`` through ``network`` and measure cost.

    Parameters
    ----------
    network:
        The constructed network to measure (its weights are updated in place
        when ``learning`` is enabled).
    spike_trains:
        Iterable of boolean ``(timesteps, n_input)`` spike trains.
    learning:
        Whether plasticity is active during the replay (training vs.
        inference measurement).
    device:
        Device profile used to convert operations into time and energy.
    op_costs:
        Optional per-operation-class cost overrides.
    bit_precision:
        Bits per stored value for the memory measurement.
    """
    model = EnergyModel(device, op_costs)
    before = network.counter.copy()
    n_samples = 0
    for train in spike_trains:
        network.run_sample(train, learning=learning)
        n_samples += 1
    total = network.counter - before
    return ActualRunMeasurement(
        counter=total,
        n_samples=n_samples,
        memory_bytes=actual_memory_bytes(network, bit_precision),
        energy=model.estimate(total),
    )

"""Processing-time model (paper Table II).

The processing time of a phase on a device is derived from the weighted
operation count of a single sample and the device's effective throughput::

    t_phase = (weighted_ops_per_sample / throughput) * n_samples

:func:`processing_time_report` assembles the rows of Table II: full-MNIST
training and inference hours plus the per-image inference latency, for each
network size and device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.estimation.energy import DEFAULT_OP_ENERGY_COSTS, weighted_operations
from repro.estimation.hardware import DeviceProfile, default_devices
from repro.snn.simulation import OperationCounter
from repro.utils.validation import check_positive_int

#: Sample counts of the full MNIST dataset used by the paper's Table II.
MNIST_TRAIN_SAMPLES = 60_000
MNIST_TEST_SAMPLES = 10_000


def time_per_sample_seconds(counter: OperationCounter, device: DeviceProfile,
                            op_costs: Optional[Mapping[str, float]] = None) -> float:
    """Seconds needed to process one sample whose operations are ``counter``."""
    ops = weighted_operations(counter, op_costs or DEFAULT_OP_ENERGY_COSTS)
    return device.seconds_for_operations(ops)


@dataclass
class ProcessingTimeReport:
    """Table II style processing-time report.

    Attributes
    ----------
    rows:
        One dictionary per (process, device, network-size) combination with
        keys ``process``, ``device``, ``network``, ``hours`` and, for the
        inference rows, ``seconds_per_image``.
    """

    rows: List[Dict[str, object]] = field(default_factory=list)

    def hours(self, process: str, device: str, network: str) -> float:
        """Look up the total hours of one (process, device, network) cell."""
        for row in self.rows:
            if (row["process"], row["device"], row["network"]) == (process, device, network):
                return float(row["hours"])
        raise KeyError(f"no row for ({process!r}, {device!r}, {network!r})")

    def to_text(self) -> str:
        """Human-readable rendering of the report."""
        lines = ["process      network  device          hours   s/image"]
        for row in self.rows:
            per_image = row.get("seconds_per_image")
            per_image_text = f"{per_image:7.2f}" if per_image is not None else "      -"
            lines.append(
                f"{row['process']:<12} {row['network']:<8} {row['device']:<15} "
                f"{row['hours']:6.1f}  {per_image_text}"
            )
        return "\n".join(lines)


def processing_time_report(
    per_sample_counters: Mapping[str, Mapping[str, OperationCounter]],
    *,
    devices: Optional[Sequence[DeviceProfile]] = None,
    n_train: int = MNIST_TRAIN_SAMPLES,
    n_test: int = MNIST_TEST_SAMPLES,
    op_costs: Optional[Mapping[str, float]] = None,
) -> ProcessingTimeReport:
    """Build a Table II style report.

    Parameters
    ----------
    per_sample_counters:
        ``{network_label: {"training": counter, "inference": counter}}`` with
        one-sample operation counters (e.g. ``{"N200": {...}, "N400": {...}}``).
    devices:
        Device profiles to evaluate on (defaults to the paper's three GPUs).
    n_train, n_test:
        Number of samples in the training and inference phases.
    op_costs:
        Optional per-operation-class cost overrides.
    """
    check_positive_int(n_train, "n_train")
    check_positive_int(n_test, "n_test")
    devices = list(devices) if devices is not None else default_devices()

    report = ProcessingTimeReport()
    for process, n_samples in (("training", n_train), ("inference", n_test)):
        for network_label, counters in per_sample_counters.items():
            if process not in counters:
                raise KeyError(
                    f"per_sample_counters[{network_label!r}] lacks a {process!r} counter"
                )
            for device in devices:
                per_sample = time_per_sample_seconds(
                    counters[process], device, op_costs
                )
                row: Dict[str, object] = {
                    "process": process,
                    "network": network_label,
                    "device": device.name,
                    "hours": per_sample * n_samples / 3600.0,
                }
                if process == "inference":
                    row["seconds_per_image"] = per_sample
                report.rows.append(row)
    return report

"""Memory, energy, and latency estimation (paper Section III-C and IV).

The paper estimates

* the **memory footprint** of an SNN model as ``mem = (Pw + Pn) * BP`` from
  the number of weights ``Pw``, the number of neuron parameters ``Pn``, and
  the bit precision ``BP``;
* the **energy consumption** of a phase as ``E = E1 * N`` from the energy of
  processing a single sample ``E1`` and the number of samples ``N``, where
  ``E1`` is obtained from the processing time and the processing power of the
  target GPU (Jetson Nano, GTX 1080 Ti, RTX 2080 Ti — Table I).

This package provides those analytical models, the GPU device profiles, a
processing-time model (Table II), and an instrumented "actual run" estimator
that replays samples through a network and derives time/energy from the
simulation's operation counters — the reference the analytical models are
validated against (Fig. 5).
"""

from repro.estimation.actual_run import (
    ActualRunMeasurement,
    actual_memory_bytes,
    measure_sample_operations,
    run_actual_measurement,
)
from repro.estimation.energy import (
    DEFAULT_OP_ENERGY_COSTS,
    EnergyEstimate,
    EnergyModel,
    estimate_total_energy,
    weighted_operations,
)
from repro.estimation.hardware import (
    GTX_1080_TI,
    JETSON_NANO,
    RTX_2080_TI,
    DeviceProfile,
    default_devices,
    get_device,
)
from repro.estimation.latency import (
    ProcessingTimeReport,
    processing_time_report,
    time_per_sample_seconds,
)
from repro.estimation.memory import (
    ArchitectureParameterCounts,
    architecture_parameter_counts,
    estimate_memory_bytes,
    network_memory_bytes,
    network_parameter_counts,
)

__all__ = [
    "ActualRunMeasurement",
    "ArchitectureParameterCounts",
    "DEFAULT_OP_ENERGY_COSTS",
    "DeviceProfile",
    "EnergyEstimate",
    "EnergyModel",
    "GTX_1080_TI",
    "JETSON_NANO",
    "ProcessingTimeReport",
    "RTX_2080_TI",
    "actual_memory_bytes",
    "architecture_parameter_counts",
    "default_devices",
    "estimate_memory_bytes",
    "estimate_total_energy",
    "get_device",
    "measure_sample_operations",
    "network_memory_bytes",
    "network_parameter_counts",
    "processing_time_report",
    "run_actual_measurement",
    "time_per_sample_seconds",
    "weighted_operations",
]

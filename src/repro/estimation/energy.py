"""Energy-consumption model (paper Sections III-C and IV).

Two layers are involved:

1. An **operation-to-energy** mapping: the simulation engine counts primitive
   operations (synaptic events, neuron updates, exponential evaluations,
   trace updates, weight updates); each operation class has a relative cost,
   and a :class:`~repro.estimation.hardware.DeviceProfile` converts weighted
   operations into seconds and joules — mirroring the paper's methodology of
   deriving energy from processing time and measured processing power.
2. The paper's **analytical total-energy model** ``E = E1 * N``: the energy
   for processing one sample, multiplied by the number of samples that will
   be processed.  This is what the model-search algorithm (Alg. 1) uses for
   fast estimation, and what Fig. 5(b,c) validates against actual runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.snn.simulation import OperationCounter
from repro.utils.validation import check_non_negative, check_positive_int

#: Relative energy cost of each primitive operation class.  Synaptic events
#: are multiply-accumulates (cost 2); neuron updates and exponential decays
#: involve several arithmetic operations (cost 3); trace and weight updates
#: are single fused element-wise operations (cost 1).
DEFAULT_OP_ENERGY_COSTS: Dict[str, float] = {
    "synaptic_events": 2.0,
    "neuron_updates": 3.0,
    "exponential_ops": 3.0,
    "trace_updates": 1.0,
    "weight_updates": 1.0,
    "spike_events": 0.0,
    # Event-engine accounting tallies: how much work the event path
    # delivered/avoided, not work in themselves — the compute they imply is
    # already charged to the update counters above.
    "events_processed": 0.0,
    "steps_skipped": 0.0,
}


def weighted_operations(counter: OperationCounter,
                        costs: Optional[Mapping[str, float]] = None) -> float:
    """Convert an operation counter into weighted (FLOP-equivalent) operations."""
    costs = DEFAULT_OP_ENERGY_COSTS if costs is None else costs
    total = 0.0
    for name, count in counter.as_dict().items():
        total += float(count) * float(costs.get(name, 0.0))
    return total


@dataclass(frozen=True)
class EnergyEstimate:
    """Time and energy of processing a workload on one device."""

    device: str
    seconds: float
    joules: float
    weighted_ops: float

    @property
    def kilojoules(self) -> float:
        """Energy in kilojoules (the unit used by the paper's Fig. 5)."""
        return self.joules / 1e3

    @property
    def hours(self) -> float:
        """Processing time in hours (the unit used by the paper's Table II)."""
        return self.seconds / 3600.0

    def scaled(self, factor: float) -> "EnergyEstimate":
        """Estimate for ``factor`` times the workload (the ``E = E1 * N`` model)."""
        check_non_negative(factor, "factor")
        return EnergyEstimate(
            device=self.device,
            seconds=self.seconds * factor,
            joules=self.joules * factor,
            weighted_ops=self.weighted_ops * factor,
        )


def estimate_total_energy(single_sample: EnergyEstimate,
                          n_samples: int) -> EnergyEstimate:
    """The paper's analytical model ``E = E1 * N``.

    Parameters
    ----------
    single_sample:
        Energy estimate for processing exactly one sample (``E1``).
    n_samples:
        Number of samples that will be processed (``N``).
    """
    check_positive_int(n_samples, "n_samples")
    return single_sample.scaled(float(n_samples))


class EnergyModel:
    """Converts operation counters into time/energy on a specific device.

    Parameters
    ----------
    device:
        The GPU profile to evaluate on (defaults to the GTX 1080 Ti, the
        paper's primary GPGPU).
    op_costs:
        Relative per-operation-class costs; defaults to
        :data:`DEFAULT_OP_ENERGY_COSTS`.
    """

    def __init__(self, device: DeviceProfile = GTX_1080_TI,
                 op_costs: Optional[Mapping[str, float]] = None) -> None:
        self.device = device
        self.op_costs = dict(DEFAULT_OP_ENERGY_COSTS if op_costs is None else op_costs)

    def weighted_ops(self, counter: OperationCounter) -> float:
        """Weighted operations represented by ``counter``."""
        return weighted_operations(counter, self.op_costs)

    def estimate(self, counter: OperationCounter) -> EnergyEstimate:
        """Time/energy for the workload represented by ``counter``."""
        ops = self.weighted_ops(counter)
        seconds = self.device.seconds_for_operations(ops)
        joules = self.device.energy_for_operations(ops)
        return EnergyEstimate(
            device=self.device.name,
            seconds=seconds,
            joules=joules,
            weighted_ops=ops,
        )

    def estimate_phase(self, per_sample_counter: OperationCounter,
                       n_samples: int) -> EnergyEstimate:
        """Analytical phase energy ``E = E1 * N`` from a one-sample counter."""
        return estimate_total_energy(self.estimate(per_sample_counter), n_samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnergyModel(device={self.device.name!r})"

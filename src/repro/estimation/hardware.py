"""GPU device profiles (paper Table I) and their simulation cost model.

The paper evaluates on one embedded GPU (Nvidia Jetson Nano) and two GPGPUs
(GTX 1080 Ti, RTX 2080 Ti).  Since this reproduction has no physical GPUs, a
:class:`DeviceProfile` models each device with two calibration constants:

``effective_throughput``
    Weighted simulation operations the Python/GPU pipeline sustains per
    second.  Calibrated so that the full-MNIST processing times of the
    paper's Table II are approximately recovered.
``simulation_power_watts``
    Average power draw reported by ``nvidia-smi`` (GPGPUs) or a power meter
    (embedded GPU) while running the SNN simulation.  This is well below the
    board TDP and calibrated so that the full-dataset energies of Fig. 5
    land in the paper's range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceProfile:
    """Specification and cost model of one evaluation device.

    The first six fields mirror the paper's Table I; the last two are the
    calibration constants described in the module docstring.
    """

    name: str
    architecture: str
    cuda_cores: int
    memory: str
    interface_width_bits: int
    tdp_watts: float
    effective_throughput: float
    simulation_power_watts: float

    def __post_init__(self) -> None:
        check_positive(self.cuda_cores, "cuda_cores")
        check_positive(self.tdp_watts, "tdp_watts")
        check_positive(self.effective_throughput, "effective_throughput")
        check_positive(self.simulation_power_watts, "simulation_power_watts")

    def seconds_for_operations(self, weighted_ops: float) -> float:
        """Wall-clock seconds needed for ``weighted_ops`` simulation operations."""
        if weighted_ops < 0:
            raise ValueError(f"weighted_ops must be >= 0, got {weighted_ops}")
        return weighted_ops / self.effective_throughput

    def energy_for_operations(self, weighted_ops: float) -> float:
        """Energy in joules consumed by ``weighted_ops`` simulation operations."""
        return self.seconds_for_operations(weighted_ops) * self.simulation_power_watts

    def table_row(self) -> Dict[str, object]:
        """Row of the Table I reproduction."""
        return {
            "device": self.name,
            "architecture": self.architecture,
            "cuda_cores": self.cuda_cores,
            "memory": self.memory,
            "interface_width": f"{self.interface_width_bits}-bit",
            "power": f"{self.tdp_watts:g}W",
        }


#: Nvidia Jetson Nano — the embedded GPU of Table I.
JETSON_NANO = DeviceProfile(
    name="Jetson Nano",
    architecture="Maxwell",
    cuda_cores=128,
    memory="4GB LPDDR4",
    interface_width_bits=64,
    tdp_watts=10.0,
    effective_throughput=1.3e8,
    simulation_power_watts=5.0,
)

#: Nvidia GTX 1080 Ti — first GPGPU of Table I.
GTX_1080_TI = DeviceProfile(
    name="GTX 1080 Ti",
    architecture="Pascal",
    cuda_cores=3584,
    memory="11GB GDDR5X",
    interface_width_bits=352,
    tdp_watts=250.0,
    effective_throughput=9.0e8,
    simulation_power_watts=45.0,
)

#: Nvidia RTX 2080 Ti — second GPGPU of Table I.
RTX_2080_TI = DeviceProfile(
    name="RTX 2080 Ti",
    architecture="Turing",
    cuda_cores=4352,
    memory="11GB GDDR6",
    interface_width_bits=352,
    tdp_watts=250.0,
    effective_throughput=1.15e9,
    simulation_power_watts=55.0,
)

_REGISTRY: Dict[str, DeviceProfile] = {
    device.name.lower(): device
    for device in (JETSON_NANO, GTX_1080_TI, RTX_2080_TI)
}


def default_devices() -> List[DeviceProfile]:
    """The three devices of the paper's Table I, in paper order."""
    return [JETSON_NANO, GTX_1080_TI, RTX_2080_TI]


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(device.name for device in _REGISTRY.values()))
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
    return _REGISTRY[key]

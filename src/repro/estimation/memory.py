"""Analytical memory-footprint model (paper Section III-C).

The memory footprint of a candidate SNN model is estimated as::

    mem = (Pw + Pn) * BP

where ``Pw`` is the number of synaptic weights, ``Pn`` the number of neuron
parameters, and ``BP`` the bit precision.  Two front-ends are provided:

* :func:`architecture_parameter_counts` computes ``Pw``/``Pn`` directly from
  the architecture type and layer sizes without building anything — this is
  what the model-search algorithm (Alg. 1) uses for fast estimation;
* :func:`network_parameter_counts` counts the parameters of an actually
  constructed :class:`~repro.snn.network.Network` — this is the "actual run"
  reference the analytical model is validated against (Fig. 5a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snn.network import Network
from repro.utils.validation import check_choice, check_positive_int

#: Architecture identifier for the excitatory + inhibitory layer topology.
ARCH_BASELINE = "baseline"
#: Architecture identifier for SpikeDyn's direct-lateral-inhibition topology.
ARCH_SPIKEDYN = "spikedyn"

#: Per-neuron state parameters: membrane potential, refractory timer, and
#: (for adaptive neurons) the threshold adaptation ``theta``.
EXCITATORY_PARAMS_PER_NEURON = 3
INHIBITORY_PARAMS_PER_NEURON = 2


@dataclass(frozen=True)
class ArchitectureParameterCounts:
    """Weight and neuron-parameter counts of one architecture instance."""

    weights: int
    neuron_parameters: int

    @property
    def total(self) -> int:
        """Total number of stored parameters ``Pw + Pn``."""
        return self.weights + self.neuron_parameters

    def memory_bytes(self, bit_precision: int = 32) -> float:
        """Memory footprint in bytes for the given bit precision."""
        return estimate_memory_bytes(self.weights, self.neuron_parameters,
                                     bit_precision)


def architecture_parameter_counts(architecture: str, n_input: int,
                                  n_exc: int) -> ArchitectureParameterCounts:
    """Analytical ``Pw``/``Pn`` for an architecture without building it.

    Parameters
    ----------
    architecture:
        ``"baseline"`` (excitatory + inhibitory layers) or ``"spikedyn"``
        (direct lateral inhibition).
    n_input, n_exc:
        Layer sizes.
    """
    check_choice(architecture, (ARCH_BASELINE, ARCH_SPIKEDYN), "architecture")
    check_positive_int(n_input, "n_input")
    check_positive_int(n_exc, "n_exc")

    input_to_exc = n_input * n_exc
    if architecture == ARCH_BASELINE:
        # One-to-one exc->inh plus dense (minus diagonal) inh->exc.
        weights = input_to_exc + n_exc + n_exc * (n_exc - 1)
        neuron_parameters = (
            EXCITATORY_PARAMS_PER_NEURON * n_exc
            + INHIBITORY_PARAMS_PER_NEURON * n_exc
        )
    else:
        # Direct lateral inhibition stores a single shared strength.
        weights = input_to_exc + 1
        neuron_parameters = EXCITATORY_PARAMS_PER_NEURON * n_exc
    return ArchitectureParameterCounts(weights=weights,
                                       neuron_parameters=neuron_parameters)


def network_parameter_counts(network: Network) -> ArchitectureParameterCounts:
    """``Pw``/``Pn`` counted from a constructed network (the reference run)."""
    return ArchitectureParameterCounts(
        weights=network.weight_count,
        neuron_parameters=network.neuron_parameter_count,
    )


def estimate_memory_bytes(weights: int, neuron_parameters: int,
                          bit_precision: int = 32) -> float:
    """Memory footprint ``(Pw + Pn) * BP`` expressed in bytes."""
    if weights < 0 or neuron_parameters < 0:
        raise ValueError("parameter counts must be non-negative")
    check_positive_int(bit_precision, "bit_precision")
    return (weights + neuron_parameters) * bit_precision / 8.0


def network_memory_bytes(network: Network, bit_precision: int = 32) -> float:
    """Memory footprint of a constructed network in bytes."""
    counts = network_parameter_counts(network)
    return counts.memory_bytes(bit_precision)

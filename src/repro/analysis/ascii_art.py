"""Dependency-free terminal rendering (bar charts and heat maps).

The reproduction deliberately avoids a plotting dependency; these helpers
render the figures' data as plain text so the examples and the benchmark
harness can show receptive fields, confusion matrices, and normalized-energy
comparisons directly in a terminal or a log file.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

#: Characters used for heat-map intensities, from empty to full.
HEATMAP_RAMP = " .:-=+*#%@"


def ascii_bar_chart(values: Mapping[str, float], *, width: int = 40,
                    value_format: str = "{:.2f}") -> str:
    """Render a mapping of labels to non-negative values as a bar chart.

    Parameters
    ----------
    values:
        ``{label: value}``; the largest value spans the full ``width``.
    width:
        Maximum bar length in characters.
    value_format:
        Format applied to the numeric value printed after each bar.
    """
    if not values:
        raise ValueError("values must not be empty")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    numeric = {str(key): float(value) for key, value in values.items()}
    if any(value < 0 for value in numeric.values()):
        raise ValueError("bar-chart values must be non-negative")

    peak = max(numeric.values())
    label_width = max(len(label) for label in numeric)
    lines = []
    for label, value in numeric.items():
        length = 0 if peak == 0 else int(round(value / peak * width))
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} "
            + value_format.format(value)
        )
    return "\n".join(lines)


def ascii_heatmap(matrix: np.ndarray, *, row_labels: Optional[Sequence] = None,
                  column_labels: Optional[Sequence] = None,
                  ramp: str = HEATMAP_RAMP) -> str:
    """Render a 2-D non-negative matrix as a character heat map.

    Each cell is mapped to a character of ``ramp`` proportionally to its value
    relative to the matrix maximum.  Useful for receptive fields (weight
    images) and confusion matrices.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.size == 0:
        raise ValueError("matrix must not be empty")
    if np.any(matrix < 0):
        raise ValueError("heat-map values must be non-negative")
    if len(ramp) < 2:
        raise ValueError("the character ramp needs at least two levels")
    if row_labels is not None and len(row_labels) != matrix.shape[0]:
        raise ValueError("row_labels length must match the number of rows")
    if column_labels is not None and len(column_labels) != matrix.shape[1]:
        raise ValueError("column_labels length must match the number of columns")

    peak = matrix.max()
    scaled = np.zeros_like(matrix, dtype=int) if peak == 0 else np.minimum(
        (matrix / peak * (len(ramp) - 1)).round().astype(int), len(ramp) - 1
    )

    label_width = 0
    if row_labels is not None:
        label_width = max(len(str(label)) for label in row_labels)

    lines = []
    if column_labels is not None:
        header = " " * (label_width + 1) + "".join(
            str(label)[0] for label in column_labels
        )
        lines.append(header)
    for row_index in range(matrix.shape[0]):
        prefix = ""
        if row_labels is not None:
            prefix = str(row_labels[row_index]).rjust(label_width) + " "
        cells = "".join(ramp[level] for level in scaled[row_index])
        lines.append(prefix + cells)
    return "\n".join(lines)

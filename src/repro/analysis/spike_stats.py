"""Activity statistics of the excitatory layer.

The statistics here summarize the spike-count responses produced by
:meth:`~repro.models.base.UnsupervisedDigitClassifier.respond_batch` and are
used to diagnose the winner-take-all dynamics that the paper's mechanisms
(lateral inhibition, adaptive threshold) are meant to balance: whether some
neurons dominate, how selective neurons are for classes, and how much of the
population participates at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np


def _validate_responses(responses: np.ndarray) -> np.ndarray:
    responses = np.asarray(responses, dtype=float)
    if responses.ndim != 2:
        raise ValueError(f"responses must be 2-D, got shape {responses.shape}")
    if responses.size == 0:
        raise ValueError("responses must not be empty")
    if np.any(responses < 0):
        raise ValueError("spike counts cannot be negative")
    return responses


@dataclass(frozen=True)
class ResponseStatistics:
    """Summary statistics of a batch of excitatory responses.

    Attributes
    ----------
    mean_spikes_per_sample:
        Average total excitatory spike count elicited by one sample.
    active_neuron_fraction:
        Fraction of neurons that spiked for at least one sample.
    silent_sample_fraction:
        Fraction of samples that elicited no excitatory spikes at all.
    mean_winner_share:
        Average fraction of a sample's response carried by its single most
        active neuron (1.0 = perfect winner-take-all).
    """

    mean_spikes_per_sample: float
    active_neuron_fraction: float
    silent_sample_fraction: float
    mean_winner_share: float


def response_statistics(responses: np.ndarray) -> ResponseStatistics:
    """Compute :class:`ResponseStatistics` for a ``(samples, neurons)`` batch."""
    responses = _validate_responses(responses)
    totals = responses.sum(axis=1)
    return ResponseStatistics(
        mean_spikes_per_sample=float(totals.mean()),
        active_neuron_fraction=float((responses.sum(axis=0) > 0).mean()),
        silent_sample_fraction=float((totals == 0).mean()),
        mean_winner_share=float(winner_share(responses).mean()),
    )


def winner_share(responses: np.ndarray) -> np.ndarray:
    """Per-sample fraction of the response carried by the most active neuron.

    Silent samples contribute 0.
    """
    responses = _validate_responses(responses)
    totals = responses.sum(axis=1)
    safe_totals = np.where(totals > 0, totals, 1.0)
    share = responses.max(axis=1) / safe_totals
    return np.where(totals > 0, share, 0.0)


def population_sparseness(responses: np.ndarray) -> float:
    """Treves–Rolls population sparseness of the mean response, in [0, 1].

    Values near 1 mean the activity is spread evenly over the population;
    values near 0 mean a handful of neurons carry almost all activity.
    """
    responses = _validate_responses(responses)
    mean_response = responses.mean(axis=0)
    total = mean_response.sum()
    if total == 0:
        return 0.0
    n = mean_response.size
    numerator = (mean_response.sum() / n) ** 2
    denominator = (mean_response ** 2).sum() / n
    return float(numerator / denominator)


def class_selectivity(responses: np.ndarray,
                      labels: Sequence[int]) -> Dict[int, float]:
    """Per-class selectivity of the population response.

    For every class, selectivity is ``(best - mean_other) / (best + mean_other)``
    computed on the class-averaged response of the most responsive neuron,
    i.e. 1.0 when some neuron responds exclusively to that class and 0.0 when
    its response is identical across classes.
    """
    responses = _validate_responses(responses)
    labels = np.asarray(labels, dtype=int)
    if labels.shape != (responses.shape[0],):
        raise ValueError(
            f"labels must have shape ({responses.shape[0]},), got {labels.shape}"
        )
    classes = sorted(set(labels.tolist()))
    if len(classes) < 2:
        raise ValueError("class selectivity needs at least two classes")

    class_means = np.stack([responses[labels == cls].mean(axis=0)
                            for cls in classes])
    selectivity: Dict[int, float] = {}
    for index, cls in enumerate(classes):
        own = class_means[index]
        others = np.delete(class_means, index, axis=0).mean(axis=0)
        best = int(np.argmax(own))
        numerator = own[best] - others[best]
        denominator = own[best] + others[best]
        selectivity[int(cls)] = float(numerator / denominator) if denominator else 0.0
    return selectivity


def mean_selectivity(selectivity: Mapping[int, float]) -> float:
    """Average of the per-class selectivities."""
    if not selectivity:
        raise ValueError("selectivity mapping must not be empty")
    return float(np.mean(list(selectivity.values())))

"""Pareto-front utilities for the model-search results (Alg. 1).

The paper's search keeps the *largest feasible* model; in practice a designer
often wants to see the whole memory/energy/size trade-off.  These helpers
compute Pareto fronts over arbitrary objective tuples and over the
:class:`~repro.core.model_search.ModelSearchResult` candidates directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.model_search import ModelCandidate, ModelSearchResult


@dataclass(frozen=True)
class ParetoPoint:
    """One point considered by the Pareto filter.

    Attributes
    ----------
    objectives:
        Objective values; by convention every objective is minimized, so
        callers negate quantities they want to maximize.
    payload:
        Arbitrary object carried along (e.g. a :class:`ModelCandidate`).
    """

    objectives: Tuple[float, ...]
    payload: object = None


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` dominates ``b`` (all <=, at least one <)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset of ``points`` (all objectives minimized).

    Ties (identical objective vectors) are all kept.  The result preserves the
    input order.
    """
    if not points:
        return []
    dimensions = {len(point.objectives) for point in points}
    if len(dimensions) != 1:
        raise ValueError("every point must have the same number of objectives")

    front: List[ParetoPoint] = []
    for candidate in points:
        dominated = any(
            _dominates(other.objectives, candidate.objectives)
            for other in points if other is not candidate
        )
        if not dominated:
            front.append(candidate)
    return front


def search_result_pareto(result: ModelSearchResult,
                         *, feasible_only: bool = True) -> List[ModelCandidate]:
    """Pareto-optimal candidates of an Alg. 1 sweep.

    The objectives are (memory footprint, training energy, **negated** model
    size): a candidate is kept if no other candidate is simultaneously
    smaller in memory, cheaper to train, and at least as large.

    Parameters
    ----------
    result:
        The search result to filter.
    feasible_only:
        Restrict the front to candidates that satisfied every constraint.
    """
    candidates = (result.feasible_candidates if feasible_only
                  else list(result.candidates))
    points = []
    for candidate in candidates:
        training_joules = (candidate.training_energy.joules
                           if candidate.training_energy is not None else float("inf"))
        points.append(ParetoPoint(
            objectives=(candidate.memory_bytes, training_joules,
                        -float(candidate.n_exc)),
            payload=candidate,
        ))
    return [point.payload for point in pareto_front(points)]

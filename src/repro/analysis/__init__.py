"""Analysis utilities on top of trained models and search results.

The paper's figures are built from three kinds of post-processing, all
provided here so downstream users can inspect their own runs:

* :mod:`repro.analysis.receptive_fields` — the learned input→excitatory
  weights viewed as per-neuron receptive fields (the standard way to inspect
  Diehl & Cook style unsupervised SNNs);
* :mod:`repro.analysis.spike_stats` — activity statistics of the excitatory
  layer (firing rates, selectivity, winner-take-all sharpness);
* :mod:`repro.analysis.pareto` — Pareto-front utilities over the candidates
  explored by the Alg. 1 model search;
* :mod:`repro.analysis.ascii_art` — dependency-free terminal rendering (bar
  charts and heat maps) used by the examples and reports.
"""

from repro.analysis.ascii_art import ascii_bar_chart, ascii_heatmap
from repro.analysis.pareto import ParetoPoint, pareto_front, search_result_pareto
from repro.analysis.receptive_fields import (
    neuron_class_map,
    receptive_field,
    receptive_field_grid,
    receptive_field_similarity,
)
from repro.analysis.spike_stats import (
    ResponseStatistics,
    class_selectivity,
    population_sparseness,
    response_statistics,
    winner_share,
)

__all__ = [
    "ParetoPoint",
    "ResponseStatistics",
    "ascii_bar_chart",
    "ascii_heatmap",
    "class_selectivity",
    "neuron_class_map",
    "pareto_front",
    "population_sparseness",
    "receptive_field",
    "receptive_field_grid",
    "receptive_field_similarity",
    "response_statistics",
    "search_result_pareto",
    "winner_share",
]

"""Receptive-field inspection of the learned input→excitatory weights.

In Diehl & Cook style unsupervised SNNs, each excitatory neuron's incoming
weight vector converges towards the average input pattern it responds to, so
reshaping a weight column into the input image shape shows "what the neuron
has learned".  These helpers extract, normalize, tile, and compare those
receptive fields; they operate on any
:class:`~repro.models.base.UnsupervisedDigitClassifier`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive_int


def _weight_matrix(model) -> np.ndarray:
    """The model's input→excitatory weight matrix as a numpy array."""
    weights = np.asarray(model.input_weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"input weights must be 2-D, got shape {weights.shape}")
    return weights


def _image_side(n_input: int) -> int:
    """Side length of the (square) input image."""
    side = int(round(np.sqrt(n_input)))
    if side * side != n_input:
        raise ValueError(
            f"the input size {n_input} is not a square number; pass an explicit "
            "image shape to reshape the receptive field yourself"
        )
    return side


def receptive_field(model, neuron: int, *, normalize: bool = True) -> np.ndarray:
    """Receptive field of one excitatory neuron as a 2-D image.

    Parameters
    ----------
    model:
        Any trained (or untrained) unsupervised digit classifier.
    neuron:
        Index of the excitatory neuron.
    normalize:
        Scale the returned image into [0, 1] (a no-op for an all-zero field).
    """
    weights = _weight_matrix(model)
    if not 0 <= neuron < weights.shape[1]:
        raise ValueError(
            f"neuron index {neuron} out of range for {weights.shape[1]} neurons"
        )
    side = _image_side(weights.shape[0])
    field = weights[:, neuron].reshape(side, side).copy()
    if normalize and field.max() > 0:
        field = field / field.max()
    return field


def receptive_field_grid(model, *, columns: int = 8,
                         neurons: Optional[Sequence[int]] = None,
                         normalize: bool = True, pad: int = 1) -> np.ndarray:
    """Tile receptive fields into one image grid (row-major neuron order).

    Parameters
    ----------
    model:
        The classifier whose fields are tiled.
    columns:
        Number of fields per grid row.
    neurons:
        Which neurons to include; defaults to all of them.
    normalize:
        Normalize each field individually to [0, 1].
    pad:
        Number of zero pixels inserted between adjacent fields.
    """
    check_positive_int(columns, "columns")
    if pad < 0:
        raise ValueError(f"pad must be >= 0, got {pad}")
    weights = _weight_matrix(model)
    indices = list(range(weights.shape[1])) if neurons is None else list(neurons)
    if not indices:
        raise ValueError("at least one neuron is required")

    side = _image_side(weights.shape[0])
    rows = int(np.ceil(len(indices) / columns))
    cell = side + pad
    grid = np.zeros((rows * cell - pad, columns * cell - pad), dtype=float)
    for position, neuron in enumerate(indices):
        field = receptive_field(model, neuron, normalize=normalize)
        row, column = divmod(position, columns)
        top, left = row * cell, column * cell
        grid[top:top + side, left:left + side] = field
    return grid


def receptive_field_similarity(model, reference: np.ndarray) -> np.ndarray:
    """Cosine similarity of every neuron's receptive field to a reference image.

    Parameters
    ----------
    model:
        The classifier whose fields are compared.
    reference:
        Image (any shape) with ``n_input`` pixels, e.g. a class prototype from
        :class:`~repro.datasets.synthetic_mnist.SyntheticDigits`.

    Returns
    -------
    numpy.ndarray
        Per-neuron cosine similarity in [-1, 1]; silent (all-zero) fields get 0.
    """
    weights = _weight_matrix(model)
    reference = np.asarray(reference, dtype=float).ravel()
    if reference.size != weights.shape[0]:
        raise ValueError(
            f"reference has {reference.size} pixels but the model expects "
            f"{weights.shape[0]}"
        )
    reference_norm = np.linalg.norm(reference)
    if reference_norm == 0:
        raise ValueError("the reference image is all zeros")
    column_norms = np.linalg.norm(weights, axis=0)
    safe_norms = np.where(column_norms > 0, column_norms, 1.0)
    similarity = (weights.T @ reference) / (safe_norms * reference_norm)
    similarity[column_norms == 0] = 0.0
    return similarity


def neuron_class_map(model, prototypes: Dict[int, np.ndarray]) -> np.ndarray:
    """Assign each neuron the class whose prototype its field resembles most.

    This is a *weight-based* alternative to the response-based labelling of
    :func:`repro.evaluation.labeling.assign_neuron_labels`, useful for
    inspecting what the synapses encode without running the network.

    Parameters
    ----------
    model:
        The classifier to inspect.
    prototypes:
        ``{class: prototype image}`` with ``n_input`` pixels each.

    Returns
    -------
    numpy.ndarray
        Per-neuron class labels; neurons with an all-zero field get ``-1``.
    """
    if not prototypes:
        raise ValueError("at least one prototype is required")
    classes = sorted(prototypes)
    similarities = np.stack(
        [receptive_field_similarity(model, prototypes[cls]) for cls in classes]
    )
    weights = _weight_matrix(model)
    labels = np.array(classes)[np.argmax(similarities, axis=0)]
    labels[np.linalg.norm(weights, axis=0) == 0] = -1
    return labels

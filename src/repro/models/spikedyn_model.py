"""The SpikeDyn model: direct lateral inhibition + the Alg. 2 learning rule.

This is the paper's contribution assembled into one classifier:

* the optimized architecture of Section III-B (no inhibitory layer);
* the adaptive membrane threshold potential of Section III-D, configured by
  the architecture builder from ``c_theta``/``theta_decay``/``t_sim``;
* the continual and unsupervised learning rule of Alg. 2 — adaptive learning
  rates, synaptic weight decay with ``w_decay ∝ 1/n_exc``, and
  spurious-update reduction via timestep-gated updates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.architecture import build_spikedyn_network
from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.core.weight_decay import SynapticWeightDecay
from repro.estimation.memory import ARCH_SPIKEDYN
from repro.models.base import DEFAULT_EVAL_BATCH_SIZE, UnsupervisedDigitClassifier
from repro.utils.rng import SeedLike


class SpikeDynModel(UnsupervisedDigitClassifier):
    """SpikeDyn unsupervised SNN classifier.

    Parameters
    ----------
    config:
        Hyperparameter bundle; the weight-decay rate defaults to
        ``decay_scale / n_exc`` and the adaptation potential to
        ``c_theta * theta_decay * t_sim`` as in the paper.
    learning_rule:
        Optional pre-built :class:`SpikeDynLearningRule` (used by the
        ablation benchmarks to toggle individual mechanisms).
    rng:
        Seed or generator for weight initialization (defaults to the
        configuration's seed).
    eval_batch_size:
        Samples advanced per vectorized engine step during evaluation
        (see :class:`~repro.models.base.UnsupervisedDigitClassifier`).
    backend:
        Compute backend (name or instance) executing the network's kernels;
        defaults to the configuration's ``backend`` field.
    """

    def __init__(self, config: SpikeDynConfig, *,
                 learning_rule: Optional[SpikeDynLearningRule] = None,
                 rng: SeedLike = None,
                 eval_batch_size: Optional[int] = DEFAULT_EVAL_BATCH_SIZE,
                 backend=None) -> None:
        rule = learning_rule if learning_rule is not None else SpikeDynLearningRule(
            nu_pre=config.nu_pre,
            nu_post=config.nu_post,
            spike_threshold=config.spike_threshold,
            update_interval=config.update_interval,
            weight_decay=SynapticWeightDecay(
                config.effective_w_decay, config.tau_decay
            ),
            soft_bounds=config.soft_bounds,
            tau_pre=config.tau_pre,
            tau_post=config.tau_post,
        )
        network = build_spikedyn_network(
            config, learning_rule=rule, rng=rng, name="spikedyn",
            backend=backend,
        )
        super().__init__(config, network, name="spikedyn",
                         eval_batch_size=eval_batch_size)
        self.learning_rule = rule

    def architecture_name(self) -> str:
        return ARCH_SPIKEDYN

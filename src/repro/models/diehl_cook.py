"""The baseline model: Diehl & Cook (2015) unsupervised STDP network.

Architecture of Fig. 1(a): a learned input→excitatory projection, a
one-to-one excitatory→inhibitory projection, and a dense
inhibitory→excitatory projection implementing winner-take-all competition.
Learning is per-spike-event pairwise STDP; the threshold adaptation is the
classic additive ``theta`` with a very slow decay.  The baseline has no
mechanism for forgetting, which is why it mixes new information into already
occupied synapses in dynamic scenarios (paper Section I-A, observation 1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.architecture import build_baseline_network
from repro.core.config import SpikeDynConfig
from repro.estimation.memory import ARCH_BASELINE
from repro.learning.stdp import PairwiseSTDP
from repro.models.base import DEFAULT_EVAL_BATCH_SIZE, UnsupervisedDigitClassifier
from repro.utils.rng import SeedLike


class DiehlCookModel(UnsupervisedDigitClassifier):
    """Baseline unsupervised SNN classifier (excitatory + inhibitory layers).

    Parameters
    ----------
    config:
        Shared hyperparameter bundle (sizes, timing, encoding constants).
    learning_rule:
        Optional pre-built STDP rule; constructed from the configuration's
        ``nu_pre``/``nu_post`` when omitted.
    rng:
        Seed or generator for weight initialization (defaults to the
        configuration's seed).
    eval_batch_size:
        Samples advanced per vectorized engine step during evaluation
        (see :class:`~repro.models.base.UnsupervisedDigitClassifier`).
    backend:
        Compute backend (name or instance) executing the network's kernels;
        defaults to the configuration's ``backend`` field.
    """

    def __init__(self, config: SpikeDynConfig, *,
                 learning_rule: Optional[PairwiseSTDP] = None,
                 rng: SeedLike = None,
                 eval_batch_size: Optional[int] = DEFAULT_EVAL_BATCH_SIZE,
                 backend=None) -> None:
        rule = learning_rule if learning_rule is not None else PairwiseSTDP(
            nu_pre=config.nu_pre,
            nu_post=config.nu_post,
            tau_pre=config.tau_pre,
            tau_post=config.tau_post,
            soft_bounds=config.soft_bounds,
        )
        network = build_baseline_network(
            config, learning_rule=rule, rng=rng, name="baseline",
            backend=backend,
        )
        super().__init__(config, network, name="baseline",
                         eval_batch_size=eval_batch_size)
        self.learning_rule = rule

    def architecture_name(self) -> str:
        return ARCH_BASELINE

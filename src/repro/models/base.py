"""Shared model interface for unsupervised spiking digit classifiers.

A model owns a network, a spike encoder, and the evaluation read-out state
(per-neuron class assignments).  The three comparison partners of the paper
(baseline, ASP, SpikeDyn) differ only in the network architecture and the
learning rule they plug into this class.
"""

from __future__ import annotations

import dataclasses
import json
import zipfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.backends import BackendLike, normalize_backend_name
from repro.core.config import SpikeDynConfig
from repro.datasets.streams import StreamSample
from repro.encoding.rate import PoissonRateEncoder
from repro.evaluation.labeling import assign_neuron_labels, predict_from_responses
from repro.evaluation.metrics import accuracy as accuracy_metric
from repro.snn.network import Network
from repro.snn.simulation import OperationCounter
from repro.utils.rng import ensure_rng
from repro.utils.serialization import (
    ArtifactError,
    load_arrays,
    load_json,
    save_arrays,
    save_json,
)

PathLike = Union[str, Path]

#: Number of digit classes in the (synthetic or real) MNIST task.
N_CLASSES = 10

#: Default number of samples advanced per vectorized engine step during
#: evaluation (see :meth:`UnsupervisedDigitClassifier.respond_batch`).
DEFAULT_EVAL_BATCH_SIZE = 32

#: Version of the on-disk artifact layout written by
#: :meth:`UnsupervisedDigitClassifier.save`.  Version 1 is the legacy layout
#: (no ``schema_version`` field, no encoder spec, no shape validation on
#: load); version 2 adds the self-describing metadata consumed by the
#: serving subsystem (:mod:`repro.serving.artifacts`); version 3 records the
#: compute backend the model ran on (``backend`` key, validated against the
#: backend registry on load — the stored state itself is backend-agnostic).
ARTIFACT_SCHEMA_VERSION = 3

#: JSON metadata file of a saved model artifact.
ARTIFACT_METADATA_FILE = "model.json"

#: Array archive of a saved model artifact.
ARTIFACT_STATE_FILE = "state.npz"


def read_artifact_dir(directory: PathLike):
    """Read an artifact directory's ``(metadata, arrays, schema_version,
    backend)``.

    Shared by :meth:`UnsupervisedDigitClassifier.load_state` and
    :func:`repro.serving.artifacts.load_artifact` so both surfaces map
    missing/corrupt files, unsupported schema versions, and unknown compute
    backends to the same
    :class:`~repro.utils.serialization.ArtifactError`.
    """
    directory = Path(directory)
    try:
        arrays = load_arrays(directory / ARTIFACT_STATE_FILE)
        metadata = load_json(directory / ARTIFACT_METADATA_FILE)
    except FileNotFoundError as error:
        raise ArtifactError(
            f"{directory} is not a model artifact: {error}"
        ) from error
    except (OSError, zipfile.BadZipFile, json.JSONDecodeError,
            ValueError) as error:
        raise ArtifactError(
            f"{directory} holds a corrupt model artifact: {error}"
        ) from error
    if not isinstance(metadata, dict) or "config" not in metadata:
        raise ArtifactError(
            f"{directory / ARTIFACT_METADATA_FILE} has no 'config' section"
        )
    # Legacy (pre-serving) artifacts carry no schema_version field.
    schema_version = int(metadata.get("schema_version", 1))
    if schema_version > ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"{directory} uses artifact schema version {schema_version}, "
            f"but this library supports at most {ARTIFACT_SCHEMA_VERSION}"
        )
    backend = validate_artifact_backend(metadata,
                                        schema_version=schema_version,
                                        source=directory)
    return metadata, arrays, schema_version, backend


def validate_artifact_backend(metadata: Dict[str, object], *,
                              schema_version: int,
                              source: object = "artifact") -> str:
    """Check (and return) the compute backend recorded in an artifact.

    Schema v3 artifacts must name a backend *registered* in this process
    (earlier schemas predate the backend layer and default to ``"dense"``).
    Registration is the whole requirement: an unavailable backend — one
    whose optional dependency is missing — loads fine, because the stored
    arrays are backend-agnostic and the recorded name is only the default
    for rebuilds (``build_model(backend=...)`` can always override it).
    Only a name no registered backend claims is rejected, exactly like any
    other invalid configuration value.
    """
    backend = metadata.get("backend")
    if backend is None:
        if schema_version >= 3:
            raise ArtifactError(
                f"cannot load {source} (schema version {schema_version}): "
                "missing the 'backend' field"
            )
        return "dense"
    try:
        return normalize_backend_name(str(backend))
    except ValueError as error:
        raise ArtifactError(
            f"cannot load {source} (schema version {schema_version}): {error}"
        ) from None


def validate_config_compatibility(stored: "SpikeDynConfig",
                                  current: "SpikeDynConfig", *,
                                  schema_version: int,
                                  source: object = "artifact") -> None:
    """Check that a stored configuration matches the target model's.

    Every field except ``seed`` and ``backend`` must agree: the loaded
    weights and theta assume the stored neuron constants, encoder timing
    (``t_sim``/``dt``), and rate-coding parameters, so a mismatch silently
    degrades inference rather than failing.  ``seed`` only controls
    stochastic draws and ``backend`` only controls which kernels execute the
    arithmetic; both may legitimately differ (e.g. evaluating a saved model
    on fresh samples, or serving a dense-trained artifact on the sparse
    event backend).
    """
    mismatched = []
    for spec in dataclasses.fields(type(stored)):
        if spec.name in ("seed", "backend"):
            continue
        stored_value = getattr(stored, spec.name)
        current_value = getattr(current, spec.name)
        if stored_value != current_value:
            mismatched.append(
                f"{spec.name}: model has {current_value!r}, "
                f"artifact has {stored_value!r}"
            )
    if mismatched:
        raise ArtifactError(
            f"cannot load {source} (schema version {schema_version}): "
            "stored configuration is incompatible with this model — "
            + "; ".join(mismatched)
        )


def apply_artifact_state(model: "UnsupervisedDigitClassifier",
                         arrays: Dict[str, np.ndarray],
                         metadata: Dict[str, object]) -> None:
    """Overwrite ``model``'s learned state with validated artifact arrays.

    The single restore path shared by :meth:`UnsupervisedDigitClassifier.
    load_state` and :meth:`repro.serving.artifacts.ModelArtifact.
    build_model`; callers must have validated shapes first.
    """
    connection = model.network.connection("input_to_exc")
    connection.weights[:] = arrays["input_weights"]
    model.assignments = arrays["assignments"].astype(int)
    excitatory = model.network.group("excitatory")
    if "theta" in arrays and hasattr(excitatory, "theta"):
        excitatory.theta[:] = arrays["theta"]
    meta = metadata.get("meta", {})
    model.samples_trained = int(meta.get("samples_trained", 0))


def validate_artifact_arrays(arrays: Dict[str, np.ndarray], *, n_input: int,
                             n_exc: int, schema_version: int,
                             source: object = "artifact") -> None:
    """Check that loaded state arrays match the target architecture.

    Raises :class:`~repro.utils.serialization.ArtifactError` naming every
    missing array and every expected-vs-found shape mismatch (instead of a
    bare ``KeyError`` or a numpy broadcast error mid-load).
    """
    expected = {
        "input_weights": (n_input, n_exc),
        "assignments": (n_exc,),
    }
    optional = {"theta": (n_exc,)}
    problems = []
    for key, shape in expected.items():
        if key not in arrays:
            problems.append(f"missing array {key!r} (expected shape {shape})")
        elif tuple(arrays[key].shape) != shape:
            problems.append(
                f"{key!r} has shape {tuple(arrays[key].shape)}, expected {shape}"
            )
    for key, shape in optional.items():
        if key in arrays and tuple(arrays[key].shape) != shape:
            problems.append(
                f"{key!r} has shape {tuple(arrays[key].shape)}, expected {shape}"
            )
    if problems:
        raise ArtifactError(
            f"cannot load {source} (schema version {schema_version}): "
            + "; ".join(problems)
        )


class UnsupervisedDigitClassifier:
    """Base class binding a network, an encoder, and the read-out together.

    Parameters
    ----------
    config:
        Hyperparameter bundle (sizes, timing, encoding, learning constants).
    network:
        The constructed spiking network; its input group must be named
        ``"input"`` and its excitatory group ``"excitatory"``.
    encoder:
        Spike encoder converting images into input spike trains; built from
        the configuration when omitted.
    name:
        Model identifier used in reports.
    eval_batch_size:
        Number of samples advanced per vectorized engine step during
        inference/evaluation (:meth:`respond_batch`).  ``None`` or ``1``
        falls back to the sequential per-sample loop.
    """

    def __init__(self, config: SpikeDynConfig, network: Network,
                 encoder: Optional[PoissonRateEncoder] = None,
                 name: str = "model",
                 eval_batch_size: Optional[int] = DEFAULT_EVAL_BATCH_SIZE) -> None:
        # Keep ``config.backend`` authoritative about the network actually
        # running: a constructor-level backend override (``backend=`` kwarg
        # on the model classes) would otherwise leave a saved artifact's
        # top-level backend and ``config.backend`` disagreeing.
        if network.backend_name != config.backend:
            config = config.replace(backend=network.backend_name)
        self.config = config
        self.network = network
        self.name = str(name)
        self.encoder = encoder if encoder is not None else PoissonRateEncoder(
            duration=config.t_sim,
            dt=config.dt,
            max_rate=config.max_rate,
            intensity_scale=config.intensity_scale,
            rng=ensure_rng(config.seed),
        )
        self.assignments = np.full(config.n_exc, -1, dtype=int)
        self.samples_trained = 0
        self.eval_batch_size = eval_batch_size

    # -- basic properties -----------------------------------------------------

    @property
    def n_exc(self) -> int:
        """Number of excitatory neurons."""
        return self.config.n_exc

    @property
    def n_input(self) -> int:
        """Number of input neurons (pixels)."""
        return self.config.n_input

    @property
    def counter(self) -> OperationCounter:
        """The network's cumulative operation counter."""
        return self.network.counter

    @property
    def backend_name(self) -> str:
        """Registry name of the compute backend the network runs on."""
        return self.network.backend_name

    def set_backend(self, backend: BackendLike) -> None:
        """Retarget the model's network to another compute backend.

        The configuration's ``backend`` field follows along so that a
        subsequently saved artifact stays self-consistent (its top-level
        ``backend`` key and ``config.backend`` always agree).
        """
        self.network.set_backend(backend)
        self.config = self.config.replace(backend=self.network.backend_name)

    @property
    def input_weights(self) -> np.ndarray:
        """The learned input→excitatory weight matrix (a live view)."""
        return self.network.connection("input_to_exc").weights

    def architecture_name(self) -> str:
        """Architecture identifier for the analytical estimators."""
        raise NotImplementedError

    # -- training and responses ------------------------------------------------

    def _check_image(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=float)
        if image.size != self.n_input:
            raise ValueError(
                f"image has {image.size} pixels but the model expects {self.n_input}"
            )
        return image

    def _encode(self, image: np.ndarray) -> np.ndarray:
        return self.encoder.encode(self._check_image(image))

    def encode_batch(self, images: Sequence[np.ndarray]) -> np.ndarray:
        """Encode ``images`` into a ``(B, timesteps, n_input)`` spike train."""
        return self.encoder.encode_batch(
            [self._check_image(image) for image in images]
        )

    def train_sample(self, image: np.ndarray) -> np.ndarray:
        """Present one image with plasticity enabled; returns exc. spike counts."""
        result = self.network.run_sample(self._encode(image), learning=True)
        self.samples_trained += 1
        return result.counts("excitatory")

    def train_batch(self, images: Sequence[np.ndarray]) -> np.ndarray:
        """Train on a batch of images; returns exc. spike counts ``(B, n_exc)``.

        Plasticity is applied sequentially per sample (the engine's
        ``learning=True`` batch path), so the learned weights are identical
        to a :meth:`train_sample` loop.
        """
        if len(images) == 0:
            return np.zeros((0, self.n_exc), dtype=float)
        results = self.network.run_batch(self.encode_batch(images), learning=True)
        self.samples_trained += len(results)
        return np.stack([result.counts("excitatory") for result in results])

    def respond(self, image: np.ndarray) -> np.ndarray:
        """Present one image with plasticity disabled; returns exc. spike counts."""
        result = self.network.run_sample(self._encode(image), learning=False)
        return result.counts("excitatory")

    def train_stream(self, stream: Iterable[StreamSample]) -> int:
        """Train on every sample of a task stream; returns the sample count."""
        count = 0
        for sample in stream:
            self.train_sample(sample.image)
            count += 1
        return count

    def respond_batch(self, images: Sequence[np.ndarray],
                      batch_size: Optional[int] = None) -> np.ndarray:
        """Responses (spike counts) for a batch of images, shape ``(n, n_exc)``.

        Images are presented with plasticity disabled through the engine's
        vectorized batch path, ``batch_size`` samples at a time (defaults to
        :attr:`eval_batch_size`).  Samples within a chunk are independent and
        the network's adaptation state is left untouched; pass
        ``batch_size=1`` (or set ``eval_batch_size=None``) to recover the
        sequential :meth:`respond` loop, which carries threshold-adaptation
        drift across samples.
        """
        limit = batch_size if batch_size is not None else self.eval_batch_size
        responses = np.zeros((len(images), self.n_exc), dtype=float)
        if limit is None or limit <= 1:
            for index, image in enumerate(images):
                responses[index] = self.respond(image)
            return responses
        limit = int(limit)
        for start in range(0, len(images), limit):
            chunk = images[start:start + limit]
            results = self.network.run_batch(self.encode_batch(chunk),
                                             learning=False)
            for offset, result in enumerate(results):
                responses[start + offset] = result.counts("excitatory")
        return responses

    # -- read-out ---------------------------------------------------------------

    def assign_labels(self, images: Sequence[np.ndarray],
                      labels: Sequence[int]) -> np.ndarray:
        """Assign neuron labels from a labelled assignment set."""
        responses = self.respond_batch(images)
        self.assignments = assign_neuron_labels(
            responses, np.asarray(labels, dtype=int), N_CLASSES
        )
        return self.assignments

    def predict(self, images: Sequence[np.ndarray]) -> np.ndarray:
        """Predict classes for ``images`` using the current assignments."""
        responses = self.respond_batch(images)
        return predict_from_responses(responses, self.assignments, N_CLASSES)

    def evaluate_accuracy(self, images: Sequence[np.ndarray],
                          labels: Sequence[int]) -> float:
        """Classification accuracy on a labelled evaluation set."""
        predictions = self.predict(images)
        return accuracy_metric(predictions, np.asarray(labels, dtype=int))

    # -- event-stream path -------------------------------------------------------

    def encode_events(self, image: np.ndarray):
        """Encode ``image`` as a native event stream (no dense grid).

        Requires the model's encoder to be an
        :class:`~repro.encoding.events.EventStreamEncoder`; the grid
        encoders have no O(events) representation to offer.
        """
        from repro.encoding.events import EventStreamEncoder

        if not isinstance(self.encoder, EventStreamEncoder):
            raise TypeError(
                f"model '{self.name}' uses a {type(self.encoder).__name__}, "
                "which cannot emit event streams; construct it with an "
                "EventStreamEncoder to use the event path"
            )
        return self.encoder.encode_events(self._check_image(image))

    def respond_events(self, events) -> np.ndarray:
        """Spike counts for one event stream, via the event-driven engine.

        ``events`` is anything :meth:`~repro.snn.network.Network.run_events`
        accepts — an :class:`~repro.snn.events.EventStream` or a dense
        ``(timesteps, n_input)`` train.  Plasticity is disabled; on backends
        that declare event support, provably silent gaps are skipped.
        """
        result = self.network.run_events(events, learning=False)
        return result.counts("excitatory")

    def predict_events(self, streams: Sequence) -> np.ndarray:
        """Predict classes for a sequence of event streams."""
        responses = np.stack([self.respond_events(stream)
                              for stream in streams])
        return predict_from_responses(responses, self.assignments, N_CLASSES)

    # -- bookkeeping -------------------------------------------------------------

    def reset_counter(self) -> OperationCounter:
        """Return a copy of the counter and reset it (for per-phase accounting)."""
        snapshot = self.network.counter.copy()
        self.network.counter.reset()
        return snapshot

    def describe(self) -> Dict[str, object]:
        """Small summary dictionary used in reports and serialization."""
        return {
            "name": self.name,
            "architecture": self.architecture_name(),
            "n_input": self.n_input,
            "n_exc": self.n_exc,
            "samples_trained": self.samples_trained,
            "backend": self.backend_name,
        }

    # -- persistence --------------------------------------------------------------

    def encoder_spec(self) -> Dict[str, object]:
        """Self-describing encoder declaration stored in the artifact."""
        spec: Dict[str, object] = {
            "type": type(self.encoder).__name__,
            "duration": self.encoder.duration,
            "dt": self.encoder.dt,
            "timesteps": self.encoder.timesteps,
        }
        for attribute in ("max_rate", "intensity_scale"):
            value = getattr(self.encoder, attribute, None)
            if value is not None:
                spec[attribute] = value
        return spec

    def save(self, directory: PathLike) -> Path:
        """Save a versioned, self-describing model artifact.

        The artifact is a directory holding ``state.npz`` (learned input
        weights, neuron-label assignments, and — when the excitatory group
        adapts — the threshold potential ``theta``) next to ``model.json``
        (schema version, compute backend, full configuration, model
        identity, and the encoder spec).  :meth:`load_state` and
        :func:`repro.serving.artifacts.load_artifact` restore it
        bit-for-bit.

        Returns the directory the files were written to.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = {
            "input_weights": self.input_weights,
            "assignments": self.assignments,
        }
        excitatory = self.network.group("excitatory")
        theta = getattr(excitatory, "theta", None)
        if theta is not None:
            arrays["theta"] = theta
        save_arrays(arrays, directory / ARTIFACT_STATE_FILE)
        save_json(
            {
                "format": "spikedyn-repro-model",
                "schema_version": ARTIFACT_SCHEMA_VERSION,
                "backend": self.backend_name,
                "config": self.config.to_dict(),
                "meta": self.describe(),
                "encoder": self.encoder_spec(),
            },
            directory / ARTIFACT_METADATA_FILE,
        )
        return directory

    def load_state(self, directory: PathLike) -> None:
        """Restore weights, assignments, and theta written by :meth:`save`.

        Raises
        ------
        ArtifactError
            If the artifact's schema version is newer than this library
            supports, its configuration does not match this model's (any
            field other than ``seed`` — sizes, neuron constants, encoder
            timing), or any stored array is missing or mis-shaped (the
            error message lists expected-vs-found shapes).
        """
        directory = Path(directory)
        metadata, arrays, schema_version, _ = read_artifact_dir(directory)
        try:
            stored_config = SpikeDynConfig.from_dict(metadata["config"])
        except (TypeError, ValueError) as error:
            raise ArtifactError(
                f"{directory} carries an invalid configuration: {error}"
            ) from error
        if (stored_config.n_input, stored_config.n_exc) != (self.n_input, self.n_exc):
            raise ArtifactError(
                "stored model size "
                f"({stored_config.n_input}x{stored_config.n_exc}) does not match "
                f"this model ({self.n_input}x{self.n_exc}) "
                f"[schema version {schema_version}]"
            )
        validate_config_compatibility(
            stored_config, self.config,
            schema_version=schema_version, source=directory,
        )
        validate_artifact_arrays(
            arrays,
            n_input=self.n_input,
            n_exc=self.n_exc,
            schema_version=schema_version,
            source=directory,
        )
        apply_artifact_state(self, arrays, metadata)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n_input={self.n_input}, n_exc={self.n_exc}, "
            f"samples_trained={self.samples_trained})"
        )

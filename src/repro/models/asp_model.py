"""The state-of-the-art comparator: ASP (Adaptive Synaptic Plasticity).

Same excitatory + inhibitory architecture as the baseline, but the learning
rule adds recency-modulated learning rates and an activity-dependent weight
leak ("learning to forget", Panda et al. 2018).  The extra spike traces and
per-timestep weight-leak operations are the energy overhead the paper's
motivational study measures (Fig. 1b); the forgetting mechanism is what lets
ASP keep learning new tasks in dynamic scenarios (Fig. 1c).
"""

from __future__ import annotations

from typing import Optional

from repro.core.architecture import build_baseline_network
from repro.core.config import SpikeDynConfig
from repro.estimation.memory import ARCH_BASELINE
from repro.learning.asp import ASPLearningRule
from repro.models.base import DEFAULT_EVAL_BATCH_SIZE, UnsupervisedDigitClassifier
from repro.utils.rng import SeedLike


class ASPModel(UnsupervisedDigitClassifier):
    """State-of-the-art unsupervised SNN classifier trained with ASP.

    Parameters
    ----------
    config:
        Shared hyperparameter bundle (sizes, timing, encoding constants).
    learning_rule:
        Optional pre-built ASP rule; constructed from the configuration when
        omitted.
    tau_leak:
        Weight-leak time constant used when the rule is built here (ms).
    rng:
        Seed or generator for weight initialization (defaults to the
        configuration's seed).
    eval_batch_size:
        Samples advanced per vectorized engine step during evaluation
        (see :class:`~repro.models.base.UnsupervisedDigitClassifier`).
    backend:
        Compute backend (name or instance) executing the network's kernels;
        defaults to the configuration's ``backend`` field.
    """

    def __init__(self, config: SpikeDynConfig, *,
                 learning_rule: Optional[ASPLearningRule] = None,
                 tau_leak: float = 2.0e4,
                 rng: SeedLike = None,
                 eval_batch_size: Optional[int] = DEFAULT_EVAL_BATCH_SIZE,
                 backend=None) -> None:
        rule = learning_rule if learning_rule is not None else ASPLearningRule(
            nu_pre=config.nu_pre,
            nu_post=config.nu_post,
            tau_pre=config.tau_pre,
            tau_post=config.tau_post,
            soft_bounds=config.soft_bounds,
            tau_leak=tau_leak,
        )
        network = build_baseline_network(
            config, learning_rule=rule, rng=rng, name="asp",
            backend=backend,
        )
        super().__init__(config, network, name="asp",
                         eval_batch_size=eval_batch_size)
        self.learning_rule = rule

    def architecture_name(self) -> str:
        return ARCH_BASELINE

"""Reference network models used in the paper's evaluation.

Three models share the same public interface
(:class:`~repro.models.base.UnsupervisedDigitClassifier`):

* :class:`~repro.models.diehl_cook.DiehlCookModel` — the **baseline** [2]:
  excitatory + inhibitory layers trained with per-spike-event pairwise STDP;
* :class:`~repro.models.asp_model.ASPModel` — the **state-of-the-art** [7]:
  the same architecture trained with Adaptive Synaptic Plasticity;
* :class:`~repro.models.spikedyn_model.SpikeDynModel` — the paper's
  contribution: direct lateral inhibition plus the SpikeDyn continual and
  unsupervised learning rule.
"""

from repro.models.asp_model import ASPModel
from repro.models.base import UnsupervisedDigitClassifier
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel

__all__ = [
    "ASPModel",
    "DiehlCookModel",
    "SpikeDynModel",
    "UnsupervisedDigitClassifier",
]

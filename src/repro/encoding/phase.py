"""Phase coding.

Spikes are emitted periodically, at a phase within each oscillation cycle
determined by the input intensity: strong inputs fire early in the cycle,
weak inputs late (Kayser et al., cited in the paper's Section II).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import SpikeEncoder
from repro.utils.validation import check_positive


class PhaseEncoder(SpikeEncoder):
    """Encode intensities as per-cycle spike phases.

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.
    period:
        Length of one oscillation cycle in milliseconds.
    epsilon:
        Intensities below this threshold never spike.
    """

    def __init__(self, duration: float = 350.0, dt: float = 1.0,
                 *, period: float = 10.0, epsilon: float = 1e-3) -> None:
        super().__init__(duration, dt)
        self.period = check_positive(period, "period")
        if self.period < self.dt:
            raise ValueError(
                f"period ({period}) must be at least one timestep ({dt})"
            )
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    @property
    def steps_per_cycle(self) -> int:
        """Number of timesteps in one oscillation cycle."""
        return max(1, int(round(self.period / self.dt)))

    def encode(self, values: np.ndarray) -> np.ndarray:
        intensities = self._normalize_intensities(values)
        steps = self.timesteps
        cycle = self.steps_per_cycle
        # Strong inputs fire at the start of each cycle, weak ones at the end.
        phase = np.round((1.0 - intensities) * (cycle - 1)).astype(int)
        train = np.zeros((steps, intensities.size), dtype=bool)
        active = np.flatnonzero(intensities >= self.epsilon)
        for start in range(0, steps, cycle):
            spike_steps = start + phase[active]
            in_range = spike_steps < steps
            train[spike_steps[in_range], active[in_range]] = True
        return train

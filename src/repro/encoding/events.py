"""Event-stream encoders for long-horizon, low-rate workloads.

The grid encoders in this package return dense ``(timesteps, n)`` boolean
trains — fine at the paper's 350 ms presentations, wasteful for the
workloads the event-driven engine targets: multi-second horizons where
almost every bin is empty.  The encoders here produce the native sparse
representation (:class:`~repro.snn.events.EventStream`) directly, in
O(events) rather than O(grid):

:class:`PoissonEventStreamEncoder`
    Uniform low-rate Poisson coding over a long horizon — the rate-coded
    analogue of :class:`~repro.encoding.rate.PoissonRateEncoder`, emitting
    events instead of a grid.
:class:`DVSEventStreamEncoder`
    DVS-style burst structure: activity arrives in a few short global
    bursts (an event camera seeing intermittent motion) separated by long
    silent gaps — the regime where analytic gap-skipping pays off most.

Every event-stream encoder is still a :class:`~repro.encoding.base.
SpikeEncoder`: :meth:`~EventStreamEncoder.encode` densifies the stream, so
the grid engine, the models, and every existing pipeline accept these
encoders unchanged, while event-aware callers use
:meth:`~EventStreamEncoder.encode_events` and skip the grid entirely.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.encoding.base import SpikeEncoder
from repro.snn.events import EventStream
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive_int


class EventStreamEncoder(SpikeEncoder):
    """Base class for encoders that emit :class:`EventStream` natively.

    Subclasses implement :meth:`encode_events`; :meth:`encode` is derived
    from it by densification, so every event-stream encoder remains a
    drop-in :class:`~repro.encoding.base.SpikeEncoder`.
    """

    def encode_events(self, values: np.ndarray) -> EventStream:
        """Encode an intensity vector/image into an event stream."""
        raise NotImplementedError

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Dense view of :meth:`encode_events` (grid-engine compatibility)."""
        return self.encode_events(values).to_dense()

    def encode_events_batch(self, batch) -> List[EventStream]:
        """Encode a sequence of inputs into one stream each, in order."""
        streams = [self.encode_events(values) for values in batch]
        if not streams:
            raise ValueError("cannot encode an empty batch")
        return streams


class PoissonEventStreamEncoder(EventStreamEncoder):
    """Low-rate Poisson coding emitted directly as events.

    Each input intensity maps to a Bernoulli-per-bin firing probability
    exactly as in :class:`~repro.encoding.rate.PoissonRateEncoder`, but the
    events are sampled channel by channel — a binomial event count followed
    by an unordered draw of bin indices, which is distributionally
    identical to thresholding a dense uniform grid without ever
    materializing one.

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.  The default
        horizon is long (2000 ms) because that is the regime this encoder
        exists for.
    max_rate:
        Firing rate (Hz) assigned to the maximum intensity.  The default
        (5 Hz) keeps the stream at sub-1 % density on the default horizon.
    rng:
        Seed or generator for the event draws.
    """

    def __init__(self, duration: float = 2000.0, dt: float = 1.0, *,
                 max_rate: float = 5.0, rng: SeedLike = None) -> None:
        super().__init__(duration, dt)
        self.max_rate = check_non_negative(max_rate, "max_rate")
        self._rng = ensure_rng(rng)

    def spike_probabilities(self, values: np.ndarray) -> np.ndarray:
        """Per-bin spike probability of each channel."""
        intensities = self._normalize_intensities(values)
        return np.clip(intensities * self.max_rate * (self.dt / 1000.0),
                       0.0, 1.0)

    def encode_events(self, values: np.ndarray) -> EventStream:
        probabilities = self.spike_probabilities(values)
        timesteps = self.timesteps
        counts = self._rng.binomial(timesteps, probabilities)
        times: List[np.ndarray] = []
        channels: List[np.ndarray] = []
        for channel, count in enumerate(counts):
            if not count:
                continue
            times.append(self._rng.choice(timesteps, size=int(count),
                                          replace=False))
            channels.append(np.full(int(count), channel, dtype=np.int64))
        if times:
            all_times = np.concatenate(times)
            all_channels = np.concatenate(channels)
        else:
            all_times = np.zeros(0, dtype=np.int64)
            all_channels = np.zeros(0, dtype=np.int64)
        return EventStream(times=all_times, channels=all_channels,
                           n_steps=timesteps,
                           n_channels=int(probabilities.size))


class DVSEventStreamEncoder(EventStreamEncoder):
    """Burst-structured event coding (event-camera style).

    The horizon is divided into ``n_bursts`` evenly spaced activity windows
    of ``burst_steps`` bins each; within a window every channel fires per
    bin with probability ``intensity * max_probability``, and outside the
    windows the stream is completely silent.  Long silent gaps between
    bursts are what the event engine's analytic advance skips wholesale.

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.
    n_bursts:
        Number of activity windows spread evenly across the horizon.
    burst_steps:
        Length of each activity window in bins.
    max_probability:
        Per-bin firing probability of the maximum-intensity channel inside
        a burst window.
    rng:
        Seed or generator for the participation draws.
    """

    def __init__(self, duration: float = 1200.0, dt: float = 1.0, *,
                 n_bursts: int = 6, burst_steps: int = 8,
                 max_probability: float = 0.1, rng: SeedLike = None) -> None:
        super().__init__(duration, dt)
        self.n_bursts = check_positive_int(n_bursts, "n_bursts")
        self.burst_steps = check_positive_int(burst_steps, "burst_steps")
        if not 0.0 <= max_probability <= 1.0:
            raise ValueError(
                f"max_probability must lie in [0, 1], got {max_probability}"
            )
        self.max_probability = float(max_probability)
        if self.n_bursts * self.burst_steps > self.timesteps:
            raise ValueError(
                f"{n_bursts} bursts of {burst_steps} steps do not fit in "
                f"{self.timesteps} timesteps"
            )
        self._rng = ensure_rng(rng)

    def burst_starts(self) -> np.ndarray:
        """First bin of each activity window."""
        spacing = self.timesteps // self.n_bursts
        return np.arange(self.n_bursts, dtype=np.int64) * spacing

    def encode_events(self, values: np.ndarray) -> EventStream:
        intensities = self._normalize_intensities(values)
        probabilities = intensities * self.max_probability
        times: List[np.ndarray] = []
        channels: List[np.ndarray] = []
        for start in self.burst_starts():
            draws = self._rng.random((self.burst_steps, probabilities.size))
            offset, channel = np.nonzero(draws < probabilities[None, :])
            times.append(start + offset.astype(np.int64))
            channels.append(channel.astype(np.int64))
        return EventStream(times=np.concatenate(times),
                           channels=np.concatenate(channels),
                           n_steps=self.timesteps,
                           n_channels=int(probabilities.size))

"""Burst coding.

Each input element emits a short burst of spikes whose length grows with the
input intensity; stronger inputs produce longer, denser bursts (Park et al.,
DAC 2019, cited in the paper's Section II).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import SpikeEncoder
from repro.utils.validation import check_positive_int


class BurstEncoder(SpikeEncoder):
    """Encode intensities as bursts of consecutive spikes.

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.
    max_burst_length:
        Number of spikes in the burst emitted for a maximum-intensity input.
    inter_spike_interval:
        Gap between consecutive spikes of a burst, in timesteps.
    epsilon:
        Intensities below this threshold never spike.
    """

    def __init__(self, duration: float = 350.0, dt: float = 1.0,
                 *, max_burst_length: int = 5, inter_spike_interval: int = 2,
                 epsilon: float = 1e-3) -> None:
        super().__init__(duration, dt)
        self.max_burst_length = check_positive_int(max_burst_length, "max_burst_length")
        self.inter_spike_interval = check_positive_int(
            inter_spike_interval, "inter_spike_interval"
        )
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def burst_lengths(self, values: np.ndarray) -> np.ndarray:
        """Number of spikes in each element's burst."""
        intensities = self._normalize_intensities(values)
        lengths = np.ceil(intensities * self.max_burst_length).astype(int)
        lengths[intensities < self.epsilon] = 0
        return lengths

    def encode(self, values: np.ndarray) -> np.ndarray:
        lengths = self.burst_lengths(values)
        steps = self.timesteps
        train = np.zeros((steps, lengths.size), dtype=bool)
        for element, length in enumerate(lengths):
            if length <= 0:
                continue
            spike_steps = np.arange(length) * self.inter_spike_interval
            spike_steps = spike_steps[spike_steps < steps]
            train[spike_steps, element] = True
        return train

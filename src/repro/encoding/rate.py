"""Poisson rate coding.

Each input intensity (e.g. a pixel value) is mapped to the firing rate of an
independent Poisson process; brighter pixels spike more often.  This is the
coding scheme used by the paper ("we employed the rate coding to convert each
pixel of an image into a Poisson-distributed spike train", Section IV).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import SpikeEncoder
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative


class PoissonRateEncoder(SpikeEncoder):
    """Encode intensities as independent Poisson spike trains.

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.
    max_rate:
        Firing rate (Hz) assigned to the maximum intensity.
    intensity_scale:
        Additional multiplicative factor applied to all rates; Diehl & Cook
        style pipelines raise this value when an input elicits too few
        output spikes.
    rng:
        Seed or generator for the Poisson draws.
    """

    def __init__(
        self,
        duration: float = 350.0,
        dt: float = 1.0,
        *,
        max_rate: float = 63.75,
        intensity_scale: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(duration, dt)
        self.max_rate = check_non_negative(max_rate, "max_rate")
        self.intensity_scale = check_non_negative(intensity_scale, "intensity_scale")
        self._rng = ensure_rng(rng)

    def spike_probabilities(self, values: np.ndarray) -> np.ndarray:
        """Per-timestep spike probability for each input element."""
        intensities = self._normalize_intensities(values)
        rates_hz = intensities * self.max_rate * self.intensity_scale
        # Probability of at least one spike in a dt-millisecond bin.
        probabilities = rates_hz * (self.dt / 1000.0)
        return np.clip(probabilities, 0.0, 1.0)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Return a boolean spike train of shape ``(timesteps, n_input)``."""
        probabilities = self.spike_probabilities(values)
        draws = self._rng.random((self.timesteps, probabilities.size))
        return draws < probabilities[None, :]

    def encode_batch(self, batch) -> np.ndarray:
        """Return a boolean spike train of shape ``(B, timesteps, n_input)``.

        One vectorized uniform draw covers the whole batch.  numpy fills the
        ``(B, timesteps, n)`` buffer in C order, which is exactly the order a
        sequential :meth:`encode` loop consumes the generator in, so the
        batched trains are bit-for-bit identical to sequential encoding.
        """
        probabilities = [self.spike_probabilities(values) for values in batch]
        if not probabilities:
            raise ValueError("cannot encode an empty batch")
        stacked = np.stack(probabilities)
        draws = self._rng.random((stacked.shape[0], self.timesteps, stacked.shape[1]))
        return draws < stacked[:, None, :]

"""Common interface for spike encoders."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_positive_int


class SpikeEncoder:
    """Base class for encoders that map an intensity vector to a spike train.

    Parameters
    ----------
    duration:
        Presentation time of one sample in milliseconds.
    dt:
        Simulation timestep in milliseconds.

    Subclasses implement :meth:`encode`, returning a boolean array of shape
    ``(timesteps, n_input)`` where ``timesteps = round(duration / dt)``.
    """

    def __init__(self, duration: float = 350.0, dt: float = 1.0) -> None:
        self.duration = check_positive(duration, "duration")
        self.dt = check_positive(dt, "dt")
        if self.duration < self.dt:
            raise ValueError(
                f"duration ({duration}) must be at least one timestep ({dt})"
            )

    @property
    def timesteps(self) -> int:
        """Number of timesteps in one encoded presentation."""
        return int(round(self.duration / self.dt))

    @staticmethod
    def _normalize_intensities(values: np.ndarray) -> np.ndarray:
        """Flatten and scale an arbitrary non-negative input into [0, 1]."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("cannot encode an empty input")
        if np.any(values < 0):
            raise ValueError("input intensities must be non-negative")
        peak = values.max()
        if peak > 0:
            values = values / peak
        return values

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode an intensity vector/image into a boolean spike train."""
        raise NotImplementedError

    def encode_batch(self, batch) -> np.ndarray:
        """Encode a sequence of inputs into a ``(B, timesteps, n)`` train.

        The default implementation encodes each input in order with
        :meth:`encode` and stacks the results, so it consumes any internal
        random state exactly as a sequential loop would.  Subclasses may
        override it with a vectorized implementation, provided the output
        stays bit-for-bit identical to the sequential loop.
        """
        trains = [self.encode(values) for values in batch]
        if not trains:
            raise ValueError("cannot encode an empty batch")
        return np.stack(trains)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(duration={self.duration}, dt={self.dt})"

"""Spike encoders that convert static inputs into spike trains.

The paper uses Poisson rate coding (Section II / IV); the remaining coding
schemes it cites (temporal/latency, rank-order, phase, and burst coding) are
also provided so that downstream users can experiment with alternative
front-ends without changing the rest of the pipeline.  The event-stream
family (:mod:`repro.encoding.events`) emits the engine's native sparse
:class:`~repro.snn.events.EventStream` representation directly, for the
long-horizon low-rate workloads served by ``Network.run_events``.
"""

from repro.encoding.base import SpikeEncoder
from repro.encoding.burst import BurstEncoder
from repro.encoding.events import (
    DVSEventStreamEncoder,
    EventStreamEncoder,
    PoissonEventStreamEncoder,
)
from repro.encoding.phase import PhaseEncoder
from repro.encoding.rank_order import RankOrderEncoder
from repro.encoding.rate import PoissonRateEncoder
from repro.encoding.temporal import LatencyEncoder

__all__ = [
    "BurstEncoder",
    "DVSEventStreamEncoder",
    "EventStreamEncoder",
    "LatencyEncoder",
    "PhaseEncoder",
    "PoissonEventStreamEncoder",
    "PoissonRateEncoder",
    "RankOrderEncoder",
    "SpikeEncoder",
]

"""Latency (time-to-first-spike) coding.

Stronger inputs spike earlier; each input element emits exactly one spike
within the presentation window (or none, if its intensity is zero).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import SpikeEncoder


class LatencyEncoder(SpikeEncoder):
    """Encode intensities as single spikes whose latency decreases with
    intensity (temporal coding, cited in the paper's Section II).

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.
    epsilon:
        Intensities below this threshold produce no spike at all.
    """

    def __init__(self, duration: float = 350.0, dt: float = 1.0,
                 *, epsilon: float = 1e-3) -> None:
        super().__init__(duration, dt)
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def spike_times(self, values: np.ndarray) -> np.ndarray:
        """Timestep index of each element's spike (-1 means no spike)."""
        intensities = self._normalize_intensities(values)
        steps = self.timesteps
        # Intensity 1.0 -> step 0; intensity -> 0 approaches the end of the window.
        times = np.round((1.0 - intensities) * (steps - 1)).astype(int)
        times[intensities < self.epsilon] = -1
        return times

    def encode(self, values: np.ndarray) -> np.ndarray:
        times = self.spike_times(values)
        train = np.zeros((self.timesteps, times.size), dtype=bool)
        valid = times >= 0
        train[times[valid], np.flatnonzero(valid)] = True
        return train

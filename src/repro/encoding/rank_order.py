"""Rank-order coding.

Input elements spike exactly once, ordered by decreasing intensity: the
strongest input spikes in the first timestep, the second strongest in the
second, and so on (Thorpe & Gautrais, cited in the paper's Section II).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import SpikeEncoder


class RankOrderEncoder(SpikeEncoder):
    """Encode intensities by their rank; earlier spikes mean stronger inputs.

    Parameters
    ----------
    duration, dt:
        Presentation window and timestep in milliseconds.
    epsilon:
        Intensities below this threshold do not spike.
    """

    def __init__(self, duration: float = 350.0, dt: float = 1.0,
                 *, epsilon: float = 1e-3) -> None:
        super().__init__(duration, dt)
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def spike_order(self, values: np.ndarray) -> np.ndarray:
        """Rank of each element (0 = first to spike, -1 = never spikes)."""
        intensities = self._normalize_intensities(values)
        order = np.full(intensities.size, -1, dtype=int)
        active = np.flatnonzero(intensities >= self.epsilon)
        # Sort active elements by decreasing intensity (stable for ties).
        ranked = active[np.argsort(-intensities[active], kind="stable")]
        order[ranked] = np.arange(ranked.size)
        return order

    def encode(self, values: np.ndarray) -> np.ndarray:
        order = self.spike_order(values)
        steps = self.timesteps
        train = np.zeros((steps, order.size), dtype=bool)
        valid = (order >= 0) & (order < steps)
        train[order[valid], np.flatnonzero(valid)] = True
        return train

"""Content-addressed on-disk cache of completed job results.

Layout: one JSON record per job under ``<root>/<key[:2]>/<key>.json``, where
``key`` is the job's SHA-256 content key (driver, scale, seed, overrides,
package version — see :meth:`repro.runner.jobs.JobSpec.key`).  The two-level
fan-out keeps directories small on full-suite sweeps.

Invalidation is purely key-based: changing any key ingredient (including
bumping the package version) addresses a different entry, and stale entries
are simply never read again.  ``repro cache clear`` removes them.

Records are written atomically (temp file + ``os.replace``), so a run killed
mid-write never leaves a truncated entry — a corrupt record is treated as a
miss and deleted on the next read.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.utils.serialization import atomic_write_json

PathLike = Union[str, Path]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """The default cache directory.

    ``$REPRO_CACHE_DIR`` if set, else ``$XDG_CACHE_HOME/repro/results``,
    else ``~/.cache/repro/results``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


class ResultCache:
    """Content-addressed store of completed job records.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_root`.  Created
        lazily on the first write.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def path_for(self, key: str) -> Path:
        """Where the record of ``key`` lives (whether or not it exists)."""
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record of ``key``, or ``None`` on miss.

        A corrupt (truncated / non-JSON / non-dict) record counts as a miss
        and is deleted so it cannot shadow a future write.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a partially-written binary record raises.
            self.delete(key)
            return None
        if not isinstance(record, dict):
            self.delete(key)
            return None
        return record

    def put(self, key: str, record: Dict[str, Any]) -> Path:
        """Atomically store ``record`` under ``key`` and return its path."""
        return atomic_write_json(record, self.path_for(key))

    def delete(self, key: str) -> bool:
        """Remove the record of ``key``; ``True`` if one was removed.

        Deletion failures (missing entry, read-only cache directory) report
        ``False`` instead of raising, so a corrupt-but-undeletable record
        degrades to a persistent cache miss rather than aborting the run.
        """
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def iter_entries(self) -> Iterator[Tuple[str, Path]]:
        """Yield ``(key, path)`` for every stored record."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                # Skip in-flight temp files (".tmp-*.json") from writers that
                # died between mkstemp and the atomic rename, and foreign
                # files whose stem could never be a key path_for accepts.
                if path.name.startswith(".") or len(path.stem) < 3:
                    continue
                yield path.stem, path

    def clear(self) -> int:
        """Delete every record and return how many were removed.

        Also sweeps orphaned ``.tmp-*.json`` files left by writers that were
        killed between ``mkstemp`` and the atomic rename (they are not
        counted as removed records).
        """
        removed = 0
        for _, path in list(self.iter_entries()):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        if self.root.is_dir():
            for stray in self.root.glob("*/.tmp-*.json"):
                try:
                    stray.unlink()
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, Any]:
        """Summary of the cache: entry count, total bytes, root path."""
        entries = 0
        total_bytes = 0
        for _, path in self.iter_entries():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {"root": str(self.root), "entries": entries, "bytes": total_bytes}

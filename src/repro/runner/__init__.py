"""Parallel experiment orchestration with content-addressed result caching.

The runner shards a reproduction run into independent jobs (driver x scale x
seed), executes them across worker processes with crash isolation and
per-job timeouts, and records every outcome in a resumable run manifest.
Completed results are stored in a content-addressed on-disk cache keyed by
the job's full content (driver, scale, seed, overrides, package version), so
re-runs skip finished work.

========================  ===================================================
Module                    Responsibility
========================  ===================================================
``jobs``                  :class:`JobSpec` and the content-addressed job key
``cache``                 :class:`ResultCache` (on-disk, atomic writes)
``manifest``              :class:`RunManifest` / :class:`JobRecord`
``worker``                worker-process entry point and driver resolution
``scheduler``             :class:`ParallelRunner` process-pool scheduling
``suite``                 full-suite job construction from the registry
``testing``               crash/hang fixtures for the scheduler tests
========================  ===================================================
"""

from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_root
from repro.runner.jobs import JobSpec, scale_from_dict, scale_to_dict
from repro.runner.manifest import (
    SOURCE_CACHE,
    SOURCE_MANIFEST,
    SOURCE_RUN,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    JobRecord,
    RunManifest,
)
from repro.runner.scheduler import ParallelRunner, run_jobs
from repro.runner.suite import (
    SUITE_OVERRIDES,
    build_suite,
    default_scale_overrides,
    scales_for_preset,
)
from repro.runner.worker import execute_payload, resolve_runner

__all__ = [
    "CACHE_DIR_ENV",
    "JobRecord",
    "JobSpec",
    "ParallelRunner",
    "ResultCache",
    "RunManifest",
    "SOURCE_CACHE",
    "SOURCE_MANIFEST",
    "SOURCE_RUN",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "SUITE_OVERRIDES",
    "build_suite",
    "default_cache_root",
    "default_scale_overrides",
    "execute_payload",
    "resolve_runner",
    "run_jobs",
    "scale_from_dict",
    "scale_to_dict",
    "scales_for_preset",
]

"""Job specifications and content-addressed job keys.

A :class:`JobSpec` is one independent unit of work of a reproduction run: one
experiment driver at one :class:`~repro.experiments.common.ExperimentScale`
with one seed and optional driver overrides.  Its :meth:`JobSpec.key` is a
SHA-256 digest of the canonical JSON payload — driver name, every scale
field (including the seed and the compute backend), the overrides, and the
package version — so two jobs share a cache entry exactly when they would
compute the same report.  The backend is keyed deliberately even though
cross-backend results are statistically equivalent: cache entries must be
attributable to the exact kernels that produced them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import repro
from repro.experiments.common import ExperimentScale

#: ExperimentScale fields that are tuples and come back from JSON as lists.
_SCALE_TUPLE_FIELDS: Tuple[str, ...] = (
    "network_sizes",
    "class_sequence",
    "nondynamic_checkpoints",
)


def scale_to_dict(scale: ExperimentScale) -> Dict[str, Any]:
    """JSON-safe dictionary of every scale field."""
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in asdict(scale).items()
    }


def scale_from_dict(data: Mapping[str, Any]) -> ExperimentScale:
    """Rebuild an :class:`ExperimentScale` from :func:`scale_to_dict` output."""
    fields = dict(data)
    for name in _SCALE_TUPLE_FIELDS:
        if name in fields:
            fields[name] = tuple(fields[name])
    return ExperimentScale(**fields)


@dataclass(frozen=True)
class JobSpec:
    """One independent work unit of a reproduction run.

    Attributes
    ----------
    experiment:
        Registry name of the driver (``"fig5"``), or — for testing and ad-hoc
        workloads — a ``"module:callable"`` reference resolved by the worker.
    scale:
        Full experiment scale, including the job's seed (``scale.seed``).
    overrides:
        JSON-serializable keyword arguments forwarded to the driver.  They
        are part of the cache key, so two jobs with different overrides never
        share a cache entry.
    output:
        Report filename stem (``<output>.txt``); defaults to a sanitized
        version of ``experiment``.
    timeout:
        Per-job wall-clock budget in seconds (``None`` = no limit).  Not part
        of the cache key: the budget changes when a job is killed, not what
        it computes.
    """

    experiment: str
    scale: ExperimentScale
    overrides: Mapping[str, Any] = field(default_factory=dict)
    output: Optional[str] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("experiment must not be empty")
        try:
            json.dumps(dict(self.overrides), sort_keys=True)
        except TypeError as error:
            raise TypeError(
                f"overrides of job {self.experiment!r} must be JSON-serializable: {error}"
            ) from None

    @property
    def seed(self) -> int:
        """The seed every stochastic component of this job derives from."""
        return self.scale.seed

    @property
    def backend(self) -> str:
        """Compute backend this job's models run on (part of the cache key)."""
        return self.scale.backend

    @property
    def output_stem(self) -> str:
        """Report filename stem (without extension)."""
        if self.output:
            return self.output
        return self.experiment.replace(":", "_").replace("-", "_")

    def payload(self) -> Dict[str, Any]:
        """Canonical JSON-safe description of *what this job computes*."""
        return {
            "experiment": self.experiment,
            "scale": scale_to_dict(self.scale),
            "seed": self.seed,
            "overrides": dict(self.overrides),
            "version": repro.__version__,
        }

    def key(self) -> str:
        """Content-addressed job key (SHA-256 hex digest of the payload)."""
        canonical = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-safe serialization (payload plus scheduling fields)."""
        data = self.payload()
        data["output"] = self.output_stem
        data["timeout"] = self.timeout
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            experiment=data["experiment"],
            scale=scale_from_dict(data["scale"]),
            overrides=dict(data.get("overrides", {})),
            output=data.get("output"),
            timeout=data.get("timeout"),
        )

    def with_seed(self, seed: int) -> "JobSpec":
        """Copy of this job reseeded to ``seed``."""
        return JobSpec(
            experiment=self.experiment,
            scale=self.scale.replace(seed=seed),
            overrides=dict(self.overrides),
            output=self.output,
            timeout=self.timeout,
        )

"""Run manifest: the durable record of one reproduction run.

The scheduler appends the outcome of every job to a single JSON manifest
(atomic rewrite after each completion), so an interrupted run can be resumed:
jobs whose manifest status is ``completed`` are skipped, everything else
(missing, ``failed``, ``timeout``) is (re-)executed.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import repro
from repro.runner.jobs import JobSpec
from repro.utils.serialization import atomic_write_json

PathLike = Union[str, Path]

#: Terminal job states recorded in the manifest.
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

#: Where a completed result came from.
SOURCE_RUN = "run"
SOURCE_CACHE = "cache"
SOURCE_MANIFEST = "manifest"


@dataclass
class JobRecord:
    """Outcome of one job, as stored in the manifest and the result cache."""

    key: str
    experiment: str
    output: str
    status: str
    seed: int = 0
    elapsed: float = 0.0
    source: str = SOURCE_RUN
    report: Optional[str] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{name: value for name, value in data.items() if name in known})

    @property
    def ok(self) -> bool:
        return self.status == STATUS_COMPLETED


class RunManifest:
    """JSON manifest of a run, written atomically after every job.

    Parameters
    ----------
    path:
        Manifest file location (conventionally ``<out>/manifest.json``).
    metadata:
        Run-level metadata stored alongside the job records (scale preset,
        worker count, ...).
    """

    def __init__(self, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.metadata.setdefault("version", repro.__version__)
        self.metadata.setdefault("created", time.strftime("%Y-%m-%dT%H:%M:%S"))
        self.records: Dict[str, JobRecord] = {}

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        """Read a manifest back from disk.

        Raises
        ------
        FileNotFoundError
            If ``path`` does not exist.
        ValueError
            If the file is not a manifest.
        """
        path = Path(path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "jobs" not in data:
            raise ValueError(f"{path} is not a run manifest")
        manifest = cls(path, metadata=data.get("metadata", {}))
        for key, record in data["jobs"].items():
            manifest.records[key] = JobRecord.from_dict(record)
        return manifest

    @classmethod
    def load_or_create(
        cls, path: PathLike, metadata: Optional[Dict[str, Any]] = None
    ) -> "RunManifest":
        """Load an existing manifest for resumption, or start a fresh one.

        On load, ``metadata`` is merged over the stored metadata so the
        manifest records the resuming run's parameters (seed, workers, ...)
        rather than stale values from the interrupted run; the original
        ``created`` timestamp survives unless explicitly overridden.
        """
        try:
            manifest = cls.load(path)
        except (FileNotFoundError, ValueError, json.JSONDecodeError):
            return cls(path, metadata=metadata)
        manifest.metadata.update(metadata or {})
        return manifest

    def update(self, record: JobRecord, save: bool = True) -> None:
        """Store ``record`` (and by default persist the manifest)."""
        self.records[record.key] = record
        if save:
            self.save()

    def completed_keys(self) -> List[str]:
        """Keys of every job recorded as completed."""
        return [key for key, record in self.records.items() if record.ok]

    def is_complete(self, key: str) -> bool:
        record = self.records.get(key)
        return record is not None and record.ok

    def pending_jobs(self, jobs: Iterable[JobSpec]) -> List[JobSpec]:
        """The subset of ``jobs`` a resumed run still has to execute.

        Completed jobs are skipped; failed, timed-out, and never-attempted
        jobs are returned for (re-)execution.
        """
        return [job for job in jobs if not self.is_complete(job.key())]

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over every record."""
        totals: Dict[str, int] = {}
        for record in self.records.values():
            totals[record.status] = totals.get(record.status, 0) + 1
        return totals

    def to_dict(self) -> Dict[str, Any]:
        jobs: Dict[str, Any] = {}
        for key, record in sorted(self.records.items()):
            data = record.to_dict()
            # Report text lives in the result cache and the report files; the
            # manifest only tracks outcomes, so keep it lightweight.
            data.pop("report", None)
            jobs[key] = data
        return {"metadata": self.metadata, "jobs": jobs}

    def save(self) -> Path:
        """Atomically write the manifest to :attr:`path`."""
        return atomic_write_json(self.to_dict(), self.path)

"""Full-suite job construction.

Maps every registered experiment driver to one :class:`JobSpec`, picking the
scale appropriate to the driver's family (accuracy protocols, energy
estimation, hyperparameter sweeps) — the same mapping
``scripts/run_all_experiments.py`` has always used, now in library form so
the CLI, the script, and the tests build identical suites.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.common import ExperimentScale
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec
from repro.runner.jobs import JobSpec

#: Driver overrides applied by the full-suite run (cheap-but-representative
#: settings inherited from the historical ``run_all_experiments.py``).
SUITE_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "fig5": {"actual_run_samples": 2},
    "fig4": {"include_accuracy_profile": False},
    "alg1": {"n_add": 50},
}


def scales_for_preset(
    preset: str, seed: int = 0, paper_networks: bool = False, backend: str = "dense"
) -> Dict[str, ExperimentScale]:
    """The per-family scales of one named preset (``tiny``/``small``/``paper``).

    ``tiny`` uses CI-sized settings for every family.  ``small`` pairs the
    minutes-scale accuracy settings with 28x28 energy estimation (N200/N400
    when ``paper_networks`` is set, N100/N200 otherwise), matching the scales
    the EXPERIMENTS.md record was produced at.  ``paper`` uses the paper's
    own sizes throughout.  ``backend`` selects the compute backend of every
    scale (and therefore enters every job's cache key).
    """
    if preset == "tiny":
        accuracy = ExperimentScale.tiny(seed=seed, backend=backend)
        energy = ExperimentScale.tiny(
            image_size=28, network_sizes=(50, 100), t_sim=50.0, seed=seed, backend=backend
        )
    elif preset == "small":
        accuracy = ExperimentScale.small(seed=seed, backend=backend)
        sizes = (200, 400) if paper_networks else (100, 200)
        energy = ExperimentScale.tiny(
            image_size=28, network_sizes=sizes, t_sim=100.0, seed=seed, backend=backend
        )
    elif preset == "paper":
        accuracy = ExperimentScale.paper(seed=seed, backend=backend)
        energy = ExperimentScale.paper(seed=seed, backend=backend)
    else:
        raise ValueError(f"unknown scale preset {preset!r}; known: tiny, small, paper")

    # The sweep drivers (fig6, ablation) have always run on the full digit
    # set with the largest accuracy network, at every preset.
    sweep = accuracy.replace(
        network_sizes=(max(accuracy.network_sizes),),
        class_sequence=tuple(range(10)),
    )
    return {"accuracy": accuracy, "energy": energy, "sweep": sweep, "static": accuracy}


def scale_for(spec: ExperimentSpec, scales: Mapping[str, ExperimentScale]) -> ExperimentScale:
    """The scale one driver runs at within a full-suite run."""
    return scales[spec.family]


def default_scale_overrides(
    preset: str, scales: Mapping[str, ExperimentScale]
) -> Dict[str, ExperimentScale]:
    """Per-driver scale exceptions every full-suite entry point applies.

    At the ``small`` and ``paper`` presets the motivation study (fig1) has
    always run the accuracy protocol on the energy experiments' image size
    and network sizes; at ``tiny`` it uses the plain accuracy scale.
    """
    if preset == "tiny":
        return {}
    accuracy, energy = scales["accuracy"], scales["energy"]
    return {
        "fig1": accuracy.replace(
            network_sizes=energy.network_sizes,
            image_size=energy.image_size,
            t_sim=energy.t_sim,
        )
    }


def build_suite(
    scales: Mapping[str, ExperimentScale],
    *,
    experiments: Optional[Sequence[str]] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    scale_overrides: Optional[Mapping[str, ExperimentScale]] = None,
    timeout: Optional[float] = None,
) -> List[JobSpec]:
    """One :class:`JobSpec` per selected driver, in registry order.

    Parameters
    ----------
    scales:
        ``{family: scale}`` mapping (see :func:`scales_for_preset`).
    experiments:
        Driver names to include; defaults to the full registry.
    overrides:
        ``{driver: {kwarg: value}}`` merged over :data:`SUITE_OVERRIDES`.
    scale_overrides:
        ``{driver: scale}`` exceptions to the family mapping (e.g. the
        motivation study's hybrid accuracy-protocol-at-energy-sizes scale).
    timeout:
        Per-job wall-clock budget in seconds applied to every job.
    """
    selected = list(experiments) if experiments is not None else list(EXPERIMENTS)
    merged: Dict[str, Dict[str, Any]] = {
        name: dict(value) for name, value in SUITE_OVERRIDES.items()
    }
    for name, value in (overrides or {}).items():
        merged.setdefault(name, {}).update(value)

    jobs: List[JobSpec] = []
    for name in selected:
        spec = EXPERIMENTS.get(name)
        if spec is None:
            known = ", ".join(EXPERIMENTS)
            raise KeyError(f"unknown experiment {name!r}; known experiments: {known}")
        if scale_overrides and name in scale_overrides:
            scale = scale_overrides[name]
        else:
            scale = scale_for(spec, scales)
        for unit in spec.job_units(scale):
            jobs.append(
                JobSpec(
                    experiment=unit["experiment"],
                    scale=scale,
                    overrides=merged.get(name, {}),
                    output=spec.output,
                    timeout=timeout,
                )
            )
    return jobs

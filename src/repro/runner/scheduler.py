"""Process-pool scheduler with crash isolation and per-job timeouts.

The scheduler runs one OS process per job (``spawn`` start method, so workers
inherit no parent state and results are independent of fork timing), keeping
at most ``workers`` alive at a time.  Per-process execution gives the two
properties a long reproduction run needs:

* **crash isolation** — a segfaulting or raising job is recorded as
  ``failed`` in the manifest and the remaining jobs keep running;
* **hard timeouts** — a hung job is terminated (then killed) when its
  wall-clock budget expires and recorded as ``timeout``.

Completed records are stored in the content-addressed
:class:`~repro.runner.cache.ResultCache` and appended to the
:class:`~repro.runner.manifest.RunManifest`, so an immediate re-run is served
from cache and an interrupted run resumes from the manifest.

``workers=0`` executes jobs in-process (sequentially, no subprocesses) with
identical cache/manifest semantics — drivers seed every stochastic component
from ``scale.seed``, so the parallel and in-process paths produce
byte-identical reports.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.observability.ledger import RunLedger, job_entry
from repro.observability.runmetrics import RunnerMetrics
from repro.observability.structlog import get_struct_logger
from repro.observability.tracing import (
    TraceContext,
    record_span,
    span,
    trace_id_for_job,
    trace_scope,
)
from repro.runner.cache import ResultCache
from repro.runner.jobs import JobSpec
from repro.runner.manifest import (
    SOURCE_CACHE,
    SOURCE_MANIFEST,
    SOURCE_RUN,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    JobRecord,
    RunManifest,
)
from repro.runner.worker import execute_payload, worker_main

_log = get_struct_logger("runner.scheduler")

#: How often the scheduler polls running workers, in seconds.
POLL_INTERVAL = 0.05

#: Grace period between SIGTERM and SIGKILL for timed-out workers.
TERMINATE_GRACE = 1.0

EventCallback = Callable[[str, JobRecord], None]


@dataclass
class _Running:
    """Book-keeping of one live worker process."""

    job: JobSpec
    key: str
    process: multiprocessing.process.BaseProcess
    channel: "multiprocessing.queues.Queue"
    started: float

    def deadline_passed(self, now: float) -> bool:
        return self.job.timeout is not None and now - self.started > self.job.timeout


class ParallelRunner:
    """Schedule :class:`JobSpec` lists across worker processes.

    Parameters
    ----------
    workers:
        Maximum concurrent worker processes; ``0`` executes in-process.
    cache:
        Result cache consulted before executing and updated after every
        completion.  ``None`` disables caching.
    manifest:
        Run manifest updated after every terminal job state.  ``None``
        disables manifest tracking (and resumption).
    resume:
        When true, jobs already completed in ``manifest`` are served from it
        without re-execution (failed/timeout entries are retried).
    force:
        When true, cache hits are ignored (everything re-executes);
        ``resume`` is ignored too.
    ledger:
        Optional persistent :class:`~repro.observability.ledger.RunLedger`.
        Every terminal job — executed, cache-served (``outcome="cached"``),
        or manifest-resumed — is appended with its full lineage (content
        key, backend, config hash, package version, timing, outcome).
        ``None`` disables ledger recording.
    on_event:
        Optional callback ``(event, record)`` invoked on ``"start"``,
        ``"cached"``, ``"resumed"``, and ``"done"`` transitions — the CLI
        uses it for progress lines.
    metrics:
        Optional :class:`~repro.observability.runmetrics.RunnerMetrics`
        sink fed job transitions, queue depth, and in-flight counts (the
        ``repro run-all --metrics-port`` endpoint scrapes it).

    When a ledger is attached, every job is traced: its trace id is
    :func:`~repro.observability.tracing.trace_id_for_job` of the content
    key (deterministic — re-running the same job reproduces the same
    trace), the scheduler records ``job``/``queue_wait`` spans, and workers
    record ``job_execute`` in their own process.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        manifest: Optional[RunManifest] = None,
        resume: bool = True,
        force: bool = False,
        ledger: Optional[RunLedger] = None,
        on_event: Optional[EventCallback] = None,
        metrics: Optional[RunnerMetrics] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.cache = cache
        self.manifest = manifest
        self.resume = resume
        self.force = force
        self.ledger = ledger
        self.on_event = on_event
        self.metrics = metrics
        self._context = multiprocessing.get_context("spawn")
        self._jobs_by_key: Dict[str, JobSpec] = {}
        self._trace_by_key: Dict[str, TraceContext] = {}

    # -- public API ------------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec]) -> List[JobRecord]:
        """Execute ``jobs`` and return one terminal record per job, in order.

        Jobs satisfied without execution (cache hit, completed manifest
        entry) are returned with ``source`` set to ``"cache"`` /
        ``"manifest"``; everything else is executed and recorded with
        ``source="run"``.
        """
        records: Dict[str, JobRecord] = {}
        to_run: List[JobSpec] = []
        queued: set = set()
        _log.info("run_started", jobs=len(jobs), workers=self.workers)
        if self.metrics is not None:
            self.metrics.set_workers(self.workers)
        for job in jobs:
            key = job.key()
            self._jobs_by_key[key] = job
            if key in records or key in queued:
                continue
            shortcut = self._shortcut_record(job, key)
            if shortcut is not None:
                records[key] = shortcut
                # Batch the manifest writes: a fully-resumed run would
                # otherwise rewrite the whole file once per shortcut.
                self._record_done(shortcut, save=False)
            else:
                queued.add(key)
                to_run.append(job)
        if records and self.manifest is not None:
            self.manifest.save()

        if to_run:
            if self.workers == 0:
                executed = self._run_inline(to_run)
            else:
                executed = self._run_pool(to_run)
            records.update(executed)

        ordered = [records[job.key()] for job in jobs]
        _log.info(
            "run_finished",
            jobs=len(ordered),
            completed=sum(1 for record in ordered if record.ok),
            executed=len(to_run),
        )
        return ordered

    # -- shortcut paths --------------------------------------------------------

    def _shortcut_record(self, job: JobSpec, key: str) -> Optional[JobRecord]:
        """A terminal record available without executing ``job``, if any."""
        if self.force:
            return None
        if self.manifest is not None and self.resume and self.manifest.is_complete(key):
            record = self.manifest.records[key]
            if record.report is None and self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    record.report = cached.get("report")
            record.source = SOURCE_MANIFEST
            self._emit("resumed", record)
            return record
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None and cached.get("status") == "completed":
                record = JobRecord.from_dict(cached)
                record.source = SOURCE_CACHE
                self._emit("cached", record)
                return record
        return None

    # -- execution paths -------------------------------------------------------

    def _run_inline(self, jobs: Sequence[JobSpec]) -> Dict[str, JobRecord]:
        """In-process sequential execution (``workers=0``).

        Timeouts need a killable process, so they are not enforced here — a
        warning is emitted if any job requests one.
        """
        if any(job.timeout is not None for job in jobs):
            warnings.warn(
                "per-job timeouts are not enforced on the in-process path "
                "(workers=0); use workers >= 1 for killable jobs",
                RuntimeWarning,
                stacklevel=3,
            )
        records: Dict[str, JobRecord] = {}
        for job in jobs:
            _log.info(
                "job_started",
                key=job.key(),
                experiment=job.experiment,
                seed=job.seed,
                backend=job.backend,
                inline=True,
            )
            self._emit("start", self._pending_record(job))
            if self.metrics is not None:
                self.metrics.record_started()
            context = self._job_trace(job.key())
            with trace_scope(context, sink=self.ledger):
                with span("job_execute", experiment=job.experiment):
                    record = JobRecord.from_dict(execute_payload(job.to_dict()))
            records[record.key] = record
            self._record_done(record)
        return records

    def _run_pool(self, jobs: Sequence[JobSpec]) -> Dict[str, JobRecord]:
        """Process-per-job execution with up to :attr:`workers` in flight."""
        pending: List[JobSpec] = list(jobs)
        running: List[_Running] = []
        records: Dict[str, JobRecord] = {}
        queued_at = {job.key(): time.perf_counter() for job in jobs}
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    job = pending.pop(0)
                    running.append(
                        self._start_worker(job, queued_at.get(job.key()))
                    )
                if self.metrics is not None:
                    self.metrics.set_progress(len(pending), len(running))
                now = time.monotonic()
                still_running: List[_Running] = []
                for entry in running:
                    record = self._poll_worker(entry, now)
                    if record is None:
                        still_running.append(entry)
                    else:
                        records[record.key] = record
                        self._record_done(record)
                running = still_running
                if running:
                    time.sleep(POLL_INTERVAL)
        except BaseException:
            for entry in running:
                self._kill(entry.process)
            raise
        finally:
            if self.metrics is not None:
                self.metrics.set_progress(0, 0)
        return records

    def _job_trace(self, key: str) -> Optional[TraceContext]:
        """The job's span context (created once per key); ``None`` untraced.

        The trace id derives from the content key, so a re-run of the same
        job lands in the same trace — and a retried/restarted worker keeps
        the identity of the work, not of the attempt.
        """
        if self.ledger is None:
            return None
        context = self._trace_by_key.get(key)
        if context is None:
            root = TraceContext(trace_id=trace_id_for_job(key))
            context = root.child()
            self._trace_by_key[key] = context
        return context

    def _start_worker(self, job: JobSpec,
                      queued_at: Optional[float] = None) -> _Running:
        channel = self._context.Queue()
        context = self._job_trace(job.key())
        args = (job.to_dict(), channel)
        if context is not None:
            # Outside the payload: the payload is hashed into the content
            # key, so the trace must ride as separate spawn arguments.
            args = (job.to_dict(), channel, context.to_dict(),
                    str(self.ledger.root))
        process = self._context.Process(
            target=worker_main, args=args, daemon=True
        )
        process.start()
        if context is not None and queued_at is not None:
            record_span(self.ledger, context.child(), "queue_wait",
                        time.perf_counter() - queued_at,
                        experiment=job.experiment)
        if self.metrics is not None:
            self.metrics.record_started()
        _log.info(
            "job_started",
            key=job.key(),
            experiment=job.experiment,
            seed=job.seed,
            backend=job.backend,
            pid=process.pid,
            timeout_s=job.timeout,
        )
        self._emit("start", self._pending_record(job))
        return _Running(
            job=job,
            key=job.key(),
            process=process,
            channel=channel,
            started=time.monotonic(),
        )

    def _poll_worker(self, entry: _Running, now: float) -> Optional[JobRecord]:
        """Terminal record of ``entry`` if it finished/expired, else ``None``."""
        result: Optional[Dict[str, object]] = None
        try:
            result = entry.channel.get_nowait()
        except queue_module.Empty:
            result = None

        if result is not None:
            self._reap(entry.process)
            record = JobRecord.from_dict(result)  # type: ignore[arg-type]
            record.key = entry.key
            return record

        if entry.deadline_passed(now):
            # The worker may have finished in the window since the poll above
            # — drain once more before declaring the deadline missed.
            try:
                result = entry.channel.get(timeout=0.2)
            except (queue_module.Empty, OSError, EOFError):
                result = None
            if result is not None:
                self._reap(entry.process)
                record = JobRecord.from_dict(result)  # type: ignore[arg-type]
                record.key = entry.key
                return record
            self._kill(entry.process)
            _log.warning(
                "job_timeout",
                key=entry.key,
                experiment=entry.job.experiment,
                timeout_s=entry.job.timeout,
            )
            return JobRecord(
                key=entry.key,
                experiment=entry.job.experiment,
                output=entry.job.output_stem,
                seed=entry.job.seed,
                status=STATUS_TIMEOUT,
                source=SOURCE_RUN,
                elapsed=now - entry.started,
                error=f"job exceeded its {entry.job.timeout:.1f} s timeout and was killed",
            )

        if not entry.process.is_alive():
            entry.process.join()
            # The result may still be in flight through the queue's pipe even
            # though the worker already exited — give it one grace read.
            try:
                result = entry.channel.get(timeout=0.2)
            except (queue_module.Empty, OSError, EOFError):
                result = None
            if result is not None:
                record = JobRecord.from_dict(result)  # type: ignore[arg-type]
                record.key = entry.key
                return record
            # Died without reporting: crashed (segfault, os._exit, OOM kill).
            _log.warning(
                "job_crashed",
                key=entry.key,
                experiment=entry.job.experiment,
                exitcode=entry.process.exitcode,
            )
            return JobRecord(
                key=entry.key,
                experiment=entry.job.experiment,
                output=entry.job.output_stem,
                seed=entry.job.seed,
                status=STATUS_FAILED,
                source=SOURCE_RUN,
                elapsed=now - entry.started,
                error=f"worker exited without a result (exitcode {entry.process.exitcode})",
            )
        return None

    # -- helpers ---------------------------------------------------------------

    def _pending_record(self, job: JobSpec) -> JobRecord:
        return JobRecord(
            key=job.key(),
            experiment=job.experiment,
            output=job.output_stem,
            seed=job.seed,
            status="running",
        )

    def _record_done(self, record: JobRecord, save: bool = True) -> None:
        if record.source == SOURCE_RUN:
            if self.cache is not None and record.ok:
                self.cache.put(record.key, record.to_dict())
            self._emit("done", record)
            context = self._trace_by_key.get(record.key)
            if context is not None:
                # The scheduler-side umbrella span of the whole job: the
                # worker's job_execute (and any retries) nest under it.
                record_span(self.ledger, context, "job", record.elapsed,
                            experiment=record.experiment,
                            status=record.status)
        if self.metrics is not None:
            self.metrics.record_finished(record)
        self._ledger_record(record)
        _log.info(
            "job_finished",
            key=record.key,
            experiment=record.experiment,
            status=record.status,
            source=record.source,
            elapsed_s=round(record.elapsed, 6),
        )
        if self.manifest is not None:
            self.manifest.update(record, save=save)

    def _ledger_record(self, record: JobRecord) -> None:
        """Append ``record`` to the persistent ledger, if one is attached.

        Cache- and manifest-served jobs are recorded too (with outcome
        ``"cached"`` / ``"resumed"``): the ledger answers "what did this run
        touch", not just "what did it execute".
        """
        if self.ledger is None:
            return
        job = self._jobs_by_key.get(record.key)
        if job is None:  # pragma: no cover - records always follow a job
            return
        entry = job_entry(job, record)
        context = self._trace_by_key.get(record.key)
        if context is not None:
            entry.setdefault("trace_id", context.trace_id)
            entry.setdefault("span_id", context.span_id)
        else:
            # Cache/manifest shortcuts never executed, but their entry still
            # joins the job's deterministic trace id for lineage queries.
            entry.setdefault("trace_id", trace_id_for_job(record.key))
        self.ledger.append(entry)

    def _emit(self, event: str, record: JobRecord) -> None:
        if self.on_event is not None:
            self.on_event(event, record)

    @classmethod
    def _reap(cls, process: multiprocessing.process.BaseProcess) -> None:
        """Collect a worker whose result has been read, with a bounded wait.

        A driver that leaked a non-daemon thread would keep the process alive
        after its result arrived; never block the scheduler on it — give it a
        grace period, then kill it.
        """
        process.join(TERMINATE_GRACE)
        if process.is_alive():
            cls._kill(process)

    @staticmethod
    def _kill(process: multiprocessing.process.BaseProcess) -> None:
        if not process.is_alive():
            process.join()
            return
        process.terminate()
        process.join(TERMINATE_GRACE)
        if process.is_alive():
            process.kill()
            process.join()


def run_jobs(
    jobs: Sequence[JobSpec],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    manifest: Optional[RunManifest] = None,
    resume: bool = True,
    force: bool = False,
    ledger: Optional[RunLedger] = None,
    on_event: Optional[EventCallback] = None,
    metrics: Optional[RunnerMetrics] = None,
) -> List[JobRecord]:
    """Convenience wrapper: build a :class:`ParallelRunner` and run ``jobs``."""
    runner = ParallelRunner(
        workers,
        cache=cache,
        manifest=manifest,
        resume=resume,
        force=force,
        ledger=ledger,
        on_event=on_event,
        metrics=metrics,
    )
    return runner.run(jobs)

"""Worker-side job execution.

Everything in this module runs inside the worker *process* (or in-process
when the scheduler runs with ``workers=0``).  The entry point is module-level
so the ``spawn`` start method can import it by reference; the payload handed
over is the plain-JSON :meth:`~repro.runner.jobs.JobSpec.to_dict` form, so no
library object has to be picklable.

Driver resolution: a payload's ``experiment`` is either a name from
:mod:`repro.experiments.registry` or a ``"module:callable"`` reference (used
by the crash/hang fixtures in :mod:`repro.runner.testing`).  Either way the
callable receives ``(scale, **overrides)`` and must return a string or an
object with ``to_text()``.
"""

from __future__ import annotations

import importlib
import time
import traceback
from typing import Any, Callable, Dict, Optional

from repro.experiments.common import ExperimentScale
from repro.experiments.registry import EXPERIMENTS, render_report
from repro.observability.ledger import RunLedger
from repro.observability.structlog import configure_from_env, get_struct_logger
from repro.observability.tracing import TraceContext, span, trace_scope
from repro.runner.jobs import JobSpec
from repro.runner.manifest import STATUS_COMPLETED, STATUS_FAILED

_log = get_struct_logger("runner.worker")


def resolve_runner(experiment: str) -> Callable[..., Any]:
    """The driver callable behind ``experiment``.

    Registry names win; ``"module:callable"`` references are imported as a
    fallback so tests and ad-hoc workloads can inject drivers without
    mutating the registry of every worker process.
    """
    spec = EXPERIMENTS.get(experiment)
    if spec is not None:
        return spec.runner
    if ":" in experiment:
        module_name, _, attribute = experiment.partition(":")
        module = importlib.import_module(module_name)
        runner = getattr(module, attribute)
        if not callable(runner):
            raise TypeError(f"{experiment!r} does not name a callable")
        return runner
    known = ", ".join(EXPERIMENTS)
    raise KeyError(f"unknown experiment {experiment!r}; known experiments: {known}")


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job payload to completion and return its record dictionary.

    The record matches :class:`repro.runner.manifest.JobRecord`; a raising
    driver yields a ``failed`` record with the traceback instead of
    propagating (crash isolation also holds on the in-process path).
    """
    job = JobSpec.from_dict(payload)
    job_log = _log.bind(
        key=job.key(), experiment=job.experiment, seed=job.seed, backend=job.backend
    )
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "key": job.key(),
        "experiment": job.experiment,
        "output": job.output_stem,
        "seed": job.seed,
        "source": "run",
    }
    job_log.info("execute_started")
    try:
        runner = resolve_runner(job.experiment)
        scale: ExperimentScale = job.scale
        report = render_report(runner(scale, **dict(job.overrides)))
    except Exception:
        record["status"] = STATUS_FAILED
        record["error"] = traceback.format_exc()
        job_log.error("execute_failed", error=record["error"].strip().splitlines()[-1])
    else:
        record["status"] = STATUS_COMPLETED
        record["report"] = report
        job_log.info("execute_completed", elapsed_s=round(time.perf_counter() - started, 6))
    record["elapsed"] = time.perf_counter() - started
    return record


def worker_main(payload: Dict[str, Any], queue: Any,
                trace: Optional[Dict[str, Any]] = None,
                ledger_root: Optional[str] = None) -> None:
    """Subprocess entry: execute ``payload`` and put the record on ``queue``.

    Must never raise: a worker that dies without enqueueing anything is
    recorded as crashed by the scheduler, so even queue failures are reported
    as a failed record when possible.

    ``trace``/``ledger_root`` travel *outside* the payload on purpose: the
    payload is hashed into the job's content key, so the trace identity must
    never change what is being computed.  When set, the whole execution runs
    under a ``job_execute`` span written to the parent's ledger, and every
    worker-side log event carries the trace id.
    """
    # ``spawn`` workers inherit no logging configuration from the parent;
    # re-apply the environment's structured-logging request so a run under
    # ``REPRO_LOG_JSON=1`` streams worker-side events too.
    configure_from_env()
    context: Optional[TraceContext] = None
    sink: Optional[RunLedger] = None
    if trace:
        try:
            context = TraceContext.from_dict(trace)
            sink = RunLedger(ledger_root) if ledger_root else None
        except Exception:  # noqa: BLE001 - tracing must never fail a job
            context, sink = None, None
    try:
        with trace_scope(context, sink=sink):
            with span("job_execute",
                      experiment=payload.get("experiment", "?")):
                record = execute_payload(payload)
    except BaseException:
        record = {
            "key": payload.get("experiment", "?"),
            "experiment": payload.get("experiment", "?"),
            "output": payload.get("output", "?"),
            "seed": payload.get("seed", 0),
            "status": STATUS_FAILED,
            "source": "run",
            "error": traceback.format_exc(),
            "elapsed": 0.0,
        }
    try:
        queue.put(record)
    except BaseException:  # pragma: no cover - queue teardown race
        pass

"""Deterministic worker fixtures for scheduler tests.

These module-level callables are addressed from job specs as
``"repro.runner.testing:<name>"`` references, so spawned worker processes can
import them without any registry mutation in the parent.  They exist to
exercise the scheduler's failure paths (crash isolation, timeouts) and its
determinism guarantees without paying for a real experiment driver.
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import ExperimentScale


def echo_driver(scale: ExperimentScale, tag: str = "echo") -> str:
    """Deterministic report derived from the scale — the determinism probe."""
    return (
        f"{tag}: seed={scale.seed} image_size={scale.image_size} "
        f"networks={list(scale.network_sizes)} t_sim={scale.t_sim}"
    )


def slow_driver(scale: ExperimentScale, delay: float = 0.2, tag: str = "slow") -> str:
    """Sleep ``delay`` seconds, then report — for concurrency timing tests."""
    time.sleep(delay)
    return f"{tag}: slept {delay} (seed={scale.seed})"


def crashing_driver(scale: ExperimentScale, message: str = "intentional crash") -> str:
    """Raise inside the worker — exercises the failed-job path."""
    raise RuntimeError(f"{message} (seed={scale.seed})")


def dying_driver(scale: ExperimentScale, exitcode: int = 42) -> str:
    """Kill the worker process outright — exercises the crashed-worker path."""
    del scale
    os._exit(exitcode)


def hanging_driver(scale: ExperimentScale, seconds: float = 3600.0) -> str:
    """Hang far beyond any sane timeout — exercises the timeout path."""
    time.sleep(seconds)
    return f"hung for {seconds} (seed={scale.seed})"

"""Task streams for dynamic and non-dynamic environments (paper Section IV).

*Dynamic environments* feed the network consecutive task (class) changes —
first a stream of digit-0 samples, then digit-1, and so on — without ever
re-feeding previous tasks, each task contributing the same number of samples.
*Non-dynamic environments* feed samples whose classes are randomly
distributed.

Both stream builders operate on a *digit source*: any object exposing
``generate(digit, n, rng=None) -> (n, size, size) array`` and a ``classes``
attribute.  :class:`~repro.datasets.synthetic_mnist.SyntheticDigits` and
:class:`ArrayDigitSource` (a wrapper around real image/label arrays) both
satisfy this interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

#: One task of a task schedule: a single class or a group of classes that
#: arrive together (see :func:`task_schedule_stream`).
TaskClasses = Union[int, Sequence[int]]


@dataclass
class StreamSample:
    """One element of a task stream.

    Attributes
    ----------
    image:
        The 2-D intensity image.
    label:
        The ground-truth class of the image.
    task_index:
        Position of the sample's task within the stream's task sequence
        (every sample of a non-dynamic stream has task index 0).
    """

    image: np.ndarray
    label: int
    task_index: int


class ArrayDigitSource:
    """Digit source backed by pre-existing image and label arrays.

    Parameters
    ----------
    images:
        Array of shape ``(n, rows, cols)`` with intensities in [0, 1].
    labels:
        Integer labels of shape ``(n,)``.
    seed:
        Seed for sampling without replacement within a class.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray,
                 seed: SeedLike = None) -> None:
        images = np.asarray(images, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if images.ndim != 3:
            raise ValueError(f"images must be 3-D (n, rows, cols), got {images.shape}")
        if images.shape[0] == 0:
            raise ValueError(
                "the dataset is empty (zero images); a digit source needs at "
                "least one labelled image per class it serves"
            )
        if labels.shape != (images.shape[0],):
            raise ValueError(
                f"labels must have shape ({images.shape[0]},), got {labels.shape}"
            )
        self.images = images
        self.labels = labels
        self.classes: Tuple[int, ...] = tuple(sorted(np.unique(labels).tolist()))
        self._rng = ensure_rng(seed)
        self._by_class = {
            digit: np.flatnonzero(labels == digit) for digit in self.classes
        }

    @property
    def image_size(self) -> int:
        """Side length of the (square) images."""
        return int(self.images.shape[1])

    @property
    def n_pixels(self) -> int:
        """Number of pixels per image."""
        return int(self.images.shape[1] * self.images.shape[2])

    def generate(self, digit: int, n: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``n`` images of class ``digit`` (with replacement if needed)."""
        check_positive_int(n, "n")
        if digit not in self._by_class:
            raise ValueError(f"class {digit} is not present in the dataset")
        generator = ensure_rng(rng) if rng is not None else self._rng
        pool = self._by_class[digit]
        replace = n > pool.size
        chosen = generator.choice(pool, size=n, replace=replace)
        return self.images[chosen]


def dynamic_task_stream(
    source,
    *,
    class_sequence: Optional[Sequence[int]] = None,
    samples_per_task: int = 10,
    rng: SeedLike = None,
) -> List[StreamSample]:
    """Build a dynamic-environment stream of consecutive task changes.

    Parameters
    ----------
    source:
        Digit source (``generate(digit, n, rng)`` plus ``classes``).
    class_sequence:
        Order in which tasks are presented; defaults to the source's classes
        in ascending order (digit-0 first, as in the paper's case study).
    samples_per_task:
        Number of samples presented for each task (equal for every task).
    rng:
        Seed or generator for the image draws.
    """
    check_positive_int(samples_per_task, "samples_per_task")
    generator = ensure_rng(rng)
    sequence = list(source.classes if class_sequence is None else class_sequence)
    if not sequence:
        raise ValueError(
            "the task sequence is empty: pass a non-empty class_sequence or "
            "use a digit source that serves at least one class"
        )

    stream: List[StreamSample] = []
    for task_index, digit in enumerate(sequence):
        images = source.generate(int(digit), samples_per_task, rng=generator)
        for image in images:
            stream.append(StreamSample(image=image, label=int(digit),
                                       task_index=task_index))
    return stream


def normalize_task_schedule(tasks: Sequence[TaskClasses]) -> List[Tuple[int, ...]]:
    """Canonical form of a task schedule: one class tuple per task.

    Accepts a mixture of bare class integers and class groups, so
    ``[0, (1, 2), 3]`` describes three tasks where the middle task presents
    classes 1 and 2 together.  Raises a clear :class:`ValueError` for an
    empty schedule or an empty task instead of failing later with an
    ``IndexError`` deep inside the stream builder.
    """
    schedule = list(tasks)
    if not schedule:
        raise ValueError(
            "the task schedule is empty: a scenario needs at least one task"
        )
    normalized: List[Tuple[int, ...]] = []
    for position, task in enumerate(schedule):
        classes = (int(task),) if np.isscalar(task) else tuple(int(c) for c in task)
        if not classes:
            raise ValueError(
                f"task {position} of the schedule has no classes; every task "
                "must present at least one class"
            )
        normalized.append(classes)
    return normalized


def task_schedule_stream(
    source,
    tasks: Sequence[TaskClasses],
    *,
    samples_per_task: int = 10,
    rng: SeedLike = None,
) -> List[StreamSample]:
    """Build a stream from an explicit task schedule (possibly multi-class).

    Generalizes :func:`dynamic_task_stream`: each task is a *group* of
    classes presented together, so ``tasks=[(0, 1), (2, 3)]`` yields a
    class-incremental stream with two-class tasks.  Within a task the class
    of every sample is drawn uniformly from the task's classes, so
    multi-class tasks are internally shuffled (single-class tasks degenerate
    to the paper's consecutive task changes).

    Parameters
    ----------
    source:
        Digit source (``generate(digit, n, rng)`` plus ``classes``).
    tasks:
        Task schedule; each entry is a class or a sequence of classes.
        Tasks may repeat (recurring tasks get fresh ``task_index`` values
        per occurrence — the index identifies the *position* in the
        schedule, mirroring :func:`dynamic_task_stream`).
    samples_per_task:
        Number of samples presented for each task (equal for every task).
    rng:
        Seed or generator for the class and image draws.
    """
    check_positive_int(samples_per_task, "samples_per_task")
    generator = ensure_rng(rng)
    schedule = normalize_task_schedule(tasks)

    stream: List[StreamSample] = []
    for task_index, classes in enumerate(schedule):
        if len(classes) == 1:
            labels = np.full(samples_per_task, classes[0])
        else:
            labels = generator.choice(list(classes), size=samples_per_task)
        for label in labels:
            image = source.generate(int(label), 1, rng=generator)[0]
            stream.append(StreamSample(image=image, label=int(label),
                                       task_index=task_index))
    return stream


def nondynamic_stream(
    source,
    *,
    n_samples: int = 100,
    classes: Optional[Sequence[int]] = None,
    rng: SeedLike = None,
) -> List[StreamSample]:
    """Build a non-dynamic stream whose classes are randomly distributed.

    Parameters
    ----------
    source:
        Digit source (``generate(digit, n, rng)`` plus ``classes``).
    n_samples:
        Total number of samples in the stream.
    classes:
        Classes to draw from (defaults to all of the source's classes).
    rng:
        Seed or generator for the class and image draws.
    """
    check_positive_int(n_samples, "n_samples")
    generator = ensure_rng(rng)
    available = list(source.classes if classes is None else classes)
    if not available:
        raise ValueError("classes must not be empty")

    labels = generator.choice(available, size=n_samples)
    stream: List[StreamSample] = []
    for label in labels:
        image = source.generate(int(label), 1, rng=generator)[0]
        stream.append(StreamSample(image=image, label=int(label), task_index=0))
    return stream

"""Procedural MNIST-like digit generator.

Each digit class is defined by a set of strokes (line segments in a
normalized coordinate space).  A sample is rendered by drawing the strokes
with a soft (Gaussian-profile) pen onto a square grid, then applying random
translation, scale jitter, per-stroke intensity variation, and pixel noise.

The prototypes are designed so that the inter-class structure relevant to the
paper's observations is preserved — in particular digit 4 and digit 9 share
their right-hand vertical stroke and upper region (the overlapping features
behind the 4-vs-9 confusions of Fig. 10), while digits such as 0 and 1 are
easily separable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

Segment = Tuple[Tuple[float, float], Tuple[float, float]]


def _polyline(points: Sequence[Tuple[float, float]]) -> List[Segment]:
    """Consecutive segments through the listed points."""
    return [(points[i], points[i + 1]) for i in range(len(points) - 1)]


def _ellipse(cx: float, cy: float, rx: float, ry: float,
             n_points: int = 12, start: float = 0.0,
             sweep: float = 2.0 * np.pi) -> List[Segment]:
    """Polygonal approximation of an (arc of an) ellipse."""
    angles = start + np.linspace(0.0, sweep, n_points + 1)
    points = [(cx + rx * np.cos(a), cy + ry * np.sin(a)) for a in angles]
    return _polyline(points)


def _digit_strokes() -> Dict[int, List[Segment]]:
    """Stroke prototypes for the ten digit classes.

    Coordinates are (x, y) in [0, 1] with the origin at the top-left corner.
    """
    strokes: Dict[int, List[Segment]] = {}

    # 0: a full oval outline.
    strokes[0] = _ellipse(0.5, 0.5, 0.26, 0.36)

    # 1: a vertical bar with a small leading flag.
    strokes[1] = _polyline([(0.38, 0.3), (0.52, 0.18), (0.52, 0.82)])

    # 2: top arc, diagonal to the bottom-left, bottom bar.
    strokes[2] = (
        _ellipse(0.5, 0.33, 0.24, 0.16, n_points=8, start=np.pi, sweep=np.pi)
        + _polyline([(0.74, 0.36), (0.3, 0.8), (0.74, 0.8)])
    )

    # 3: two right-facing arcs stacked vertically.
    strokes[3] = (
        _ellipse(0.47, 0.33, 0.22, 0.15, n_points=8, start=np.pi * 0.85,
                 sweep=np.pi * 1.25)
        + _ellipse(0.47, 0.66, 0.24, 0.17, n_points=8, start=np.pi * 0.9,
                   sweep=np.pi * 1.3)
    )

    # 4: left diagonal down to the crossbar, horizontal crossbar, and the
    # long right-hand vertical stroke (shared with digit 9).
    strokes[4] = (
        _polyline([(0.36, 0.2), (0.26, 0.55), (0.72, 0.55)])
        + _polyline([(0.62, 0.18), (0.62, 0.84)])
    )

    # 5: top bar, upper-left vertical, middle bar, lower-right bowl.
    strokes[5] = (
        _polyline([(0.7, 0.2), (0.34, 0.2), (0.34, 0.5), (0.58, 0.5)])
        + _ellipse(0.52, 0.64, 0.2, 0.16, n_points=8, start=-np.pi / 2,
                   sweep=np.pi * 1.4)
    )

    # 6: a tall left curve flowing into a lower loop.
    strokes[6] = (
        _polyline([(0.62, 0.2), (0.4, 0.38), (0.34, 0.6)])
        + _ellipse(0.5, 0.66, 0.17, 0.15)
    )

    # 7: top bar and a long diagonal descender.
    strokes[7] = _polyline([(0.28, 0.22), (0.72, 0.22), (0.44, 0.82)])

    # 8: two stacked loops.
    strokes[8] = (
        _ellipse(0.5, 0.34, 0.18, 0.15)
        + _ellipse(0.5, 0.66, 0.21, 0.17)
    )

    # 9: an upper loop plus the long right-hand vertical stroke; the loop and
    # descender intentionally overlap digit 4's crossbar region and vertical.
    strokes[9] = (
        _ellipse(0.48, 0.36, 0.17, 0.15)
        + _polyline([(0.64, 0.36), (0.62, 0.84)])
    )

    return strokes


class SyntheticDigits:
    """Procedural generator of MNIST-like digit images.

    Parameters
    ----------
    image_size:
        Side length of the square images in pixels (28 matches MNIST; tests
        use 14 for speed).
    thickness:
        Pen thickness as a fraction of the image size.
    jitter:
        Maximum random translation, in pixels, applied per sample.
    scale_jitter:
        Maximum relative scale perturbation applied per sample.
    noise:
        Standard deviation of the additive pixel noise (intensity units,
        images are in [0, 1]).
    intensity_jitter:
        Maximum relative per-sample variation of the stroke intensity.
    seed:
        Seed or generator controlling all randomness.
    """

    classes: Tuple[int, ...] = tuple(range(10))

    def __init__(
        self,
        image_size: int = 28,
        *,
        thickness: float = 0.06,
        jitter: float = 2.0,
        scale_jitter: float = 0.08,
        noise: float = 0.04,
        intensity_jitter: float = 0.2,
        seed: SeedLike = None,
    ) -> None:
        self.image_size = check_positive_int(image_size, "image_size")
        self.thickness = check_positive(thickness, "thickness")
        self.jitter = check_non_negative(jitter, "jitter")
        self.scale_jitter = check_non_negative(scale_jitter, "scale_jitter")
        self.noise = check_non_negative(noise, "noise")
        self.intensity_jitter = check_non_negative(intensity_jitter, "intensity_jitter")
        self._rng = ensure_rng(seed)
        self._strokes = _digit_strokes()
        self._grid = self._make_grid()

    # -- rendering ------------------------------------------------------------

    def _make_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        coords = (np.arange(self.image_size) + 0.5) / self.image_size
        gx, gy = np.meshgrid(coords, coords)
        return gx, gy

    def _render_segment(self, image: np.ndarray, segment: Segment,
                        intensity: float, offset: Tuple[float, float],
                        scale: float) -> None:
        """Draw one stroke segment with a soft Gaussian pen profile."""
        (x1, y1), (x2, y2) = segment
        # Apply scale about the image centre, then translate.
        x1 = 0.5 + (x1 - 0.5) * scale + offset[0]
        y1 = 0.5 + (y1 - 0.5) * scale + offset[1]
        x2 = 0.5 + (x2 - 0.5) * scale + offset[0]
        y2 = 0.5 + (y2 - 0.5) * scale + offset[1]

        gx, gy = self._grid
        dx, dy = x2 - x1, y2 - y1
        length_sq = dx * dx + dy * dy
        if length_sq == 0:
            t = np.zeros_like(gx)
        else:
            t = ((gx - x1) * dx + (gy - y1) * dy) / length_sq
            t = np.clip(t, 0.0, 1.0)
        nearest_x = x1 + t * dx
        nearest_y = y1 + t * dy
        dist_sq = (gx - nearest_x) ** 2 + (gy - nearest_y) ** 2
        profile = np.exp(-dist_sq / (2.0 * self.thickness**2))
        np.maximum(image, intensity * profile, out=image)

    def prototype(self, digit: int) -> np.ndarray:
        """Noise-free rendering of a digit's stroke prototype."""
        self._check_digit(digit)
        image = np.zeros((self.image_size, self.image_size), dtype=float)
        for segment in self._strokes[digit]:
            self._render_segment(image, segment, 1.0, (0.0, 0.0), 1.0)
        return image

    def _check_digit(self, digit: int) -> None:
        if digit not in self._strokes:
            raise ValueError(f"digit must be in 0..9, got {digit}")

    # -- sampling --------------------------------------------------------------

    def generate(self, digit: int, n: int,
                 rng: SeedLike = None) -> np.ndarray:
        """Generate ``n`` noisy samples of ``digit`` with shape ``(n, s, s)``."""
        self._check_digit(digit)
        check_positive_int(n, "n")
        generator = ensure_rng(rng) if rng is not None else self._rng

        images = np.zeros((n, self.image_size, self.image_size), dtype=float)
        pixel_jitter = self.jitter / self.image_size
        for index in range(n):
            offset = generator.uniform(-pixel_jitter, pixel_jitter, size=2)
            scale = 1.0 + generator.uniform(-self.scale_jitter, self.scale_jitter)
            intensity = 1.0 - generator.uniform(0.0, self.intensity_jitter)
            image = images[index]
            for segment in self._strokes[digit]:
                self._render_segment(image, segment, intensity,
                                     (offset[0], offset[1]), scale)
            if self.noise > 0:
                image += generator.normal(0.0, self.noise, size=image.shape)
            np.clip(image, 0.0, 1.0, out=image)
        return images

    def sample(self, n: int, classes: Optional[Sequence[int]] = None,
               rng: SeedLike = None) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``n`` samples with labels drawn uniformly from ``classes``.

        Returns
        -------
        (images, labels):
            ``images`` has shape ``(n, image_size, image_size)``; ``labels``
            is an ``(n,)`` integer array.
        """
        check_positive_int(n, "n")
        classes = list(self.classes if classes is None else classes)
        for digit in classes:
            self._check_digit(digit)
        generator = ensure_rng(rng) if rng is not None else self._rng

        labels = generator.choice(classes, size=n)
        images = np.zeros((n, self.image_size, self.image_size), dtype=float)
        for index, digit in enumerate(labels):
            images[index] = self.generate(int(digit), 1, rng=generator)[0]
        return images, labels.astype(int)

    @property
    def n_pixels(self) -> int:
        """Number of pixels per image (the SNN input size)."""
        return self.image_size * self.image_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticDigits(image_size={self.image_size}, noise={self.noise}, "
            f"jitter={self.jitter})"
        )

"""Datasets and task streams.

The paper evaluates on MNIST.  Because this reproduction must run fully
offline, the default digit source is :class:`SyntheticDigits` — a procedural
generator of MNIST-like 28x28 digit images (stroke-based prototypes per
class, random geometric jitter, stroke-intensity variation, and pixel noise).
A loader for real MNIST IDX files is provided in :mod:`repro.datasets.mnist`
and is picked up automatically when the files are available on disk.

:mod:`repro.datasets.streams` builds the two evaluation protocols of the
paper's Section IV: *dynamic environments* (consecutive task changes without
re-feeding previous tasks) and *non-dynamic environments* (randomly
distributed tasks).
"""

from repro.datasets.event_streams import (
    EventStreamDigitSource,
    EventStreamSample,
)
from repro.datasets.mnist import load_digit_source, load_mnist_idx
from repro.datasets.streams import (
    ArrayDigitSource,
    StreamSample,
    dynamic_task_stream,
    nondynamic_stream,
    normalize_task_schedule,
    task_schedule_stream,
)
from repro.datasets.synthetic_mnist import SyntheticDigits

__all__ = [
    "ArrayDigitSource",
    "EventStreamDigitSource",
    "EventStreamSample",
    "StreamSample",
    "SyntheticDigits",
    "dynamic_task_stream",
    "load_digit_source",
    "load_mnist_idx",
    "nondynamic_stream",
    "normalize_task_schedule",
    "task_schedule_stream",
]

"""MNIST IDX loading with a synthetic fallback.

The paper's experiments use MNIST.  When the standard IDX files
(``train-images-idx3-ubyte`` etc.) are available on disk this module loads
them; otherwise :func:`load_digit_source` transparently falls back to the
procedural :class:`~repro.datasets.synthetic_mnist.SyntheticDigits`
generator so the whole pipeline remains runnable offline.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.utils.rng import SeedLike

PathLike = Union[str, Path]

_IDX_IMAGE_MAGIC = 2051
_IDX_LABEL_MAGIC = 2049

#: Conventional file names of the MNIST training set.
TRAIN_IMAGES_FILE = "train-images-idx3-ubyte"
TRAIN_LABELS_FILE = "train-labels-idx1-ubyte"


def load_mnist_idx(images_path: PathLike, labels_path: PathLike
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Load an MNIST IDX image/label file pair.

    Returns
    -------
    (images, labels):
        ``images`` is a float array in [0, 1] of shape ``(n, rows, cols)``;
        ``labels`` is an ``(n,)`` integer array.

    Raises
    ------
    FileNotFoundError
        If either file is missing.
    ValueError
        If the files are not valid IDX files or their lengths disagree.
    """
    images_path = Path(images_path)
    labels_path = Path(labels_path)

    with open(images_path, "rb") as handle:
        magic, count, rows, cols = struct.unpack(">IIII", handle.read(16))
        if magic != _IDX_IMAGE_MAGIC:
            raise ValueError(f"{images_path} is not an IDX image file")
        raw = np.frombuffer(handle.read(), dtype=np.uint8)
    if raw.size != count * rows * cols:
        raise ValueError(f"{images_path} is truncated")
    images = raw.reshape(count, rows, cols).astype(float) / 255.0

    with open(labels_path, "rb") as handle:
        magic, label_count = struct.unpack(">II", handle.read(8))
        if magic != _IDX_LABEL_MAGIC:
            raise ValueError(f"{labels_path} is not an IDX label file")
        labels = np.frombuffer(handle.read(), dtype=np.uint8).astype(int)
    if labels.size != label_count:
        raise ValueError(f"{labels_path} is truncated")
    if label_count != count:
        raise ValueError(
            f"image count ({count}) and label count ({label_count}) disagree"
        )
    return images, labels


def load_digit_source(
    data_dir: Optional[PathLike] = None,
    *,
    image_size: int = 28,
    seed: SeedLike = 0,
):
    """Return a digit source, preferring real MNIST when available.

    Parameters
    ----------
    data_dir:
        Directory expected to contain the MNIST IDX files.  When ``None`` or
        when the files are missing/corrupt, a
        :class:`~repro.datasets.synthetic_mnist.SyntheticDigits` generator of
        the requested ``image_size`` is returned instead.
    image_size:
        Image side length used for the synthetic fallback.
    seed:
        Seed for the synthetic fallback.

    Returns
    -------
    object
        Either an :class:`~repro.datasets.streams.ArrayDigitSource` wrapping
        the real MNIST arrays, or a :class:`SyntheticDigits` generator.
    """
    # Imported here to avoid a circular import at module load time.
    from repro.datasets.streams import ArrayDigitSource

    if data_dir is not None:
        data_dir = Path(data_dir)
        images_path = data_dir / TRAIN_IMAGES_FILE
        labels_path = data_dir / TRAIN_LABELS_FILE
        if images_path.exists() and labels_path.exists():
            try:
                images, labels = load_mnist_idx(images_path, labels_path)
            except (ValueError, OSError):
                pass
            else:
                return ArrayDigitSource(images, labels, seed=seed)
    return SyntheticDigits(image_size=image_size, seed=seed)

"""Dataset adapter from digit sources to labelled event streams.

Bridges the static-image datasets (synthetic or real MNIST digit sources,
see :mod:`repro.datasets.streams`) to the event-driven engine: each sampled
image is pushed through an :class:`~repro.encoding.events.EventStreamEncoder`
and comes out as a labelled :class:`~repro.snn.events.EventStream` —
a DVS-style long-horizon presentation of an otherwise static digit.

The adapter mirrors the digit-source protocol's shape (``generate`` /
``classes``) so stream builders and experiments can treat it like any other
source, just with events instead of images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.encoding.events import EventStreamEncoder
from repro.snn.events import EventStream
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class EventStreamSample:
    """One labelled event-stream presentation.

    Attributes
    ----------
    stream:
        The encoded spike events of the presentation.
    label:
        Ground-truth class of the underlying image.
    image:
        The source intensity image the stream was encoded from (kept so
        readout calibration can reuse the exact same presentation).
    """

    stream: EventStream
    label: int
    image: np.ndarray


class EventStreamDigitSource:
    """Digit source whose samples are event streams instead of images.

    Parameters
    ----------
    source:
        Any digit source (``generate(digit, n, rng=None)`` + ``classes``),
        e.g. :class:`~repro.datasets.synthetic_mnist.SyntheticDigits`.
    encoder:
        The event-stream encoder applied to every sampled image.
    """

    def __init__(self, source, encoder: EventStreamEncoder) -> None:
        if not isinstance(encoder, EventStreamEncoder):
            raise TypeError(
                f"encoder must be an EventStreamEncoder, got "
                f"{type(encoder).__name__}"
            )
        self.source = source
        self.encoder = encoder

    @property
    def classes(self) -> Sequence[int]:
        """Classes served, inherited from the wrapped digit source."""
        return self.source.classes

    def generate(self, digit: int, n: int,
                 rng: SeedLike = None) -> List[EventStreamSample]:
        """``n`` labelled event-stream presentations of one digit class."""
        n = check_positive_int(n, "n")
        images = self.source.generate(digit, n, rng=rng)
        return [
            EventStreamSample(
                stream=self.encoder.encode_events(image),
                label=int(digit),
                image=np.asarray(image, dtype=float),
            )
            for image in images
        ]

    def labelled_streams(
        self, n_per_class: int, classes: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
    ) -> Tuple[List[EventStreamSample], np.ndarray]:
        """Event streams for every class, with the label vector alongside.

        Returns ``(samples, labels)`` with samples grouped by class in
        ``classes`` order (defaults to every class of the wrapped source).
        """
        rng = ensure_rng(rng)
        selected = list(classes) if classes is not None else list(self.classes)
        if not selected:
            raise ValueError("no classes selected for event-stream sampling")
        samples: List[EventStreamSample] = []
        for digit in selected:
            samples.extend(self.generate(int(digit), n_per_class, rng=rng))
        labels = np.array([sample.label for sample in samples], dtype=int)
        return samples, labels

"""Base class shared by all learning rules.

A learning rule is attached to a plastic :class:`~repro.snn.synapses.Connection`
and driven by the network once per timestep.  The rule owns its own pre- and
postsynaptic spike traces so that the connection object stays a passive
weight container.
"""

from __future__ import annotations

from typing import Optional

from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection
from repro.snn.traces import SpikeTrace
from repro.utils.validation import check_positive


class LearningRule:
    """Abstract learning rule with lazily initialized spike traces.

    Parameters
    ----------
    tau_pre, tau_post:
        Time constants (ms) of the presynaptic and postsynaptic traces.
    trace_mode:
        ``'set'`` or ``'add'`` — see :class:`~repro.snn.traces.SpikeTrace`.
    """

    #: Whether a run of input-silent, spike-free timesteps leaves the rule's
    #: weights untouched and only decays its traces — the condition under
    #: which :meth:`repro.snn.network.Network.run_events` may advance the
    #: traces analytically instead of stepping the rule.  Defaults to
    #: ``False`` (rules that act on a timer or every step, like window
    #: boundaries or weight leak, must be stepped); rules whose silent
    #: steps are pure trace decay opt in.
    supports_analytic_silence: bool = False

    def __init__(self, *, tau_pre: float = 20.0, tau_post: float = 20.0,
                 trace_mode: str = "set") -> None:
        self.tau_pre = check_positive(tau_pre, "tau_pre")
        self.tau_post = check_positive(tau_post, "tau_post")
        self.trace_mode = trace_mode
        self.pre_trace: Optional[SpikeTrace] = None
        self.post_trace: Optional[SpikeTrace] = None

    # -- trace management ---------------------------------------------------

    def _ensure_traces(self, connection: Connection) -> None:
        """Create the spike traces on first use (sizes come from the connection)."""
        if self.pre_trace is None or self.pre_trace.n != connection.pre.n:
            self.pre_trace = SpikeTrace(connection.pre.n, tau=self.tau_pre,
                                        mode=self.trace_mode,
                                        backend=connection.backend)
        if self.post_trace is None or self.post_trace.n != connection.post.n:
            self.post_trace = SpikeTrace(connection.post.n, tau=self.tau_post,
                                         mode=self.trace_mode,
                                         backend=connection.backend)
        # Follow backend switches (e.g. Network.set_backend after traces
        # were lazily created).
        self.pre_trace.backend = connection.backend
        self.post_trace.backend = connection.backend

    def _update_traces(self, connection: Connection, dt: float,
                       counter: Optional[OperationCounter]) -> None:
        """Decay and bump both traces from the current spike vectors."""
        self._ensure_traces(connection)
        self.pre_trace.step(connection.pre.spikes, dt, counter)
        self.post_trace.step(connection.post.spikes, dt, counter)

    def reset(self) -> None:
        """Clear all rule-internal state (traces and accumulators)."""
        if self.pre_trace is not None:
            self.pre_trace.reset()
        if self.post_trace is not None:
            self.post_trace.reset()

    # -- hooks driven by the network ----------------------------------------

    def on_sample_start(self, connection: Connection) -> None:
        """Called before a sample presentation begins."""
        self._ensure_traces(connection)
        self.pre_trace.reset()
        self.post_trace.reset()

    def step(self, connection: Connection, dt: float, t_index: int,
             counter: Optional[OperationCounter] = None) -> None:
        """Called once per timestep while learning is enabled."""
        raise NotImplementedError

    def on_sample_end(self, connection: Connection,
                      counter: Optional[OperationCounter] = None) -> None:
        """Called after a sample presentation ends (weight normalization)."""
        connection.normalize(counter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

"""Synaptic learning rules.

This package provides the comparison partners used in the paper's
evaluation:

* :class:`~repro.learning.stdp.PairwiseSTDP` — the classic trace-based STDP
  of the Diehl & Cook (2015) baseline, which updates weights at every pre-
  and postsynaptic spike event;
* :class:`~repro.learning.asp.ASPLearningRule` — Adaptive Synaptic Plasticity
  (Panda et al., IEEE JETCAS 2018), the state-of-the-art comparator, which
  adds recency-modulated learning rates and an activity-dependent weight leak
  ("learning to forget").

SpikeDyn's own learning algorithm lives in :mod:`repro.core.learning`.
"""

from repro.learning.asp import ASPLearningRule
from repro.learning.base import LearningRule
from repro.learning.stdp import PairwiseSTDP

__all__ = ["ASPLearningRule", "LearningRule", "PairwiseSTDP"]

"""Adaptive Synaptic Plasticity (ASP) — the state-of-the-art comparator.

ASP (Panda et al., "ASP: Learning to Forget with Adaptive Synaptic Plasticity
in Spiking Neural Networks", IEEE JETCAS 2018) extends trace STDP with two
mechanisms aimed at continual learning:

* **adaptive learning rates** — the potentiation rate of a postsynaptic
  neuron grows with its recent activity, so neurons that respond to the
  currently presented task learn it faster;
* **weight leak ("learning to forget")** — every timestep all weights leak
  exponentially towards a baseline value, with the leak of a neuron's
  incoming weights accelerated by its recent activity, so synapses encoding
  old tasks gradually free up for new ones.

Both mechanisms add exponential computations and per-timestep weight updates
on top of the baseline, which is exactly the energy overhead the SpikeDyn
paper measures in its motivational study (Fig. 1b).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learning.stdp import PairwiseSTDP
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection
from repro.utils.validation import check_non_negative, check_positive


class ASPLearningRule(PairwiseSTDP):
    """Trace STDP with recency-modulated learning rates and weight leak.

    Parameters
    ----------
    nu_pre, nu_post, tau_pre, tau_post, soft_bounds, trace_mode:
        As in :class:`~repro.learning.stdp.PairwiseSTDP`.
    tau_leak:
        Time constant (ms) of the baseline exponential weight leak.
    leak_activity_gain:
        How strongly a postsynaptic neuron's recent activity accelerates the
        leak of its incoming weights (0 disables the activity modulation).
    tau_activity:
        Time constant (ms) of the slow postsynaptic activity trace used for
        both the adaptive learning rate and the activity-modulated leak.
    learning_rate_gain:
        How strongly recent postsynaptic activity boosts the potentiation
        learning rate.
    w_baseline:
        Weight value towards which the leak pulls every synapse.
    """

    # The weight leak runs every timestep, silent or not, so the event
    # engine must step ASP through silent gaps (overrides the PairwiseSTDP
    # opt-in inherited above).
    supports_analytic_silence = False

    def __init__(
        self,
        *,
        nu_pre: float = 1e-4,
        nu_post: float = 1e-2,
        tau_pre: float = 20.0,
        tau_post: float = 20.0,
        soft_bounds: bool = True,
        trace_mode: str = "set",
        tau_leak: float = 2.0e4,
        leak_activity_gain: float = 1.0,
        tau_activity: float = 1.0e3,
        learning_rate_gain: float = 0.5,
        w_baseline: float = 0.0,
    ) -> None:
        super().__init__(
            nu_pre=nu_pre,
            nu_post=nu_post,
            tau_pre=tau_pre,
            tau_post=tau_post,
            soft_bounds=soft_bounds,
            trace_mode=trace_mode,
        )
        self.tau_leak = check_positive(tau_leak, "tau_leak")
        self.leak_activity_gain = check_non_negative(
            leak_activity_gain, "leak_activity_gain"
        )
        self.tau_activity = check_positive(tau_activity, "tau_activity")
        self.learning_rate_gain = check_non_negative(
            learning_rate_gain, "learning_rate_gain"
        )
        self.w_baseline = check_non_negative(w_baseline, "w_baseline")
        self._activity: Optional[np.ndarray] = None

    # -- internal state ------------------------------------------------------

    def _ensure_activity(self, connection: Connection) -> np.ndarray:
        if self._activity is None or self._activity.shape != (connection.post.n,):
            self._activity = np.zeros(connection.post.n, dtype=float)
        return self._activity

    def reset(self) -> None:
        super().reset()
        self._activity = None

    # -- ASP-specific dynamics ------------------------------------------------

    def _update_activity(self, connection: Connection, dt: float,
                         counter: Optional[OperationCounter]) -> np.ndarray:
        """Slow postsynaptic activity trace (decays between spikes)."""
        activity = self._ensure_activity(connection)
        activity *= np.exp(-dt / self.tau_activity)
        activity += connection.post.spikes.astype(float)
        if counter is not None:
            counter.add(exponential_ops=connection.post.n,
                        trace_updates=connection.post.n)
        return activity

    def _apply_leak(self, connection: Connection, dt: float,
                    activity: np.ndarray,
                    counter: Optional[OperationCounter]) -> None:
        """Exponential weight leak, accelerated for recently active neurons."""
        base_decay = dt / self.tau_leak
        per_post_decay = base_decay * (1.0 + self.leak_activity_gain * activity)
        # Clamp so a very active neuron cannot erase its weights in one step.
        per_post_decay = np.clip(per_post_decay, 0.0, 0.5)
        connection.weights -= (
            (connection.weights - self.w_baseline) * per_post_decay[None, :]
        )
        connection.clip_weights()
        if counter is not None:
            counter.add(weight_updates=connection.weights.size,
                        exponential_ops=connection.weights.size)

    def _potentiation(self, connection: Connection,
                      post_spikes: np.ndarray) -> np.ndarray:
        """Potentiation with the recency-modulated learning rate."""
        delta = super()._potentiation(connection, post_spikes)
        if self.learning_rate_gain > 0.0 and self._activity is not None:
            modulation = 1.0 + self.learning_rate_gain * np.tanh(self._activity)
            delta *= modulation[None, :]
        return delta

    def step(self, connection: Connection, dt: float, t_index: int,
             counter: Optional[OperationCounter] = None) -> None:
        activity = self._update_activity(connection, dt, counter)
        super().step(connection, dt, t_index, counter)
        self._apply_leak(connection, dt, activity, counter)

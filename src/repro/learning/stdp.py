"""Pair-based trace STDP (the Diehl & Cook 2015 baseline rule).

Weight changes are applied at *every* spike event:

* when a postsynaptic neuron fires, its incoming weights are potentiated in
  proportion to the presynaptic trace (``+ nu_post * x_pre``), optionally
  scaled by the soft bound ``(w_max - w)``;
* when a presynaptic neuron fires, its outgoing weights are depressed in
  proportion to the postsynaptic trace (``- nu_pre * x_post``).

The per-spike-event nature of these updates is exactly what the SpikeDyn
paper identifies as the source of "spurious updates" (Section III-D); the
baseline keeps it to remain faithful to the original pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learning.base import LearningRule
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection
from repro.utils.validation import check_non_negative


class PairwiseSTDP(LearningRule):
    """Classic pair-based STDP with exponential spike traces.

    Parameters
    ----------
    nu_pre:
        Learning rate of the depression applied on presynaptic spikes.
    nu_post:
        Learning rate of the potentiation applied on postsynaptic spikes.
    tau_pre, tau_post:
        Trace time constants in milliseconds.
    soft_bounds:
        When ``True``, potentiation is scaled by ``(w_max - w)`` and
        depression by ``(w - w_min)``, keeping weights away from the hard
        bounds (the multiplicative variant used by Diehl & Cook).
    trace_mode:
        Spike-trace update mode (``'set'`` or ``'add'``).
    """

    # A spike-free timestep touches nothing but the trace decay (both weight
    # branches below gate on spikes), so the event engine may advance the
    # traces analytically across provably silent gaps.
    supports_analytic_silence = True

    def __init__(
        self,
        *,
        nu_pre: float = 1e-4,
        nu_post: float = 1e-2,
        tau_pre: float = 20.0,
        tau_post: float = 20.0,
        soft_bounds: bool = True,
        trace_mode: str = "set",
    ) -> None:
        super().__init__(tau_pre=tau_pre, tau_post=tau_post, trace_mode=trace_mode)
        self.nu_pre = check_non_negative(nu_pre, "nu_pre")
        self.nu_post = check_non_negative(nu_post, "nu_post")
        self.soft_bounds = bool(soft_bounds)

    # -- weight updates ------------------------------------------------------

    def _potentiation(self, connection: Connection,
                      post_spikes: np.ndarray) -> np.ndarray:
        """Weight increment triggered by the postsynaptic spikes."""
        return connection.backend.stdp_potentiation(
            self.pre_trace.values,
            post_spikes,
            connection.weights,
            nu=self.nu_post,
            w_max=connection.w_max,
            soft_bounds=self.soft_bounds,
        )

    def _depression(self, connection: Connection,
                    pre_spikes: np.ndarray) -> np.ndarray:
        """Weight decrement triggered by the presynaptic spikes."""
        return connection.backend.stdp_depression(
            pre_spikes,
            self.post_trace.values,
            connection.weights,
            nu=self.nu_pre,
            w_min=connection.w_min,
            soft_bounds=self.soft_bounds,
        )

    def step(self, connection: Connection, dt: float, t_index: int,
             counter: Optional[OperationCounter] = None) -> None:
        self._update_traces(connection, dt, counter)

        pre_spikes = connection.pre.spikes
        post_spikes = connection.post.spikes

        if post_spikes.any() and self.nu_post > 0.0:
            connection.apply_weight_delta(
                self._potentiation(connection, post_spikes), counter
            )
        if pre_spikes.any() and self.nu_pre > 0.0:
            connection.apply_weight_delta(
                self._depression(connection, pre_spikes), counter
            )

"""Stdlib client for the serving API: typed errors, jittered retries.

:class:`ServingClient` speaks the versioned ``/v1`` surface of
:class:`~repro.serving.server.ModelServer` (and the deprecated pre-1.7
aliases when no model name is given) using nothing but ``urllib``.  The
server's structured error envelope::

    {"error": {"code": "rate_limited", "message": "...", "detail": {...}}}

is mirrored one-to-one into the exception hierarchy below, so callers
dispatch on types instead of parsing prose, and ``Retry-After`` headers are
honoured by the built-in retry loop: retryable failures (429s, 503s, and
transport errors) are re-attempted up to ``retries`` times with jittered
exponential backoff before the typed error reaches the caller.

Example
-------
::

    client = ServingClient("http://127.0.0.1:8000")
    body = client.predict(image, seed=7, model="mnist")
    body["prediction"]           # int
    client.models()              # catalogue of served models
    client.health("mnist")       # per-model health payload
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.observability.prometheus import parse_prometheus_text
from repro.observability.tracing import TRACE_HEADER
from repro.serving.errors import (
    CODE_CIRCUIT_OPEN,
    CODE_INTERNAL,
    CODE_INVALID_REQUEST,
    CODE_NOT_FOUND,
    CODE_PAYLOAD_TOO_LARGE,
    CODE_QUEUE_FULL,
    CODE_RATE_LIMITED,
    CODE_SHUTTING_DOWN,
    CODE_TIMEOUT,
    CODE_UPSTREAM_FAILURE,
)

__all__ = [
    "ServingClient",
    "ServingClientError",
    "ServingAPIError",
    "ClientInvalidRequestError",
    "ClientNotFoundError",
    "ClientRateLimitedError",
    "ClientUnavailableError",
    "ClientTimeoutError",
    "TransportError",
]


class ServingClientError(Exception):
    """Base class of everything :class:`ServingClient` raises."""


class TransportError(ServingClientError):
    """The server could not be reached (connection refused, reset, DNS)."""


class ServingAPIError(ServingClientError):
    """A structured error envelope returned by the server.

    Attributes mirror the envelope: ``code``, ``message``, ``detail``, plus
    the HTTP ``status`` and the parsed ``retry_after_s`` when the response
    carried a ``Retry-After`` header.
    """

    #: Envelope codes this class (and subclasses) are responsible for.
    codes: Sequence[str] = ()
    #: Whether the failure is worth retrying automatically.
    retryable = False

    def __init__(self, code: str, message: str, *, status: int,
                 detail: Optional[dict] = None,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.status = int(status)
        self.detail = detail
        self.retry_after_s = retry_after_s


class ClientInvalidRequestError(ServingAPIError):
    """The request was malformed (bad image, bad seed, oversized body)."""

    codes = (CODE_INVALID_REQUEST, CODE_PAYLOAD_TOO_LARGE)


class ClientNotFoundError(ServingAPIError):
    """Unknown route, model, or model version."""

    codes = (CODE_NOT_FOUND,)


class ClientRateLimitedError(ServingAPIError):
    """Shed by rate limiting or queue backpressure (HTTP 429)."""

    codes = (CODE_RATE_LIMITED, CODE_QUEUE_FULL)
    retryable = True


class ClientUnavailableError(ServingAPIError):
    """Transient server-side unavailability (HTTP 5xx worth retrying)."""

    codes = (CODE_CIRCUIT_OPEN, CODE_SHUTTING_DOWN, CODE_UPSTREAM_FAILURE,
             CODE_INTERNAL)
    retryable = True


class ClientTimeoutError(ServingAPIError):
    """The server gave up waiting for a worker (HTTP 504)."""

    codes = (CODE_TIMEOUT,)
    retryable = True


_CODE_CLASSES: Dict[str, type] = {
    code: cls
    for cls in (ClientInvalidRequestError, ClientNotFoundError,
                ClientRateLimitedError, ClientUnavailableError,
                ClientTimeoutError)
    for code in cls.codes
}


def _error_from_response(status: int, body: bytes,
                         retry_after: Optional[str]) -> ServingAPIError:
    """Typed exception for an HTTP error response (envelope or not)."""
    code: Optional[str] = None
    message = body.decode("utf-8", "replace").strip() or f"HTTP {status}"
    detail: Optional[dict] = None
    try:
        payload = json.loads(body.decode("utf-8"))
        envelope = payload.get("error") if isinstance(payload, dict) else None
        if isinstance(envelope, dict):
            code = str(envelope.get("code", CODE_INTERNAL))
            message = str(envelope.get("message", message))
            detail = envelope.get("detail")
        elif isinstance(envelope, str):  # pre-1.7 servers: {"error": "..."}
            message = envelope
    except (ValueError, UnicodeDecodeError):
        pass
    retry_after_s: Optional[float] = None
    if retry_after is not None:
        try:
            retry_after_s = float(retry_after)
        except ValueError:
            pass
    cls = _CODE_CLASSES.get(code) if code is not None else None
    if cls is None:
        # No (known) code in the body: classify by HTTP status alone.
        if status >= 500:
            cls, fallback_code = ClientUnavailableError, CODE_INTERNAL
        elif status == 429:
            cls, fallback_code = ClientRateLimitedError, CODE_RATE_LIMITED
        elif status == 404:
            cls, fallback_code = ClientNotFoundError, CODE_NOT_FOUND
        else:
            cls, fallback_code = ClientInvalidRequestError, CODE_INVALID_REQUEST
        if code is None:
            code = fallback_code
    return cls(code, message, status=status, detail=detail,
               retry_after_s=retry_after_s)


class ServingClient:
    """HTTP client for one serving endpoint.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``"http://127.0.0.1:8000"``.
    timeout:
        Socket timeout per HTTP attempt, seconds.
    retries:
        Automatic re-attempts for retryable failures (429/5xx/transport).
        ``0`` disables retrying entirely.
    backoff_s, backoff_max_s:
        Jittered exponential backoff between attempts: attempt ``k`` sleeps
        ``min(backoff_s * 2**k, backoff_max_s)`` scaled by a uniform random
        factor in ``[0.5, 1.5)`` — unless the server's ``Retry-After`` is
        larger, which wins.
    tenant:
        Value of the ``X-Tenant`` header on every request (rate-limiting
        identity); ``None`` sends no header.
    sleep, rng:
        Injectable backoff primitives (tests pass fakes).
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 retries: int = 2, backoff_s: float = 0.1,
                 backoff_max_s: float = 2.0,
                 tenant: Optional[str] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self.tenant = tenant
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # -- transport -----------------------------------------------------------

    def _attempt(self, method: str, path: str,
                 payload: Optional[dict],
                 extra_headers: Optional[Dict[str, str]] = None) -> dict:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Tenant"] = str(self.tenant)
        if extra_headers:
            headers.update(extra_headers)
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as error:
            raise _error_from_response(
                error.code, error.read(), error.headers.get("Retry-After")
            ) from None
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise TransportError(
                f"{method} {path} against {self.base_url} failed: {error}"
            ) from error
        if content_type.startswith("application/json"):
            return json.loads(body.decode("utf-8"))
        return {"text": body.decode("utf-8")}

    def request(self, method: str, path: str,
                payload: Optional[dict] = None,
                headers: Optional[Dict[str, str]] = None) -> dict:
        """One API call with the retry policy applied."""
        last: Optional[ServingClientError] = None
        for attempt in range(self.retries + 1):
            try:
                return self._attempt(method, path, payload, headers)
            except TransportError as error:
                last = error
            except ServingAPIError as error:
                if not error.retryable:
                    raise
                last = error
            if attempt >= self.retries:
                break
            backoff = min(self.backoff_s * (2 ** attempt), self.backoff_max_s)
            backoff *= 0.5 + self._rng.random()
            retry_after = getattr(last, "retry_after_s", None)
            if retry_after is not None:
                backoff = max(backoff, float(retry_after))
            self._sleep(backoff)
        assert last is not None
        raise last

    # -- API surface ---------------------------------------------------------

    @staticmethod
    def _predict_path(model: Optional[str], version) -> str:
        if model is None:
            return "/predict"  # deprecated single-model alias
        if version is None:
            return f"/v1/models/{model}/predict"
        if isinstance(version, int):
            version = f"v{version}"
        return f"/v1/models/{model}/versions/{version}/predict"

    def predict(self, image, seed: Optional[int] = None, *,
                model: Optional[str] = None,
                version: Union[int, str, None] = None,
                trace_id: Optional[str] = None) -> dict:
        """One prediction; returns the full response body.

        ``model=None`` uses the deprecated single-model alias (the server's
        default model); otherwise the versioned ``/v1`` route is used.
        ``image`` is any nested sequence of pixel intensities.
        ``trace_id`` sends the ``X-Repro-Trace-Id`` header, activating
        server-side distributed tracing for this request; the response body
        then carries the same id back as ``"trace_id"``.
        """
        if hasattr(image, "tolist"):
            image = image.tolist()
        payload: Dict[str, object] = {"image": image}
        if seed is not None:
            payload["seed"] = int(seed)
        headers = {TRACE_HEADER: str(trace_id)} if trace_id is not None else None
        return self.request("POST", self._predict_path(model, version),
                            payload, headers)

    def models(self) -> List[dict]:
        """The server's model catalogue (``GET /v1/models``)."""
        return self.request("GET", "/v1/models")["models"]

    def health(self, model: Optional[str] = None) -> dict:
        """Server health (``/v1/healthz``) or one model's health."""
        if model is None:
            return self.request("GET", "/v1/healthz")
        return self.request("GET", f"/v1/models/{model}/healthz")

    def metrics_json(self) -> dict:
        """All models' metrics snapshots (``GET /v1/metrics.json``)."""
        return self.request("GET", "/v1/metrics.json")

    def metrics_text(self) -> str:
        """The Prometheus exposition document (``GET /v1/metrics``)."""
        return self.request("GET", "/v1/metrics")["text"]

    def metrics_prometheus(self) -> Dict[str, Dict]:
        """Fetched *and parsed* Prometheus metrics, keyed by family name.

        Fetches ``GET /v1/metrics`` and validates it through
        :func:`repro.observability.prometheus.parse_prometheus_text` — a
        malformed document (bad sample line, duplicate metric family)
        raises ``ValueError`` instead of returning garbage.
        """
        return parse_prometheus_text(self.metrics_text())

    def wait_until_healthy(self, timeout: float = 30.0,
                           interval: float = 0.2) -> dict:
        """Poll ``GET /v1/healthz`` until it answers or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self._attempt("GET", "/v1/healthz", None)
            except ServingClientError as error:
                last = error
                self._sleep(interval)
        raise TimeoutError(
            f"server at {self.base_url} did not become healthy within "
            f"{timeout:.0f} s (last error: {last})"
        )

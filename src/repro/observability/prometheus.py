"""Prometheus text exposition rendering (and a validating parser).

:func:`render_prometheus` turns a
:class:`~repro.serving.metrics.ServingMetrics` snapshot (the JSON form
served on ``GET /metrics.json``) into the Prometheus text exposition
format (version 0.0.4) served on ``GET /metrics``:

* scalar totals become ``counter`` samples;
* queue depth, uptime, window sizes, and latency quantiles become
  ``gauge`` samples;
* the batch-size histogram becomes a proper cumulative ``histogram``
  (``_bucket{le=...}`` / ``_sum`` / ``_count``);
* the deployment's backend/model identity is exposed as an info-style
  gauge with labels (``repro_serving_info{backend="dense"} 1``).

Everything is stdlib string formatting — no client library.  The inverse,
:func:`parse_prometheus_text`, is a strict line-level parser used by the
CI serving smoke test and the endpoint tests to prove the output is
well-formed.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Content type of the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix of every exported metric.
METRIC_PREFIX = "repro_serving"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
_QUANTILE_KEY = re.compile(r"^p\d+(?:\.\d+)?_ms$")

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape_label_value(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never produced by snapshots
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Families:
    """Accumulates samples grouped by metric family, in first-touch order.

    The exposition format requires all samples of one family to sit under a
    single ``# HELP``/``# TYPE`` header pair — interleaving families (as a
    naive per-model loop over a line writer would) is malformed.  Collecting
    into families first makes the multi-model rendering correct by
    construction, and for a single unlabeled snapshot the emitted text is
    byte-identical to the historical line-writer output.
    """

    def __init__(self) -> None:
        self._families: "Dict[str, Dict[str, Any]]" = {}
        self._order: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> Dict[str, Any]:
        entry = self._families.get(name)
        if entry is None:
            entry = {"kind": kind, "help": help_text, "samples": []}
            self._families[name] = entry
            self._order.append(name)
        return entry

    def sample(self, name: str, kind: str, help_text: str, value: float,
               labels: Optional[Mapping[str, str]] = None) -> None:
        self.family(name, kind, help_text)["samples"].append(
            (dict(labels) if labels else None, float(value))
        )

    def text(self) -> str:
        lines: List[str] = []
        for name in self._order:
            family = self._families[name]
            base = name
            # Histogram/summary child samples (_bucket/_sum/_count) share
            # the parent family header.
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            if base == name or base not in self._families:
                lines.append(f"# HELP {name} {family['help']}")
                lines.append(f"# TYPE {name} {family['kind']}")
            for labels, value in family["samples"]:
                if labels:
                    parts = [f'{key}="{_escape_label_value(val)}"'
                             for key, val in labels.items()]
                    lines.append(f"{name}{{{','.join(parts)}}} {_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def _collect(out: _Families, snapshot: Mapping[str, Any], prefix: str,
             base: Optional[Mapping[str, str]]) -> None:
    """Append one snapshot's samples (labeled with ``base``) to ``out``."""

    def labeled(extra: Optional[Mapping[str, str]] = None) -> Optional[Dict[str, str]]:
        if not base and not extra:
            return None
        merged: Dict[str, str] = dict(base) if base else {}
        if extra:
            merged.update(extra)
        return merged

    counters = (
        ("requests_total", "Requests accepted into the queue."),
        ("responses_total", "Requests answered by a worker."),
        ("errors_total", "Requests failed inside a worker."),
        ("rejected_total", "Requests shed by backpressure or validation."),
        ("batches_total", "Micro-batches executed."),
    )
    for key, help_text in counters:
        if key in snapshot:
            out.sample(f"{prefix}_{key}", "counter", help_text,
                       float(snapshot[key]), labeled())

    if "uptime_s" in snapshot:
        out.sample(f"{prefix}_uptime_seconds", "gauge",
                   "Seconds since the metrics sink started.",
                   float(snapshot["uptime_s"]), labeled())
    if "queue_depth" in snapshot:
        out.sample(f"{prefix}_queue_depth", "gauge",
                   "Requests currently waiting in the queue.",
                   float(snapshot["queue_depth"]), labeled())
    if "mean_batch_size" in snapshot:
        out.sample(f"{prefix}_mean_batch_size", "gauge",
                   "Mean executed micro-batch size.",
                   float(snapshot["mean_batch_size"]), labeled())

    histogram = snapshot.get("batch_size_histogram")
    if isinstance(histogram, Mapping) and histogram:
        name = f"{prefix}_batch_size"
        help_text = "Distribution of executed micro-batch sizes."
        out.family(name, "histogram", help_text)  # header-only parent
        sizes = sorted((int(size), int(count)) for size, count in histogram.items())
        cumulative = 0
        total = 0.0
        for size, count in sizes:
            cumulative += count
            total += size * count
            out.sample(f"{name}_bucket", "histogram", help_text, cumulative,
                       labeled({"le": str(size)}))
        out.sample(f"{name}_bucket", "histogram", help_text, cumulative,
                   labeled({"le": "+Inf"}))
        out.sample(f"{name}_sum", "histogram", help_text, total, labeled())
        out.sample(f"{name}_count", "histogram", help_text, cumulative, labeled())

    latency = snapshot.get("latency")
    if isinstance(latency, Mapping):
        out.sample(f"{prefix}_latency_window", "gauge",
                   "Requests in the rolling latency window.",
                   float(latency.get("window", 0.0)), labeled())
        quantile_keys = sorted(key for key in latency if _QUANTILE_KEY.match(key))
        for key in quantile_keys:
            quantile = float(key[1:-3]) / 100.0
            out.sample(f"{prefix}_latency_ms", "gauge",
                       "Request latency quantiles over the rolling window (ms).",
                       float(latency[key]), labeled({"quantile": f"{quantile:g}"}))
        for key, label in (("mean_ms", "Mean"), ("max_ms", "Max")):
            if key in latency:
                out.sample(f"{prefix}_latency_{key[:-3]}_ms", "gauge",
                           f"{label} request latency over the rolling window (ms).",
                           float(latency[key]), labeled())

    drift = snapshot.get("drift")
    if isinstance(drift, Mapping):
        for key, value in sorted(drift.items()):
            if isinstance(value, bool):
                value = float(value)
            if not isinstance(value, (int, float)):
                continue
            out.sample(f"{prefix}_drift_{key}", "gauge",
                       f"Spike-count drift detector field {key!r}.",
                       float(value), labeled())

    # Router/shard hardening series (absent from plain pool snapshots, so
    # historical single-model output is unchanged).
    hardening = (
        ("rate_limited_total", "counter",
         "Requests rejected by per-tenant rate limiting."),
        ("shed_total", "counter",
         "Requests shed by the model's open circuit breaker."),
        ("retries_total", "counter",
         "Transparent retries after transient shard failures."),
    )
    for key, kind, help_text in hardening:
        if key in snapshot:
            out.sample(f"{prefix}_{key}", kind, help_text,
                       float(snapshot[key]), labeled())

    shards = snapshot.get("shards")
    if isinstance(shards, Mapping):
        out.sample(f"{prefix}_shards", "gauge",
                   "Configured worker-process shards.",
                   float(shards.get("count", 0)), labeled())
        out.sample(f"{prefix}_shards_alive", "gauge",
                   "Worker-process shards currently alive.",
                   float(shards.get("alive", 0)), labeled())
        out.sample(f"{prefix}_shard_respawns_total", "counter",
                   "Crashed shards respawned by the supervisor.",
                   float(shards.get("respawns_total", 0)), labeled())

    circuit = snapshot.get("circuit")
    if isinstance(circuit, Mapping):
        out.sample(f"{prefix}_circuit_breaker_open", "gauge",
                   "1 while the model's circuit breaker is not closed.",
                   0.0 if circuit.get("state") == "closed" else 1.0, labeled())
        out.sample(f"{prefix}_circuit_breaker_opened_total", "counter",
                   "Times the model's circuit breaker opened.",
                   float(circuit.get("opened_total", 0)), labeled())

    info_labels: Dict[str, str] = {}
    for key in ("backend", "model"):
        if snapshot.get(key) is not None:
            info_labels[key] = str(snapshot[key])
    if info_labels:
        if base and "model" in base:
            # The base "model" label is the serving entry key; keep the
            # artifact's model identity under a distinct label name.
            info_labels["model_class"] = info_labels.pop("model")
        out.sample(f"{prefix}_info", "gauge",
                   "Deployment identity (constant 1; identity in labels).",
                   1.0, labeled(info_labels))


def render_prometheus(snapshot: Mapping[str, Any], prefix: str = METRIC_PREFIX) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    ``snapshot`` is the dictionary produced by
    :meth:`repro.serving.metrics.ServingMetrics.snapshot` /
    :meth:`repro.serving.pool.ReplicaPool.metrics_snapshot`; unknown keys
    are ignored, missing keys are simply not exported, so the renderer
    tolerates both bare-metrics and pool-level snapshots.
    """
    out = _Families()
    _collect(out, snapshot, prefix, None)
    return out.text()


def render_prometheus_multi(snapshots: Mapping[str, Mapping[str, Any]],
                            prefix: str = METRIC_PREFIX) -> str:
    """Render many per-model snapshots into one exposition document.

    ``snapshots`` maps a serving entry key (``name`` or ``name@v000N``) to
    that model's metrics snapshot; every sample carries a ``model`` label
    with the key, and each family appears exactly once however many models
    contribute to it.
    """
    out = _Families()
    for key, snapshot in snapshots.items():
        _collect(out, snapshot, prefix, {"model": str(key)})
    return out.text()


def parse_prometheus_text(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse (and thereby validate) Prometheus text exposition format.

    Returns ``{metric_name: {((label, value), ...): sample_value}}``.

    Samples with no preceding ``# TYPE`` header (untyped "info" lines, as
    some exporters emit) are accepted — any number of them.  What is *not*
    accepted is the same metric family declared twice: a second ``# TYPE``
    for a name already typed means the document interleaves families, which
    Prometheus itself rejects at scrape time.

    Raises
    ------
    ValueError
        If any non-empty line is neither a ``# HELP``/``# TYPE`` header
        nor a well-formed ``name{labels} value`` sample, if a ``# TYPE``
        names an unknown type, if a metric family is declared by ``# TYPE``
        more than once, or if a sample value is not a number.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    typed_families: Dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: comment is neither # HELP nor # TYPE: {raw!r}")
            if not _METRIC_NAME.match(parts[2]):
                raise ValueError(f"line {lineno}: invalid metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3].split()[0] not in _TYPES:
                    raise ValueError(f"line {lineno}: invalid metric type in {raw!r}")
                family = parts[2]
                if family in typed_families:
                    raise ValueError(
                        f"line {lineno}: duplicate metric family {family!r} "
                        f"(# TYPE already declared on line "
                        f"{typed_families[family]}; all samples of a family "
                        "must sit under a single header)"
                    )
                typed_families[family] = lineno
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample line {raw!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            for part in _split_labels(label_text, lineno):
                label_match = _LABEL.match(part)
                if not label_match:
                    raise ValueError(f"line {lineno}: malformed label {part!r}")
                labels[label_match.group("key")] = label_match.group("value")
        value_text = match.group("value")
        if value_text in ("+Inf", "Inf"):
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: sample value {value_text!r} is not a number"
                ) from None
        key = tuple(sorted(labels.items()))
        samples.setdefault(match.group("name"), {})[key] = value
    return samples


def _split_labels(label_text: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in label_text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return [part for part in parts if part]

"""Prometheus text exposition rendering (and a validating parser).

:func:`render_prometheus` turns a
:class:`~repro.serving.metrics.ServingMetrics` snapshot (the JSON form
served on ``GET /metrics.json``) into the Prometheus text exposition
format (version 0.0.4) served on ``GET /metrics``:

* scalar totals become ``counter`` samples;
* queue depth, uptime, window sizes, and latency quantiles become
  ``gauge`` samples;
* the batch-size histogram becomes a proper cumulative ``histogram``
  (``_bucket{le=...}`` / ``_sum`` / ``_count``);
* the deployment's backend/model identity is exposed as an info-style
  gauge with labels (``repro_serving_info{backend="dense"} 1``).

Everything is stdlib string formatting — no client library.  The inverse,
:func:`parse_prometheus_text`, is a strict line-level parser used by the
CI serving smoke test and the endpoint tests to prove the output is
well-formed.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Content type of the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix of every exported metric.
METRIC_PREFIX = "repro_serving"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
_QUANTILE_KEY = re.compile(r"^p\d+(?:\.\d+)?_ms$")

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _escape_label_value(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never produced by snapshots
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    """Accumulates HELP/TYPE/sample lines in exposition order."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value: float, labels: Optional[Mapping[str, str]] = None) -> None:
        if labels:
            parts = [f'{key}="{_escape_label_value(val)}"' for key, val in labels.items()]
            rendered = ",".join(parts)
            self.lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            self.lines.append(f"{name} {_format_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: Mapping[str, Any], prefix: str = METRIC_PREFIX) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    ``snapshot`` is the dictionary produced by
    :meth:`repro.serving.metrics.ServingMetrics.snapshot` /
    :meth:`repro.serving.pool.ReplicaPool.metrics_snapshot`; unknown keys
    are ignored, missing keys are simply not exported, so the renderer
    tolerates both bare-metrics and pool-level snapshots.
    """
    out = _Writer()

    counters = (
        ("requests_total", "Requests accepted into the queue."),
        ("responses_total", "Requests answered by a worker."),
        ("errors_total", "Requests failed inside a worker."),
        ("rejected_total", "Requests shed by backpressure or validation."),
        ("batches_total", "Micro-batches executed."),
    )
    for key, help_text in counters:
        if key in snapshot:
            name = f"{prefix}_{key}"
            out.header(name, "counter", help_text)
            out.sample(name, float(snapshot[key]))

    if "uptime_s" in snapshot:
        name = f"{prefix}_uptime_seconds"
        out.header(name, "gauge", "Seconds since the metrics sink started.")
        out.sample(name, float(snapshot["uptime_s"]))
    if "queue_depth" in snapshot:
        name = f"{prefix}_queue_depth"
        out.header(name, "gauge", "Requests currently waiting in the queue.")
        out.sample(name, float(snapshot["queue_depth"]))
    if "mean_batch_size" in snapshot:
        name = f"{prefix}_mean_batch_size"
        out.header(name, "gauge", "Mean executed micro-batch size.")
        out.sample(name, float(snapshot["mean_batch_size"]))

    histogram = snapshot.get("batch_size_histogram")
    if isinstance(histogram, Mapping) and histogram:
        name = f"{prefix}_batch_size"
        out.header(name, "histogram", "Distribution of executed micro-batch sizes.")
        sizes = sorted((int(size), int(count)) for size, count in histogram.items())
        cumulative = 0
        total = 0.0
        for size, count in sizes:
            cumulative += count
            total += size * count
            out.sample(f"{name}_bucket", cumulative, {"le": str(size)})
        out.sample(f"{name}_bucket", cumulative, {"le": "+Inf"})
        out.sample(f"{name}_sum", total)
        out.sample(f"{name}_count", cumulative)

    latency = snapshot.get("latency")
    if isinstance(latency, Mapping):
        name = f"{prefix}_latency_window"
        out.header(name, "gauge", "Requests in the rolling latency window.")
        out.sample(name, float(latency.get("window", 0.0)))
        quantile_keys = sorted(key for key in latency if _QUANTILE_KEY.match(key))
        if quantile_keys:
            name = f"{prefix}_latency_ms"
            out.header(name, "gauge", "Request latency quantiles over the rolling window (ms).")
            for key in quantile_keys:
                quantile = float(key[1:-3]) / 100.0
                out.sample(name, float(latency[key]), {"quantile": f"{quantile:g}"})
        for key, label in (("mean_ms", "Mean"), ("max_ms", "Max")):
            if key in latency:
                name = f"{prefix}_latency_{key[:-3]}_ms"
                out.header(name, "gauge", f"{label} request latency over the rolling window (ms).")
                out.sample(name, float(latency[key]))

    drift = snapshot.get("drift")
    if isinstance(drift, Mapping):
        for key, value in sorted(drift.items()):
            if isinstance(value, bool):
                value = float(value)
            if not isinstance(value, (int, float)):
                continue
            name = f"{prefix}_drift_{key}"
            out.header(name, "gauge", f"Spike-count drift detector field {key!r}.")
            out.sample(name, float(value))

    info_labels: Dict[str, str] = {}
    for key in ("backend", "model"):
        if snapshot.get(key) is not None:
            info_labels[key] = str(snapshot[key])
    if info_labels:
        name = f"{prefix}_info"
        out.header(name, "gauge", "Deployment identity (constant 1; identity in labels).")
        out.sample(name, 1.0, info_labels)

    return out.text()


def parse_prometheus_text(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse (and thereby validate) Prometheus text exposition format.

    Returns ``{metric_name: {((label, value), ...): sample_value}}``.

    Raises
    ------
    ValueError
        If any non-empty line is neither a ``# HELP``/``# TYPE`` header
        nor a well-formed ``name{labels} value`` sample, if a ``# TYPE``
        names an unknown type, or if a sample value is not a number.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: comment is neither # HELP nor # TYPE: {raw!r}")
            if not _METRIC_NAME.match(parts[2]):
                raise ValueError(f"line {lineno}: invalid metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3].split()[0] not in _TYPES:
                    raise ValueError(f"line {lineno}: invalid metric type in {raw!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample line {raw!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            for part in _split_labels(label_text, lineno):
                label_match = _LABEL.match(part)
                if not label_match:
                    raise ValueError(f"line {lineno}: malformed label {part!r}")
                labels[label_match.group("key")] = label_match.group("value")
        value_text = match.group("value")
        if value_text in ("+Inf", "Inf"):
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: sample value {value_text!r} is not a number"
                ) from None
        key = tuple(sorted(labels.items()))
        samples.setdefault(match.group("name"), {})[key] = value
    return samples


def _split_labels(label_text: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in label_text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return [part for part in parts if part]

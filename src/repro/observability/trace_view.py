"""Reconstruct cross-process span trees from the ledger's span records.

Every :class:`~repro.observability.tracing.Span` lands in the
:class:`~repro.observability.ledger.RunLedger` as one ``kind="span"`` entry,
so the ledger doubles as the trace store: this module turns those flat
records back into the tree a request or job traversed — HTTP handler span
in the server process, RPC spans per shard attempt, encode/kernel spans in
the shard worker — with per-phase latency and the pid each phase ran in.

``repro trace show <trace_id>`` and ``repro trace slowest`` are thin CLI
wrappers over :func:`format_trace` and :func:`slowest_traces`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.observability.ledger import RunLedger
from repro.observability.tracing import KIND_SPAN


class SpanNode:
    """One span record plus its resolved children, ordered as recorded."""

    __slots__ = ("record", "children")

    def __init__(self, record: Dict[str, Any]) -> None:
        self.record = record
        self.children: List["SpanNode"] = []

    @property
    def span_id(self) -> Optional[str]:
        return self.record.get("span_id")

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def duration_ms(self) -> float:
        try:
            return float(self.record.get("duration_ms", 0.0))
        except (TypeError, ValueError):
            return 0.0

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def trace_spans(ledger: RunLedger, trace_id: str) -> List[Dict[str, Any]]:
    """All span records of ``trace_id``, in ledger (i.e. wall-clock) order."""
    return [
        entry for entry in ledger.entries()
        if entry.get("kind") == KIND_SPAN and entry.get("trace_id") == trace_id
    ]


def build_trace_tree(spans: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Span records → forest of :class:`SpanNode` roots.

    A span is a root when it has no ``parent_span_id`` or its parent never
    landed in the ledger (e.g. the parent process died before recording) —
    orphans surface at top level instead of disappearing.  Duplicate span
    ids (impossible by construction, tolerated by policy) keep the first
    record.
    """
    nodes: Dict[str, SpanNode] = {}
    ordered: List[SpanNode] = []
    for record in spans:
        span_id = record.get("span_id")
        if not span_id or span_id in nodes:
            continue
        node = SpanNode(record)
        nodes[span_id] = node
        ordered.append(node)
    roots: List[SpanNode] = []
    for node in ordered:
        parent_id = node.record.get("parent_span_id")
        parent = nodes.get(parent_id) if parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def trace_summary(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate facts about one trace (span count, pids, total duration)."""
    roots = build_trace_tree(spans)
    pids = sorted({span.get("pid") for span in spans if span.get("pid") is not None})
    return {
        "spans": len(spans),
        "pids": pids,
        "processes": len(pids),
        "roots": len(roots),
        "total_ms": round(sum(node.duration_ms for node in roots), 3),
    }


def _format_node(node: SpanNode, prefix: str, is_last: bool,
                 lines: List[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    record = node.record
    extras = [f"{node.duration_ms:.3f} ms", f"pid={record.get('pid', '?')}"]
    if record.get("retry"):
        extras.append(f"retry={record['retry']}")
    for key in ("shard", "batch_size", "shared_batch", "experiment", "error"):
        if key in record:
            extras.append(f"{key}={record[key]}")
    lines.append(f"{prefix}{connector}{node.name}  [{', '.join(extras)}]")
    child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(node.children):
        _format_node(child, child_prefix, index == len(node.children) - 1, lines)


def format_trace(ledger: RunLedger, trace_id: str) -> str:
    """Human-readable tree of one trace, or a not-found message."""
    spans = trace_spans(ledger, trace_id)
    if not spans:
        return f"trace {trace_id}: no spans recorded"
    summary = trace_summary(spans)
    lines = [
        f"trace {trace_id}: {summary['spans']} spans across "
        f"{summary['processes']} processes (pids {summary['pids']}), "
        f"{summary['total_ms']:.3f} ms total",
    ]
    roots = build_trace_tree(spans)
    for index, root in enumerate(roots):
        _format_node(root, "", index == len(roots) - 1, lines)
    return "\n".join(lines)


def slowest_traces(ledger: RunLedger, limit: int = 10) -> List[Dict[str, Any]]:
    """The ``limit`` traces with the largest summed root-span duration.

    Returns one summary dict per trace (``trace_id``, ``total_ms``,
    ``spans``, ``processes``, ``root``), slowest first.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for entry in ledger.entries():
        if entry.get("kind") != KIND_SPAN:
            continue
        trace_id = entry.get("trace_id")
        if not trace_id:
            continue
        by_trace.setdefault(str(trace_id), []).append(entry)
    summaries = []
    for trace_id, spans in by_trace.items():
        summary = trace_summary(spans)
        roots = build_trace_tree(spans)
        summary["trace_id"] = trace_id
        summary["root"] = roots[0].name if roots else "?"
        summaries.append(summary)
    summaries.sort(key=lambda item: (-item["total_ms"], item["trace_id"]))
    return summaries[: max(0, int(limit))]

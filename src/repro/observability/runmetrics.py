"""Runner-side metrics: scrape-based monitoring of long ``run-all`` campaigns.

:class:`RunnerMetrics` is the scheduler's counterpart of
:class:`~repro.serving.metrics.ServingMetrics`: a thread-safe sink the
:class:`~repro.runner.scheduler.ParallelRunner` feeds job transitions into —
jobs started/completed/failed/timed-out, cache and manifest shortcuts,
queue depth, in-flight workers, and per-experiment latency quantiles over a
bounded window.

:class:`RunnerMetricsServer` exposes the sink over HTTP (``GET /metrics`` in
Prometheus text exposition 0.0.4, ``GET /metrics.json`` as raw JSON) so a
multi-hour campaign can be watched by the same scrape stack as the serving
tier; ``repro run-all --metrics-port N`` wires it up.  Everything is stdlib
plus numpy for the quantiles — no client library, same as the serving side.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, Optional, Tuple

import numpy as np

from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    _Families,
)
from repro.utils.validation import check_positive_int

#: Prefix of every exported runner metric.
RUNNER_METRIC_PREFIX = "repro_runner"

#: Per-experiment latency quantiles reported by :meth:`RunnerMetrics.snapshot`.
RUNNER_LATENCY_QUANTILES = (50, 95)


class RunnerMetrics:
    """Aggregate job statistics of one scheduler run (thread-safe)."""

    def __init__(self, latency_window: int = 1024) -> None:
        self.latency_window = check_positive_int(latency_window, "latency_window")
        self._lock = threading.Lock()
        self._started_at = time.time()
        self._jobs_started = 0
        self._completed = 0
        self._failed = 0
        self._timeout = 0
        self._cached = 0
        self._resumed = 0
        self._queue_depth = 0
        self._running = 0
        self._workers = 0
        self._elapsed_by_experiment: Dict[str, Deque[float]] = {}

    # -- recording (called by the scheduler) ---------------------------------

    def set_workers(self, workers: int) -> None:
        with self._lock:
            self._workers = int(workers)

    def set_progress(self, queue_depth: int, running: int) -> None:
        """Current pending-job count and in-flight worker count."""
        with self._lock:
            self._queue_depth = int(queue_depth)
            self._running = int(running)

    def record_started(self) -> None:
        with self._lock:
            self._jobs_started += 1

    def record_finished(self, record: Any) -> None:
        """One terminal job record (executed, cached, or resumed)."""
        source = getattr(record, "source", "run")
        status = getattr(record, "status", "?")
        with self._lock:
            if source == "cache":
                self._cached += 1
                return
            if source == "manifest":
                self._resumed += 1
                return
            if status == "completed":
                self._completed += 1
            elif status == "timeout":
                self._timeout += 1
            else:
                self._failed += 1
            experiment = str(getattr(record, "experiment", "?"))
            window = self._elapsed_by_experiment.get(experiment)
            if window is None:
                window = deque(maxlen=self.latency_window)
                self._elapsed_by_experiment[experiment] = window
            window.append(float(getattr(record, "elapsed", 0.0)))

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every metric (the ``/metrics.json`` payload)."""
        with self._lock:
            snapshot: Dict[str, Any] = {
                "uptime_s": time.time() - self._started_at,
                "jobs_started_total": self._jobs_started,
                "jobs_completed_total": self._completed,
                "jobs_failed_total": self._failed,
                "jobs_timeout_total": self._timeout,
                "jobs_cached_total": self._cached,
                "jobs_resumed_total": self._resumed,
                "queue_depth": self._queue_depth,
                "running": self._running,
                "workers": self._workers,
            }
            elapsed = {name: np.asarray(window, dtype=float)
                       for name, window in self._elapsed_by_experiment.items()}
        snapshot["worker_utilization"] = (
            snapshot["running"] / snapshot["workers"] if snapshot["workers"] else 0.0
        )
        experiments: Dict[str, Dict[str, float]] = {}
        for name in sorted(elapsed):
            values = elapsed[name]
            if values.size == 0:  # pragma: no cover - windows start non-empty
                continue
            stats = {
                "count": float(values.size),
                "mean_s": float(values.mean()),
                "max_s": float(values.max()),
            }
            for quantile in RUNNER_LATENCY_QUANTILES:
                stats[f"p{quantile}_s"] = (
                    float(values[0]) if values.size == 1
                    else float(np.percentile(values, quantile))
                )
            experiments[name] = stats
        snapshot["experiments"] = experiments
        return snapshot


def render_runner_prometheus(snapshot: Dict[str, Any],
                             prefix: str = RUNNER_METRIC_PREFIX) -> str:
    """Render a :meth:`RunnerMetrics.snapshot` as Prometheus text exposition."""
    out = _Families()
    counters = (
        ("jobs_started_total", "Jobs handed to a worker (or executed inline)."),
        ("jobs_completed_total", "Executed jobs that completed."),
        ("jobs_failed_total", "Executed jobs that failed or crashed."),
        ("jobs_timeout_total", "Executed jobs killed at their deadline."),
        ("jobs_cached_total", "Jobs served from the result cache."),
        ("jobs_resumed_total", "Jobs served from the run manifest."),
    )
    for key, help_text in counters:
        if key in snapshot:
            out.sample(f"{prefix}_{key}", "counter", help_text,
                       float(snapshot[key]))
    gauges = (
        ("uptime_s", "uptime_seconds", "Seconds since the metrics sink started."),
        ("queue_depth", "queue_depth", "Jobs waiting for a free worker."),
        ("running", "running_jobs", "Jobs currently executing."),
        ("workers", "workers", "Configured worker-process slots."),
        ("worker_utilization", "worker_utilization",
         "Fraction of worker slots currently busy."),
    )
    for key, name, help_text in gauges:
        if key in snapshot:
            out.sample(f"{prefix}_{name}", "gauge", help_text,
                       float(snapshot[key]))
    experiments = snapshot.get("experiments")
    if isinstance(experiments, dict):
        for experiment in sorted(experiments):
            stats = experiments[experiment]
            labels = {"experiment": str(experiment)}
            out.sample(f"{prefix}_job_seconds_count", "gauge",
                       "Executed jobs in the per-experiment latency window.",
                       float(stats.get("count", 0.0)), labels)
            for quantile in RUNNER_LATENCY_QUANTILES:
                key = f"p{quantile}_s"
                if key in stats:
                    out.sample(
                        f"{prefix}_job_seconds", "gauge",
                        "Per-experiment job latency quantiles (seconds).",
                        float(stats[key]),
                        {**labels, "quantile": f"{quantile / 100.0:g}"},
                    )
            for key, label in (("mean_s", "mean"), ("max_s", "max")):
                if key in stats:
                    out.sample(f"{prefix}_job_seconds_{label}", "gauge",
                               f"Per-experiment {label} job latency (seconds).",
                               float(stats[key]), labels)
    return out.text()


class _RunnerMetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    metrics: RunnerMetrics


class _MetricsHandler(BaseHTTPRequestHandler):
    server: _RunnerMetricsHTTPServer

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrape traffic stays off stderr

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/metrics":
            text = render_runner_prometheus(self.server.metrics.snapshot())
            self._send(200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
            return
        if self.path == "/metrics.json":
            body = json.dumps(self.server.metrics.snapshot()).encode("utf-8")
            self._send(200, body, "application/json")
            return
        if self.path == "/healthz":
            self._send(200, b'{"status": "ok"}', "application/json")
            return
        self._send(404, b'{"error": "unknown path"}', "application/json")


class RunnerMetricsServer:
    """Background HTTP endpoint exposing one :class:`RunnerMetrics` sink.

    Parameters
    ----------
    metrics:
        The sink to expose.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address`).
    """

    def __init__(self, metrics: RunnerMetrics, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.metrics = metrics
        self._httpd = _RunnerMetricsHTTPServer((host, port), _MetricsHandler)
        self._httpd.metrics = metrics
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RunnerMetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-runner-metrics", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RunnerMetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Observability layer: structured logging, execution ledger, Prometheus.

Three small, dependency-free building blocks shared by the runner, the
serving stack, and the CLI:

:mod:`repro.observability.structlog`
    A stdlib-only, structlog-inspired JSON-lines event logger with
    ``bind(**ctx)`` context propagation.  Every job and request in the
    stack emits machine-parseable key-value events through it.
:mod:`repro.observability.ledger`
    A persistent append-only :class:`RunLedger` (JSONL under
    ``~/.cache/repro/ledger/``) recording every runner job and serving
    batch with lineage back to content key, artifact version, config hash,
    backend, and package version.
:mod:`repro.observability.prometheus`
    Renders a :class:`~repro.serving.metrics.ServingMetrics` snapshot into
    Prometheus text exposition format (and parses it back for validation).
"""

from repro.observability.ledger import (
    KIND_JOB,
    KIND_SERVING_BATCH,
    KIND_SERVING_SHARD,
    LEDGER_DIR_ENV,
    RunLedger,
    artifact_lineage,
    config_hash,
    default_ledger_root,
    job_entry,
)
from repro.observability.prometheus import (
    parse_prometheus_text,
    render_prometheus,
)
from repro.observability.structlog import (
    StructLogger,
    configure_structured_logging,
    get_struct_logger,
)

__all__ = [
    "KIND_JOB",
    "KIND_SERVING_BATCH",
    "KIND_SERVING_SHARD",
    "LEDGER_DIR_ENV",
    "RunLedger",
    "StructLogger",
    "artifact_lineage",
    "config_hash",
    "configure_structured_logging",
    "default_ledger_root",
    "get_struct_logger",
    "job_entry",
    "parse_prometheus_text",
    "render_prometheus",
]

"""Observability layer: logging, ledger, tracing, Prometheus.

Small, dependency-free building blocks shared by the runner, the serving
stack, and the CLI:

:mod:`repro.observability.structlog`
    A stdlib-only, structlog-inspired JSON-lines event logger with
    ``bind(**ctx)`` context propagation.  Every job and request in the
    stack emits machine-parseable key-value events through it.
:mod:`repro.observability.ledger`
    A persistent append-only :class:`RunLedger` (JSONL under
    ``~/.cache/repro/ledger/``) recording every runner job and serving
    batch with lineage back to content key, artifact version, config hash,
    backend, and package version — plus size/age-based segment rotation
    and ``compact()`` lifecycle management.
:mod:`repro.observability.tracing`
    Distributed tracing: :class:`TraceContext` propagation across HTTP,
    shard Pipe RPC, and runner worker boundaries, with :class:`Span`
    phase timers recorded into the ledger.
:mod:`repro.observability.trace_view`
    Rebuilds cross-process span trees from ledger span records
    (``repro trace show`` / ``repro trace slowest``).
:mod:`repro.observability.prometheus`
    Renders a :class:`~repro.serving.metrics.ServingMetrics` snapshot into
    Prometheus text exposition format (and parses it back for validation).
:mod:`repro.observability.runmetrics`
    Runner-side :class:`RunnerMetrics` sink and the optional
    ``GET /metrics`` endpoint of ``repro run-all --metrics-port``.
"""

from repro.observability.ledger import (
    KIND_JOB,
    KIND_SERVING_BATCH,
    KIND_SERVING_SHARD,
    KIND_SPAN,
    LEDGER_DIR_ENV,
    RunLedger,
    artifact_lineage,
    config_hash,
    default_ledger_root,
    job_entry,
)
from repro.observability.prometheus import (
    parse_prometheus_text,
    render_prometheus,
)
from repro.observability.runmetrics import (
    RunnerMetrics,
    RunnerMetricsServer,
    render_runner_prometheus,
)
from repro.observability.structlog import (
    StructLogger,
    configure_structured_logging,
    get_struct_logger,
)
from repro.observability.trace_view import (
    build_trace_tree,
    format_trace,
    slowest_traces,
    trace_spans,
)
from repro.observability.tracing import (
    TRACE_ENV,
    TRACE_HEADER,
    Span,
    TraceContext,
    current_trace,
    record_span,
    span,
    trace_fields,
    trace_id_for_job,
    trace_id_for_request,
    trace_scope,
)

__all__ = [
    "KIND_JOB",
    "KIND_SERVING_BATCH",
    "KIND_SERVING_SHARD",
    "KIND_SPAN",
    "LEDGER_DIR_ENV",
    "RunLedger",
    "RunnerMetrics",
    "RunnerMetricsServer",
    "Span",
    "StructLogger",
    "TRACE_ENV",
    "TRACE_HEADER",
    "TraceContext",
    "artifact_lineage",
    "build_trace_tree",
    "config_hash",
    "configure_structured_logging",
    "current_trace",
    "default_ledger_root",
    "format_trace",
    "get_struct_logger",
    "job_entry",
    "parse_prometheus_text",
    "record_span",
    "render_prometheus",
    "render_runner_prometheus",
    "slowest_traces",
    "span",
    "trace_fields",
    "trace_id_for_job",
    "trace_id_for_request",
    "trace_scope",
    "trace_spans",
]

"""Persistent append-only execution ledger with lineage.

Every runner job and serving batch is appended to a JSONL ledger under
``~/.cache/repro/ledger/`` (one JSON object per line), so a deployment's
full execution history — *which* artifact at *which* version, on *which*
backend, under *which* config, with *what* outcome — survives the process
and is queryable after the fact (``repro ledger list|show|tail``).

Durability hygiene matches :class:`~repro.runner.cache.ResultCache`:

* appends open the file ``O_APPEND`` and write one complete line in a
  single ``os.write`` call, so concurrent writers (scheduler + serving
  threads, even separate processes) never interleave *within* a line;
* readers skip truncated or corrupt lines instead of failing, so a crash
  mid-append costs at most that one entry;
* the directory is created lazily on the first append and an unwritable
  ledger degrades to a no-op rather than failing the job it records.

The ledger is deliberately schema-light: entries are plain dictionaries
with a ``kind`` discriminator, and the helpers :func:`job_entry` /
:func:`artifact_lineage` assemble the canonical lineage fields for the two
entry kinds the stack emits today.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import repro

PathLike = Union[str, Path]

#: Environment variable overriding the default ledger location.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: Entry kinds written by the stack.
KIND_JOB = "job"
KIND_SERVING_BATCH = "serving_batch"
KIND_SERVING_SHARD = "serving_shard"

#: Ledger file name inside the ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

_VERSION_DIR = re.compile(r"^v\d{1,9}$")


def default_ledger_root() -> Path:
    """The default ledger directory.

    ``$REPRO_LEDGER_DIR`` if set, else ``$XDG_CACHE_HOME/repro/ledger``,
    else ``~/.cache/repro/ledger``.
    """
    env = os.environ.get(LEDGER_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "ledger"


def config_hash(config: Any) -> str:
    """Short content hash of a configuration object.

    Accepts anything with a ``to_dict()`` method (e.g.
    :class:`~repro.core.config.SpikeDynConfig`) or a plain mapping; the
    digest is over the canonical sorted JSON, truncated to 16 hex chars —
    enough to distinguish configs, short enough for log lines.
    """
    if hasattr(config, "to_dict"):
        data = config.to_dict()
    else:
        data = dict(config)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def artifact_lineage(artifact: Any) -> Dict[str, Any]:
    """Lineage fields of a served model artifact.

    Works off the duck-typed attributes of
    :class:`~repro.serving.artifacts.ModelArtifact` (``path``,
    ``model_name``, ``backend``, ``config``, ``schema_version``).  Registry
    paths (``<root>/<name>/v000N``) yield a proper artifact name/version;
    a plain save directory reports its directory name with version ``None``.
    """
    path = Path(getattr(artifact, "path", "."))
    version: Optional[str] = None
    name = path.name
    if _VERSION_DIR.match(path.name) and path.parent.name:
        version = path.name
        name = path.parent.name
    config = getattr(artifact, "config", None)
    return {
        "artifact_name": name,
        "artifact_version": version,
        "artifact_path": str(path),
        "model": getattr(artifact, "model_name", None),
        "backend": getattr(artifact, "backend", None),
        "schema_version": getattr(artifact, "schema_version", None),
        "config_hash": config_hash(config) if config is not None else None,
    }


def job_entry(job: Any, record: Any, outcome: Optional[str] = None) -> Dict[str, Any]:
    """Canonical ledger entry for one runner job.

    Parameters
    ----------
    job:
        The :class:`~repro.runner.jobs.JobSpec` (duck-typed: ``key()``,
        ``experiment``, ``seed``, ``backend``, ``scale``).
    record:
        The terminal :class:`~repro.runner.manifest.JobRecord`.
    outcome:
        Override for the recorded outcome; defaults to ``record.source``
        for cache/manifest shortcuts and ``record.status`` for executed
        jobs — so a cache hit is recorded as ``"cached"``, not skipped.
    """
    source = getattr(record, "source", "run")
    if outcome is None:
        if source == "run":
            outcome = record.status
        elif source == "cache":
            outcome = "cached"
        else:
            outcome = "resumed"
    scale = dataclasses.asdict(job.scale) if dataclasses.is_dataclass(job.scale) else {}
    return {
        "kind": KIND_JOB,
        "key": job.key(),
        "experiment": job.experiment,
        "seed": job.seed,
        "backend": job.backend,
        "config_hash": config_hash(scale),
        "outcome": outcome,
        "status": record.status,
        "source": source,
        "elapsed_s": float(getattr(record, "elapsed", 0.0)),
    }


class RunLedger:
    """Append-only JSONL ledger of jobs and serving batches.

    Parameters
    ----------
    root:
        Ledger directory; defaults to :func:`default_ledger_root`.  The
        ledger file is ``<root>/ledger.jsonl``, created lazily on the
        first append.
    strict:
        When true, append failures raise instead of degrading to a no-op
        (tests use this; production recording must never fail a job).
    """

    def __init__(self, root: Optional[PathLike] = None, *, strict: bool = False) -> None:
        self.root = Path(root) if root is not None else default_ledger_root()
        self.strict = strict

    @property
    def path(self) -> Path:
        """The ledger file (whether or not it exists yet)."""
        return self.root / LEDGER_FILENAME

    # -- writing -------------------------------------------------------------

    def append(self, entry: Dict[str, Any], **fields: Any) -> Optional[Dict[str, Any]]:
        """Append one entry (plus ``fields``) as a single JSONL line.

        Timestamp (``ts``, unix seconds) and package version are stamped
        automatically unless already present.  Returns the full entry as
        written, or ``None`` when recording failed and ``strict`` is off.
        """
        full = dict(entry)
        full.update(fields)
        full.setdefault("ts", time.time())
        full.setdefault("version", repro.__version__)
        line = json.dumps(full, sort_keys=True, separators=(",", ":"), default=str) + "\n"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                # One write() of one complete line: concurrent O_APPEND
                # writers serialize at the file offset, so lines never
                # interleave within each other.
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            if self.strict:
                raise
            return None
        return full

    # -- reading -------------------------------------------------------------

    def entries(self, kind: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Yield every well-formed entry in append order.

        Corrupt or truncated lines (crash mid-append, foreign garbage) are
        skipped; ``kind`` filters on the entry's ``kind`` field.
        """
        try:
            handle = open(self.path, "r", encoding="utf-8", errors="replace")
        except OSError:
            return
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(entry, dict):
                    continue
                if kind is not None and entry.get("kind") != kind:
                    continue
                yield entry

    def tail(self, n: int = 10, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """The last ``n`` well-formed entries, oldest first."""
        if n <= 0:
            return []
        window: List[Dict[str, Any]] = []
        for entry in self.entries(kind=kind):
            window.append(entry)
            if len(window) > n:
                window.pop(0)
        return window

    def find(self, key_prefix: str) -> List[Dict[str, Any]]:
        """Every entry whose ``key`` starts with ``key_prefix``."""
        matches: List[Dict[str, Any]] = []
        for entry in self.entries():
            if str(entry.get("key", "")).startswith(key_prefix):
                matches.append(entry)
        return matches

    def count(self) -> int:
        """Number of well-formed entries."""
        return sum(1 for _ in self.entries())

    def stats(self) -> Dict[str, Any]:
        """Summary: path, entry/kind counts, bytes on disk."""
        kinds: Dict[str, int] = {}
        entries = 0
        for entry in self.entries():
            entries += 1
            kind = str(entry.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {"path": str(self.path), "entries": entries, "kinds": kinds, "bytes": size}

    def clear(self) -> int:
        """Remove the ledger file; returns how many entries were dropped."""
        dropped = self.count()
        try:
            self.path.unlink()
        except OSError:
            pass
        return dropped

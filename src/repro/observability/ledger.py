"""Persistent append-only execution ledger with lineage.

Every runner job and serving batch is appended to a JSONL ledger under
``~/.cache/repro/ledger/`` (one JSON object per line), so a deployment's
full execution history — *which* artifact at *which* version, on *which*
backend, under *which* config, with *what* outcome — survives the process
and is queryable after the fact (``repro ledger list|show|tail``).

Durability hygiene matches :class:`~repro.runner.cache.ResultCache`:

* appends open the file ``O_APPEND`` and write one complete line in a
  single ``os.write`` call, so concurrent writers (scheduler + serving
  threads, even separate processes) never interleave *within* a line;
* readers skip truncated or corrupt lines instead of failing, so a crash
  mid-append costs at most that one entry;
* the directory is created lazily on the first append and an unwritable
  ledger degrades to a no-op rather than failing the job it records.

The ledger is deliberately schema-light: entries are plain dictionaries
with a ``kind`` discriminator, and the helpers :func:`job_entry` /
:func:`artifact_lineage` assemble the canonical lineage fields for the two
entry kinds the stack emits today.  Entries appended inside an active trace
(see :mod:`repro.observability.tracing`) are stamped with the trace/span
ids, and ``kind="span"`` entries make the ledger a queryable trace store.

Long-lived deployments bound the ledger's footprint with *rotation*: when
the active file exceeds ``max_bytes`` or its oldest entry exceeds
``max_age_s``, it is renamed to a timestamped segment and a fresh active
file starts; only the newest ``max_segments`` segments are kept, so disk
usage stays under ``max_segments * max_bytes`` plus one active file.
:meth:`RunLedger.compact` squashes repeated cache/manifest-served re-runs
of the same job into one entry with a ``repeats`` count (lineage preserved).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

import repro
from repro.observability.structlog import get_struct_logger
from repro.observability.tracing import trace_fields

PathLike = Union[str, Path]

_log = get_struct_logger("observability.ledger")

#: Environment variable overriding the default ledger location.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: Environment variables overriding the rotation knobs.
LEDGER_MAX_BYTES_ENV = "REPRO_LEDGER_MAX_BYTES"
LEDGER_MAX_AGE_ENV = "REPRO_LEDGER_MAX_AGE_S"
LEDGER_MAX_SEGMENTS_ENV = "REPRO_LEDGER_MAX_SEGMENTS"

#: Entry kinds written by the stack.
KIND_JOB = "job"
KIND_SERVING_BATCH = "serving_batch"
KIND_SERVING_SHARD = "serving_shard"
KIND_SPAN = "span"

#: Ledger file name inside the ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Rotated segments: ``ledger-<unix_millis>.jsonl``, sortable by name.
_SEGMENT_PATTERN = re.compile(r"^ledger-(\d{10,17})\.jsonl$")

#: Segments kept after a rotation unless configured otherwise.
DEFAULT_MAX_SEGMENTS = 8

_VERSION_DIR = re.compile(r"^v\d{1,9}$")


def default_ledger_root() -> Path:
    """The default ledger directory.

    ``$REPRO_LEDGER_DIR`` if set, else ``$XDG_CACHE_HOME/repro/ledger``,
    else ``~/.cache/repro/ledger``.
    """
    env = os.environ.get(LEDGER_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "ledger"


def config_hash(config: Any) -> str:
    """Short content hash of a configuration object.

    Accepts anything with a ``to_dict()`` method (e.g.
    :class:`~repro.core.config.SpikeDynConfig`) or a plain mapping; the
    digest is over the canonical sorted JSON, truncated to 16 hex chars —
    enough to distinguish configs, short enough for log lines.
    """
    if hasattr(config, "to_dict"):
        data = config.to_dict()
    else:
        data = dict(config)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def artifact_lineage(artifact: Any) -> Dict[str, Any]:
    """Lineage fields of a served model artifact.

    Works off the duck-typed attributes of
    :class:`~repro.serving.artifacts.ModelArtifact` (``path``,
    ``model_name``, ``backend``, ``config``, ``schema_version``).  Registry
    paths (``<root>/<name>/v000N``) yield a proper artifact name/version;
    a plain save directory reports its directory name with version ``None``.
    """
    path = Path(getattr(artifact, "path", "."))
    version: Optional[str] = None
    name = path.name
    if _VERSION_DIR.match(path.name) and path.parent.name:
        version = path.name
        name = path.parent.name
    config = getattr(artifact, "config", None)
    return {
        "artifact_name": name,
        "artifact_version": version,
        "artifact_path": str(path),
        "model": getattr(artifact, "model_name", None),
        "backend": getattr(artifact, "backend", None),
        "schema_version": getattr(artifact, "schema_version", None),
        "config_hash": config_hash(config) if config is not None else None,
    }


def job_entry(job: Any, record: Any, outcome: Optional[str] = None) -> Dict[str, Any]:
    """Canonical ledger entry for one runner job.

    Parameters
    ----------
    job:
        The :class:`~repro.runner.jobs.JobSpec` (duck-typed: ``key()``,
        ``experiment``, ``seed``, ``backend``, ``scale``).
    record:
        The terminal :class:`~repro.runner.manifest.JobRecord`.
    outcome:
        Override for the recorded outcome; defaults to ``record.source``
        for cache/manifest shortcuts and ``record.status`` for executed
        jobs — so a cache hit is recorded as ``"cached"``, not skipped.
    """
    source = getattr(record, "source", "run")
    if outcome is None:
        if source == "run":
            outcome = record.status
        elif source == "cache":
            outcome = "cached"
        else:
            outcome = "resumed"
    scale = dataclasses.asdict(job.scale) if dataclasses.is_dataclass(job.scale) else {}
    return {
        "kind": KIND_JOB,
        "key": job.key(),
        "experiment": job.experiment,
        "seed": job.seed,
        "backend": job.backend,
        "config_hash": config_hash(scale),
        "outcome": outcome,
        "status": record.status,
        "source": source,
        "elapsed_s": float(getattr(record, "elapsed", 0.0)),
    }


class RunLedger:
    """Append-only JSONL ledger of jobs and serving batches.

    Parameters
    ----------
    root:
        Ledger directory; defaults to :func:`default_ledger_root`.  The
        ledger file is ``<root>/ledger.jsonl``, created lazily on the
        first append.
    strict:
        When true, append failures raise instead of degrading to a no-op
        (tests use this; production recording must never fail a job).
    max_bytes, max_age_s:
        Rotation triggers for the active file: byte size before an append,
        and age of its oldest entry.  ``None`` (the default) reads
        ``$REPRO_LEDGER_MAX_BYTES`` / ``$REPRO_LEDGER_MAX_AGE_S``; unset
        means that trigger is off.
    max_segments:
        Rotated segments kept on disk (oldest dropped beyond it); ``None``
        reads ``$REPRO_LEDGER_MAX_SEGMENTS``, default 8.
    """

    def __init__(self, root: Optional[PathLike] = None, *, strict: bool = False,
                 max_bytes: Optional[int] = None,
                 max_age_s: Optional[float] = None,
                 max_segments: Optional[int] = None) -> None:
        self.root = Path(root) if root is not None else default_ledger_root()
        self.strict = strict
        self.max_bytes = _resolve_limit(max_bytes, LEDGER_MAX_BYTES_ENV, int)
        self.max_age_s = _resolve_limit(max_age_s, LEDGER_MAX_AGE_ENV, float)
        segments = _resolve_limit(max_segments, LEDGER_MAX_SEGMENTS_ENV, int)
        self.max_segments = DEFAULT_MAX_SEGMENTS if segments is None else segments
        self._degraded_warned = False

    @property
    def path(self) -> Path:
        """The active ledger file (whether or not it exists yet)."""
        return self.root / LEDGER_FILENAME

    def segments(self) -> List[Path]:
        """Rotated segment files, oldest first (the active file excluded)."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        found = [name for name in names if _SEGMENT_PATTERN.match(name)]
        return [self.root / name for name in sorted(found)]

    # -- writing -------------------------------------------------------------

    def append(self, entry: Dict[str, Any], **fields: Any) -> Optional[Dict[str, Any]]:
        """Append one entry (plus ``fields``) as a single JSONL line.

        Timestamp (``ts``, unix seconds) and package version are stamped
        automatically unless already present; inside an active trace the
        trace/span ids are stamped too.  Returns the full entry as written,
        or ``None`` when recording failed and ``strict`` is off (the first
        such degradation emits one structured warning event).
        """
        full = dict(entry)
        full.update(fields)
        full.setdefault("ts", time.time())
        full.setdefault("version", repro.__version__)
        for key, value in trace_fields().items():
            full.setdefault(key, value)
        line = json.dumps(full, sort_keys=True, separators=(",", ":"), default=str) + "\n"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._maybe_rotate(len(line))
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                # One write() of one complete line: concurrent O_APPEND
                # writers serialize at the file offset, so lines never
                # interleave within each other.
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError as error:
            if self.strict:
                raise
            # Degrade to a no-op, but never *silently*: one warning per
            # ledger instance names the path and the failure, so an
            # unwritable volume is diagnosable from the event stream.
            if not self._degraded_warned:
                self._degraded_warned = True
                _log.warning("ledger_degraded", path=str(self.path),
                             error=f"{type(error).__name__}: {error}")
            return None
        return full

    def append_many(self, entries: Sequence[Dict[str, Any]]) -> Optional[List[Dict[str, Any]]]:
        """Append several entries with one ``write`` call.

        Each entry is stamped exactly as :meth:`append` stamps it, but the
        serialized lines land in a single ``os.write`` of complete lines —
        O_APPEND keeps concurrent writers from interleaving *within* the
        block, and the per-append open/write/close syscall cost is paid
        once per batch instead of once per entry.  Returns the entries as
        written, or ``None`` on a non-strict recording failure.
        """
        if not entries:
            return []
        stamped: List[Dict[str, Any]] = []
        traced = trace_fields()
        for entry in entries:
            full = dict(entry)
            full.setdefault("ts", time.time())
            full.setdefault("version", repro.__version__)
            for key, value in traced.items():
                full.setdefault(key, value)
            stamped.append(full)
        block = "".join(
            json.dumps(full, sort_keys=True, separators=(",", ":"), default=str) + "\n"
            for full in stamped
        ).encode("utf-8")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._maybe_rotate(len(block))
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(fd, block)
            finally:
                os.close(fd)
        except OSError as error:
            if self.strict:
                raise
            if not self._degraded_warned:
                self._degraded_warned = True
                _log.warning("ledger_degraded", path=str(self.path),
                             error=f"{type(error).__name__}: {error}")
            return None
        return stamped

    # -- rotation ------------------------------------------------------------

    def _maybe_rotate(self, incoming_bytes: int) -> None:
        """Rotate the active file when a size/age trigger fires.

        Called with the root directory known to exist.  Rotation is a
        single ``rename`` — concurrent writers racing it either win the
        rename or see ``FileNotFoundError`` and carry on appending to the
        fresh active file, so no entry is ever lost to a rotation race.
        """
        if self.max_bytes is None and self.max_age_s is None:
            return
        try:
            stat = self.path.stat()
        except OSError:
            return
        rotate = False
        if self.max_bytes is not None and stat.st_size + incoming_bytes > self.max_bytes:
            rotate = stat.st_size > 0
        if not rotate and self.max_age_s is not None:
            oldest = self._oldest_ts()
            if oldest is not None and time.time() - oldest > self.max_age_s:
                rotate = True
        if not rotate:
            return
        # Bump the timestamp past any existing segment: two rotations within
        # the same millisecond must not rename onto (and silently clobber)
        # the same segment file.
        millis = int(time.time() * 1000)
        segment = self.root / f"ledger-{millis:013d}.jsonl"
        while segment.exists():
            millis += 1
            segment = self.root / f"ledger-{millis:013d}.jsonl"
        try:
            os.rename(self.path, segment)
        except OSError:
            return  # a concurrent writer rotated first
        self._prune_segments()

    def _oldest_ts(self) -> Optional[float]:
        """Timestamp of the active file's first well-formed entry."""
        try:
            with open(self.path, "r", encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(entry, dict) and isinstance(
                        entry.get("ts"), (int, float)
                    ):
                        return float(entry["ts"])
                    return None
        except OSError:
            return None
        return None

    def _prune_segments(self) -> None:
        segments = self.segments()
        for stale in segments[: max(0, len(segments) - self.max_segments)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass

    # -- reading -------------------------------------------------------------

    def entries(self, kind: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Yield every well-formed entry in append order.

        Rotated segments are read oldest-first, then the active file, so the
        ordering survives rotation.  Corrupt or truncated lines (crash
        mid-append, foreign garbage) are skipped; ``kind`` filters on the
        entry's ``kind`` field.
        """
        for path in [*self.segments(), self.path]:
            try:
                handle = open(path, "r", encoding="utf-8", errors="replace")
            except OSError:
                continue
            with handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(entry, dict):
                        continue
                    if kind is not None and entry.get("kind") != kind:
                        continue
                    yield entry

    def tail(self, n: int = 10, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """The last ``n`` well-formed entries, oldest first."""
        if n <= 0:
            return []
        window: List[Dict[str, Any]] = []
        for entry in self.entries(kind=kind):
            window.append(entry)
            if len(window) > n:
                window.pop(0)
        return window

    def find(self, key_prefix: str) -> List[Dict[str, Any]]:
        """Every entry whose ``key`` starts with ``key_prefix``."""
        matches: List[Dict[str, Any]] = []
        for entry in self.entries():
            if str(entry.get("key", "")).startswith(key_prefix):
                matches.append(entry)
        return matches

    def count(self) -> int:
        """Number of well-formed entries."""
        return sum(1 for _ in self.entries())

    def stats(self) -> Dict[str, Any]:
        """Summary: path, entry/kind counts, segments, bytes on disk."""
        kinds: Dict[str, int] = {}
        entries = 0
        for entry in self.entries():
            entries += 1
            kind = str(entry.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
        segments = self.segments()
        size = 0
        for path in [*segments, self.path]:
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return {"path": str(self.path), "entries": entries, "kinds": kinds,
                "bytes": size, "segments": len(segments)}

    def clear(self) -> int:
        """Remove the ledger file and all segments; returns entries dropped."""
        dropped = self.count()
        for path in [*self.segments(), self.path]:
            try:
                path.unlink()
            except OSError:
                pass
        return dropped

    # -- compaction ----------------------------------------------------------

    def compact(self) -> Dict[str, Any]:
        """Rewrite the ledger, squashing repeated cache-served re-runs.

        Every *executed* entry (and every span, serving batch, and shard
        transition) is kept verbatim; ``cached``/``resumed`` job entries —
        the bulk of a long deployment's growth, since each re-run appends
        one per job — are deduplicated to the most recent entry per content
        key, stamped with a ``repeats`` count so the lineage still records
        how often the result was served.

        The survivors are written to a temporary file and atomically
        renamed over the active file; all rotated segments are then
        removed.  Entries appended concurrently between the snapshot read
        and the rename are lost — run compaction from the CLI
        (``repro ledger compact``), not under live writers.  Returns a
        summary: entries/bytes before and after.
        """
        before = self.stats()
        survivors: List[Dict[str, Any]] = []
        latest_shortcut: Dict[str, Dict[str, Any]] = {}
        shortcut_counts: Dict[str, int] = {}
        for entry in self.entries():
            if (entry.get("kind") == KIND_JOB
                    and entry.get("outcome") in ("cached", "resumed")
                    and entry.get("key")):
                key = str(entry["key"])
                if key not in latest_shortcut:
                    # First sighting: keep its slot in the overall order.
                    survivors.append(entry)
                latest_shortcut[key] = entry
                shortcut_counts[key] = shortcut_counts.get(key, 0) + 1
                continue
            survivors.append(entry)
        for index, entry in enumerate(survivors):
            key = entry.get("key")
            if (entry.get("kind") == KIND_JOB and key in latest_shortcut
                    and entry.get("outcome") in ("cached", "resumed")):
                newest = dict(latest_shortcut[str(key)])
                repeats = shortcut_counts[str(key)]
                if repeats > 1:
                    newest["repeats"] = repeats
                survivors[index] = newest
        tmp = self.root / f"{LEDGER_FILENAME}.compact.{os.getpid()}.tmp"
        self.root.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in survivors:
                handle.write(json.dumps(entry, sort_keys=True,
                                        separators=(",", ":"), default=str))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        for segment in self.segments():
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass
        after = self.stats()
        return {
            "path": str(self.path),
            "entries_before": before["entries"],
            "entries_after": after["entries"],
            "bytes_before": before["bytes"],
            "bytes_after": after["bytes"],
            "segments_removed": before["segments"],
        }


class SpanBuffer:
    """Span sink that batches appends into one ledger write.

    :func:`~repro.observability.tracing.record_span` duck-types its sink on
    ``.append``; a buffer collects the spans of one serving micro-batch and
    lands them with a single :meth:`RunLedger.append_many` call on
    :meth:`flush` — one file append per batch instead of one per span, which
    is what keeps the traced serving path within its overhead budget.
    Thread-confined by design: each pool worker builds its own buffer per
    batch, so no locking is needed.
    """

    def __init__(self, ledger: RunLedger) -> None:
        self._ledger = ledger
        self._entries: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, entry: Dict[str, Any], **fields: Any) -> Dict[str, Any]:
        """Buffer one entry (same signature as :meth:`RunLedger.append`)."""
        full = dict(entry)
        full.update(fields)
        self._entries.append(full)
        return full

    def flush(self) -> Optional[List[Dict[str, Any]]]:
        """Write every buffered entry in one append; clears the buffer."""
        if not self._entries:
            return []
        entries, self._entries = self._entries, []
        return self._ledger.append_many(entries)


def _resolve_limit(value, env_name: str, cast):
    """An explicit limit, else the environment's, else ``None``."""
    if value is not None:
        return cast(value)
    raw = os.environ.get(env_name, "").strip()
    if not raw:
        return None
    try:
        return cast(raw)
    except ValueError:
        return None

"""Stdlib-only structured logging with bound context (structlog-inspired).

A :class:`StructLogger` wraps a stdlib :class:`logging.Logger` and emits one
JSON object per event::

    log = get_struct_logger("runner.scheduler", run_id="abc")
    log.info("job_started", experiment="fig5", workers=4)
    # {"event": "job_started", "experiment": "fig5", "level": "info",
    #  "logger": "repro.runner.scheduler", "run_id": "abc",
    #  "ts": "2026-08-08T12:00:00.123456+00:00", "workers": 4}

``bind(**ctx)`` returns a *new* logger carrying merged context — loggers are
immutable, so handing a bound logger to a helper never leaks context back
into the caller.  Events route through the ordinary ``repro.*`` stdlib
logger hierarchy: without a configured handler they are invisible (stdout
stays clean for report text), and :func:`configure_structured_logging`
attaches a raw JSON-lines stream handler when machine-parseable output is
wanted.  Setting ``REPRO_LOG_JSON=1`` makes the CLI call it on startup.
"""

from __future__ import annotations

import datetime
import json
import logging
import os
import sys
from typing import Any, Dict, Mapping, Optional

from repro.observability.tracing import trace_fields

#: Environment variable that makes the CLI emit JSON-lines events to stderr.
LOG_JSON_ENV = "REPRO_LOG_JSON"

#: Environment variable selecting the emitted level (default ``info``).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_LIBRARY_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

# Library hygiene: without any handler, stdlib logging's lastResort handler
# would print WARNING+ records (raw JSON lines) to stderr behind the user's
# back.  A NullHandler keeps events silent until logging is configured
# explicitly (configure_logging / configure_structured_logging).
logging.getLogger(_LIBRARY_LOGGER_NAME).addHandler(logging.NullHandler())


def _json_safe(value: Any) -> Any:
    """Reduce ``value`` to something ``json.dumps`` accepts, last resort str.

    Event fields routinely carry numpy scalars, paths, and exceptions;
    logging must never raise because a field was exotic.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(item) for item in value]
    if hasattr(value, "tolist"):
        try:  # numpy scalars and arrays reduce to Python equivalents
            return _json_safe(value.tolist())
        except Exception:  # noqa: BLE001 - fall through to str
            pass
    return str(value)


def _utc_timestamp() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


class StructLogger:
    """Immutable key-value event logger emitting JSON lines.

    Parameters
    ----------
    logger:
        The stdlib logger events are routed through.
    context:
        Key-value pairs attached to every event this logger (and every
        logger derived from it via :meth:`bind`) emits.
    """

    __slots__ = ("_logger", "_context")

    def __init__(
        self, logger: logging.Logger, context: Optional[Mapping[str, Any]] = None
    ) -> None:
        self._logger = logger
        self._context: Dict[str, Any] = dict(context or {})

    @property
    def name(self) -> str:
        """Name of the underlying stdlib logger."""
        return self._logger.name

    @property
    def context(self) -> Dict[str, Any]:
        """Copy of the bound context (mutating it does not affect events)."""
        return dict(self._context)

    # -- context ------------------------------------------------------------

    def bind(self, **ctx: Any) -> "StructLogger":
        """A new logger with ``ctx`` merged over the current context."""
        merged = dict(self._context)
        merged.update(ctx)
        return StructLogger(self._logger, merged)

    def unbind(self, *keys: str) -> "StructLogger":
        """A new logger with ``keys`` removed from the context."""
        remaining = {key: value for key, value in self._context.items() if key not in keys}
        return StructLogger(self._logger, remaining)

    # -- emission -----------------------------------------------------------

    def log(self, level: int, event: str, **fields: Any) -> None:
        """Emit ``event`` at ``level`` with context + ``fields`` as JSON."""
        if not self._logger.isEnabledFor(level):
            return
        payload: Dict[str, Any] = {
            "ts": _utc_timestamp(),
            "level": logging.getLevelName(level).lower(),
            "logger": self._logger.name,
            "event": event,
        }
        # Events emitted inside an active span carry the trace identity, so
        # the JSON stream can be joined against the ledger's span records.
        payload.update(trace_fields())
        for source in (self._context, fields):
            for key, value in source.items():
                payload[key] = _json_safe(value)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
        self._logger.log(level, "%s", line)

    def debug(self, event: str, **fields: Any) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(logging.ERROR, event, **fields)


def get_struct_logger(name: Optional[str] = None, **context: Any) -> StructLogger:
    """A :class:`StructLogger` namespaced under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Optional child name (e.g. ``"runner.scheduler"``).
    context:
        Initial bound context, as :meth:`StructLogger.bind` would add it.
    """
    if name:
        logger = logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")
    else:
        logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    return StructLogger(logger, context)


def configure_structured_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a raw JSON-lines handler to the ``repro`` logger.

    The handler prints each record's message verbatim (one JSON object per
    line, no prefix) so the output is directly machine-parseable.  Safe to
    call multiple times: the previously installed structured handler is
    replaced, not duplicated.  Returns the library logger.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    stream = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_struct_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler._repro_struct_handler = True
    logger.addHandler(handler)
    return logger


def configure_from_env(stream=None) -> Optional[logging.Logger]:
    """Honor ``REPRO_LOG_JSON`` / ``REPRO_LOG_LEVEL``; no-op when unset.

    The CLI calls this on startup so ``REPRO_LOG_JSON=1 repro run-all ...``
    streams every scheduler/server event as JSON lines on stderr without
    any code change.  Returns the configured logger, or ``None`` when the
    environment does not ask for structured output.
    """
    flag = os.environ.get(LOG_JSON_ENV, "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return None
    level_name = os.environ.get(LOG_LEVEL_ENV, "info").strip().lower()
    level = _LEVELS.get(level_name, logging.INFO)
    return configure_structured_logging(level=level, stream=stream)

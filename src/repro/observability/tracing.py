"""Stdlib-only distributed tracing: trace contexts, spans, propagation.

A :class:`TraceContext` is the (``trace_id``, ``span_id``,
``parent_span_id``) triple that follows one request or one runner job across
every thread and process it touches.  Trace ids are *deterministic where a
seed exists* — :func:`trace_id_for_request` derives one from the request's
resolved encoding seed and :func:`trace_id_for_job` from the job's content
key — so replaying the same work reproduces the same trace identity.

Spans are phase timers.  ``with span("shard_rpc"):`` opens a child span of
the current context, times the block, and appends one ``kind="span"`` record
to the active sink (a :class:`~repro.observability.ledger.RunLedger` or any
object with ``append``); :func:`record_span` writes a span whose duration
was measured externally (e.g. queue wait computed from an enqueue
timestamp).  The current context and sink live in :mod:`contextvars`, so an
inactive trace costs one contextvar read — the serving hot path pays nothing
until a caller sends ``X-Repro-Trace-Id``.

Propagation is explicit at every boundary the stack crosses:

* HTTP: :data:`TRACE_HEADER` carries the trace id in and back out;
* shard Pipe RPC: :meth:`TraceContext.to_dict` rides in the envelope;
* runner workers: the scheduler passes the job span's context (and the
  ledger root) as extra ``spawn`` arguments.

Because every span lands in the ledger, the ledger *is* the trace store:
``repro trace show <trace_id>`` rebuilds the cross-process span tree (see
:mod:`repro.observability.trace_view`).
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import itertools
import os
import re
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional

#: HTTP header carrying the trace id into (and back out of) ``/v1`` routes.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Environment variable: a truthy value traces every served request even
#: without an incoming :data:`TRACE_HEADER` (ids derived from request seeds).
TRACE_ENV = "REPRO_TRACE"

#: Ledger entry kind of one recorded span.
KIND_SPAN = "span"

#: Accepted shape of an externally supplied trace id.
TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_current: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_trace_context", default=None
)
_sink: "contextvars.ContextVar[Optional[Any]]" = contextvars.ContextVar(
    "repro_trace_sink", default=None
)

# Tie-breaker folded into generated span ids so two spans opened in the same
# process never collide, whatever their names.
_span_counter = itertools.count()


def tracing_forced() -> bool:
    """Whether :data:`TRACE_ENV` asks for tracing without a client header."""
    return os.environ.get(TRACE_ENV, "").strip().lower() not in (
        "", "0", "false", "no", "off",
    )


def derive_trace_id(*parts: Any) -> str:
    """Deterministic 16-hex-char trace id from ``parts``."""
    canonical = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def trace_id_for_request(seed: Any) -> str:
    """Trace id of a served request, derived from its resolved seed."""
    return derive_trace_id("request", seed)


def trace_id_for_job(key: str) -> str:
    """Trace id of a runner job, derived from its content key."""
    return derive_trace_id("job", key)


def new_trace_id() -> str:
    """A random trace id, for requests with no seed to derive one from."""
    return uuid.uuid4().hex[:16]


def _refresh_span_prefix() -> None:
    global _span_prefix
    _span_prefix = os.urandom(4).hex()


# Span ids must be unique, not unguessable: a random per-process prefix plus
# a monotonic counter is collision-free within a process and 2^32-diverse
# across processes, at a fraction of the cost of hashing a fresh UUID per
# span — ids are minted on the serving hot path, several per request.  The
# prefix is re-drawn after fork so child workers never mint parent ids.
_refresh_span_prefix()
if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_refresh_span_prefix)


def _new_span_id() -> str:
    return f"{_span_prefix}{next(_span_counter) & 0xFFFFFFFFFFFF:012x}"


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: which span is current, and under what parent.

    A context with ``span_id=None`` is a *root scope* (a bare trace id that
    arrived over the wire); its first child span becomes a root of the span
    tree.  Contexts are immutable — :meth:`child` derives, never mutates.
    """

    trace_id: str
    span_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    retry: int = 0

    def child(self, retry: Optional[int] = None) -> "TraceContext":
        """A fresh span context parented under this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            parent_span_id=self.span_id,
            retry=self.retry if retry is None else int(retry),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON/Pipe-safe form for crossing a process boundary."""
        payload: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        if self.retry:
            payload["retry"] = int(self.retry)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=payload.get("span_id"),
            parent_span_id=payload.get("parent_span_id"),
            retry=int(payload.get("retry", 0)),
        )

    def to_headers(self) -> Dict[str, str]:
        """The outbound HTTP header carrying this trace."""
        return {TRACE_HEADER: self.trace_id}

    @classmethod
    def from_headers(cls, headers: Mapping[str, str]) -> Optional["TraceContext"]:
        """Root scope from an incoming header set; ``None`` without one.

        Raises :class:`ValueError` when the header is present but malformed
        (the HTTP layer maps that to a 400).
        """
        value = None
        for key in (TRACE_HEADER, TRACE_HEADER.lower()):
            if key in headers:
                value = headers[key]
                break
        if value is None:
            return None
        value = str(value).strip()
        if not TRACE_ID_PATTERN.match(value):
            raise ValueError(
                f"invalid {TRACE_HEADER} value {value!r} (expected 1..64 "
                "characters of [A-Za-z0-9._-], starting alphanumeric)"
            )
        return cls(trace_id=value)


def current_trace() -> Optional[TraceContext]:
    """The active trace context of this thread, if any."""
    return _current.get()


def current_span_sink() -> Optional[Any]:
    """The active span sink of this thread, if any."""
    return _sink.get()


def trace_fields() -> Dict[str, Any]:
    """``{"trace_id": ..., "span_id": ...}`` of the active context, or ``{}``.

    What :class:`~repro.observability.structlog.StructLogger` and
    :class:`~repro.observability.ledger.RunLedger` stamp onto every event and
    entry emitted inside an active span.
    """
    context = _current.get()
    if context is None:
        return {}
    fields: Dict[str, Any] = {"trace_id": context.trace_id}
    if context.span_id is not None:
        fields["span_id"] = context.span_id
    return fields


@contextlib.contextmanager
def trace_scope(context: Optional[TraceContext],
                sink: Optional[Any] = None) -> Iterator[Optional[TraceContext]]:
    """Make ``context`` (and optionally ``sink``) current for the block.

    ``context=None`` is a no-op scope, so call sites can wrap
    unconditionally without branching on whether tracing is active.
    """
    if context is None:
        yield None
        return
    token = _current.set(context)
    sink_token = _sink.set(sink) if sink is not None else None
    try:
        yield context
    finally:
        _current.reset(token)
        if sink_token is not None:
            _sink.reset(sink_token)


def record_span(sink: Optional[Any], context: Optional[TraceContext],
                name: str, duration_s: float, **fields: Any) -> Optional[Dict[str, Any]]:
    """Append one span record for an externally timed phase.

    ``context`` must be a span context (``span_id`` set), typically made
    with :meth:`TraceContext.child`.  Returns the record, or ``None`` when
    either the sink or the context is absent (tracing inactive).
    """
    if sink is None or context is None or context.span_id is None:
        return None
    entry: Dict[str, Any] = {
        "kind": KIND_SPAN,
        "trace_id": context.trace_id,
        "span_id": context.span_id,
        "name": str(name),
        "pid": os.getpid(),
        "duration_ms": round(float(duration_s) * 1000.0, 3),
    }
    if context.parent_span_id is not None:
        entry["parent_span_id"] = context.parent_span_id
    if context.retry:
        entry["retry"] = int(context.retry)
    entry.update(fields)
    if hasattr(sink, "append"):
        return sink.append(entry)
    return sink(entry)


class Span:
    """Timed span context manager; inert when no trace is active.

    ``with span("kernel", shared_batch=4):`` opens a child of the current
    context, makes it current for the block, and on exit appends one span
    record (name, pid, duration, retry, extra fields) to the sink — the one
    passed explicitly, else the contextvar sink installed by
    :func:`trace_scope`.
    """

    __slots__ = ("name", "fields", "_sink", "_retry", "context",
                 "_token", "_started")

    def __init__(self, name: str, *, sink: Optional[Any] = None,
                 retry: Optional[int] = None, **fields: Any) -> None:
        self.name = name
        self.fields = fields
        self._sink = sink
        self._retry = retry
        self.context: Optional[TraceContext] = None
        self._token = None
        self._started = 0.0

    @property
    def active(self) -> bool:
        return self.context is not None

    def __enter__(self) -> "Span":
        parent = _current.get()
        if parent is None:
            return self
        self.context = parent.child(retry=self._retry)
        self._token = _current.set(self.context)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.context is None:
            return
        duration = time.perf_counter() - self._started
        _current.reset(self._token)
        self._token = None
        sink = self._sink if self._sink is not None else _sink.get()
        record_span(sink, self.context, self.name, duration, **self.fields)


def span(name: str, *, sink: Optional[Any] = None,
         retry: Optional[int] = None, **fields: Any) -> Span:
    """Convenience constructor for :class:`Span` (reads as a verb)."""
    return Span(name, sink=sink, retry=retry, **fields)

"""Continual-learning evaluation: accuracy matrix, forgetting, transfer.

The scenario engine (:mod:`repro.scenarios`) produces streams whose samples
are grouped into training *phases*; this module trains a model phase by
phase and measures the full accuracy matrix ``R`` — ``R[i, j]`` is the
accuracy on task ``j`` after finishing training phase ``i`` — using the
model's batched inference path.  From ``R`` the standard continual-learning
summary metrics follow:

* **average accuracy** — mean of the last row over all tasks;
* **average forgetting** — mean over tasks of the gap between the best
  accuracy a task ever had and its final accuracy (Chaudhry et al.);
* **backward transfer (BWT)** — mean over tasks of final accuracy minus the
  accuracy right after the task was last trained (negative = forgetting);
* **forward transfer (FWT)** — mean over tasks of the accuracy just before
  the task is first trained minus chance level (positive = earlier tasks
  prime later ones);
* **retention curve** — one task's accuracy over the phases after it was
  first trained.

Determinism: all sample draws derive from the ``rng`` handed to
:func:`run_scenario_protocol`, so a fixed seed yields a bit-identical matrix
(asserted by the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.evaluation.protocols import N_CLASSES, draw_evaluation_sets
from repro.scenarios.spec import Phase, ScenarioSpec
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class ContinualResult:
    """Outcome of one scenario run for one model.

    Attributes
    ----------
    model_name:
        Identifier of the evaluated model.
    scenario:
        Name of the scenario the model was run on.
    phases:
        The scenario's training phases, in stream order.
    task_classes:
        ``{task_id: classes}`` of the distinct tasks (evaluation columns).
    accuracy_matrix:
        ``(n_phases, n_tasks)`` matrix; entry ``[i, j]`` is the accuracy on
        task ``j`` after training phase ``i`` (every task is evaluated after
        every phase, including tasks not yet trained).
    chance_level:
        Chance accuracy used as the forward-transfer reference.
        :func:`run_scenario_protocol` sets it to ``1 / len(spec.classes())``
        — the model can only ever be assigned the scenario's declared
        classes, so guessing uniformly among them is the honest baseline
        (``1 / N_CLASSES`` would inflate FWT on scenarios that use fewer
        than ten classes).
    """

    model_name: str
    scenario: str
    phases: List[Phase] = field(default_factory=list)
    task_classes: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    accuracy_matrix: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), dtype=float)
    )
    chance_level: float = 1.0 / N_CLASSES

    # -- structure helpers -------------------------------------------------------

    @property
    def task_ids(self) -> List[int]:
        """Distinct task ids in evaluation-column order."""
        return list(self.task_classes)

    def _column(self, task_id: int) -> int:
        try:
            return self.task_ids.index(task_id)
        except ValueError:
            raise KeyError(f"unknown task id {task_id}") from None

    def first_trained_phase(self, task_id: int) -> int:
        """Index of the first phase that trains ``task_id``."""
        for phase in self.phases:
            if phase.task_id == task_id:
                return phase.index
        raise KeyError(f"task {task_id} is never trained in this scenario")

    def last_trained_phase(self, task_id: int) -> int:
        """Index of the last phase that trains ``task_id``."""
        indices = [p.index for p in self.phases if p.task_id == task_id]
        if not indices:
            raise KeyError(f"task {task_id} is never trained in this scenario")
        return indices[-1]

    # -- metrics -----------------------------------------------------------------

    @property
    def final_accuracies(self) -> Dict[int, float]:
        """``{task_id: accuracy}`` after the whole stream was learned."""
        last = self.accuracy_matrix[-1]
        return {task: float(last[self._column(task)]) for task in self.task_ids}

    @property
    def average_accuracy(self) -> float:
        """Mean final accuracy over all tasks."""
        return float(self.accuracy_matrix[-1].mean())

    @property
    def average_forgetting(self) -> float:
        """Mean over tasks of (best accuracy ever − final accuracy).

        The maximum is taken over the phases from the task's first training
        up to (excluding) the final phase, so a single-phase scenario has
        zero forgetting by definition.
        """
        gaps: List[float] = []
        for task in self.task_ids:
            column = self.accuracy_matrix[:, self._column(task)]
            start = self.first_trained_phase(task)
            history = column[start:-1]
            if history.size == 0:
                continue
            gaps.append(float(history.max() - column[-1]))
        return float(np.mean(gaps)) if gaps else 0.0

    @property
    def backward_transfer(self) -> float:
        """Mean over tasks of (final accuracy − accuracy when last trained).

        Negative values mean later phases erased earlier tasks (catastrophic
        forgetting); values near zero mean retention.
        """
        deltas: List[float] = []
        last_phase = len(self.phases) - 1
        for task in self.task_ids:
            trained = self.last_trained_phase(task)
            if trained == last_phase:
                continue
            column = self.accuracy_matrix[:, self._column(task)]
            deltas.append(float(column[-1] - column[trained]))
        return float(np.mean(deltas)) if deltas else 0.0

    @property
    def forward_transfer(self) -> float:
        """Mean over tasks of (accuracy just before first training − chance)."""
        deltas: List[float] = []
        for task in self.task_ids:
            first = self.first_trained_phase(task)
            if first == 0:
                continue
            column = self.accuracy_matrix[:, self._column(task)]
            deltas.append(float(column[first - 1] - self.chance_level))
        return float(np.mean(deltas)) if deltas else 0.0

    def retention_curve(self, task_id: int) -> List[float]:
        """Accuracy of one task over the phases from its first training on."""
        column = self.accuracy_matrix[:, self._column(task_id)]
        return [float(v) for v in column[self.first_trained_phase(task_id):]]

    def summary(self) -> Dict[str, float]:
        """The scalar metrics in one dictionary (used by reports and tests)."""
        return {
            "average_accuracy": self.average_accuracy,
            "average_forgetting": self.average_forgetting,
            "backward_transfer": self.backward_transfer,
            "forward_transfer": self.forward_transfer,
        }


def run_scenario_protocol(
    model,
    source,
    spec: ScenarioSpec,
    *,
    eval_samples_per_class: int = 5,
    eval_batch_size: Optional[int] = None,
    rng: SeedLike = None,
) -> ContinualResult:
    """Train ``model`` on a scenario phase by phase and fill the matrix.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.UnsupervisedDigitClassifier`.
    source:
        Digit source the scenario stream and evaluation sets are drawn from.
    spec:
        The scenario to run (schedule plus transform chain).
    eval_samples_per_class:
        Samples per class in both the assignment set and the evaluation set.
    eval_batch_size:
        When given, installs this evaluation batch size on the model (the
        batched inference path); the setting persists after the run.
    rng:
        Seed or generator; fixes the stream and every evaluation draw.
    """
    check_positive_int(eval_samples_per_class, "eval_samples_per_class")
    if eval_batch_size is not None:
        model.eval_batch_size = check_positive_int(eval_batch_size, "eval_batch_size")
    generator = ensure_rng(rng)

    phases = spec.phases()
    tasks = spec.tasks()
    classes = spec.classes()

    # Fixed assignment/evaluation sets shared by every phase: the matrix then
    # measures what the *model* forgets, not evaluation-set noise.
    assignment, evaluation = draw_evaluation_sets(
        source, classes, eval_samples_per_class, generator
    )
    assign_images = [image for cls in classes for image in assignment[cls]]
    assign_labels = [int(cls) for cls in classes for _ in assignment[cls]]
    eval_per_task: Dict[int, Tuple[List[np.ndarray], List[int]]] = {}
    for task_id, task_classes in tasks.items():
        images = [image for cls in task_classes for image in evaluation[cls]]
        labels = [int(cls) for cls in task_classes for _ in evaluation[cls]]
        eval_per_task[task_id] = (images, labels)

    stream = spec.build(source, rng=generator)
    by_phase: Dict[int, List] = {phase.index: [] for phase in phases}
    for sample in stream:
        by_phase[sample.task_index].append(sample)

    matrix = np.zeros((len(phases), len(tasks)), dtype=float)
    task_order = list(tasks)
    for phase in phases:
        model.train_stream(by_phase[phase.index])
        model.assign_labels(assign_images, assign_labels)
        for column, task_id in enumerate(task_order):
            images, labels = eval_per_task[task_id]
            matrix[phase.index, column] = model.evaluate_accuracy(images, labels)

    return ContinualResult(
        model_name=model.name,
        scenario=spec.name,
        phases=phases,
        task_classes=tasks,
        accuracy_matrix=matrix,
        chance_level=1.0 / len(classes),
    )

"""Classification metrics used throughout the evaluation."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.utils.validation import check_positive_int


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose prediction matches the ground truth."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"predictions {predictions.shape} and labels {labels.shape} must match"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float(np.mean(predictions == labels))


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray,
                       classes: Sequence[int]) -> Dict[int, float]:
    """Accuracy restricted to each class in ``classes``.

    Classes with no samples in ``labels`` are reported as ``nan`` so callers
    can distinguish "never evaluated" from "always wrong".
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    results: Dict[int, float] = {}
    for cls in classes:
        mask = labels == cls
        if not mask.any():
            results[int(cls)] = float("nan")
        else:
            results[int(cls)] = float(np.mean(predictions[mask] == cls))
    return results


def mean_accuracy(per_class: Mapping[int, float]) -> float:
    """Mean of per-class accuracies, ignoring ``nan`` entries."""
    values = [value for value in per_class.values() if not np.isnan(value)]
    if not values:
        raise ValueError("no finite per-class accuracies to average")
    return float(np.mean(values))


def improvement_percentage_points(candidate: float, reference: float) -> float:
    """Accuracy improvement of ``candidate`` over ``reference`` in points.

    Both inputs are fractions in [0, 1]; the result is expressed in
    percentage points, matching how the paper reports accuracy deltas
    ("improves the accuracy by up to 29 %").
    """
    for name, value in (("candidate", candidate), ("reference", reference)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} accuracy must lie in [0, 1], got {value}")
    return (candidate - reference) * 100.0


def forgetting(per_task_recent: Mapping[int, float],
               per_task_final: Mapping[int, float]) -> Dict[int, float]:
    """Per-task forgetting: accuracy right after learning minus final accuracy.

    A standard continual-learning metric; positive values mean the task was
    partially forgotten by the end of the task sequence.
    """
    results: Dict[int, float] = {}
    for task, recent in per_task_recent.items():
        if task not in per_task_final:
            raise KeyError(f"task {task} missing from the final accuracies")
        results[int(task)] = float(recent - per_task_final[task])
    return results


def top_k_response_sparsity(responses: np.ndarray, k: int) -> float:
    """Fraction of total response carried by each sample's ``k`` strongest neurons.

    Used as a health metric of the winner-take-all dynamics: values close to
    1.0 indicate strong competition (few neurons dominate each response).
    """
    responses = np.asarray(responses, dtype=float)
    check_positive_int(k, "k")
    if responses.ndim != 2:
        raise ValueError(f"responses must be 2-D, got shape {responses.shape}")
    totals = responses.sum(axis=1)
    safe_totals = np.where(totals > 0, totals, 1.0)
    top_k = np.sort(responses, axis=1)[:, -k:].sum(axis=1)
    fractions = np.where(totals > 0, top_k / safe_totals, 0.0)
    return float(fractions.mean())

"""Plain-text reporting helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a list of rows as an aligned plain-text table.

    Floats are formatted with ``float_format``; all other values with
    ``str``.  The result is what the benchmark scripts print so that the
    reproduced tables/figures can be compared against the paper.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows: List[List[str]] = [[render(v) for v in row] for row in rows]
    rendered_headers = [str(h) for h in headers]
    widths = [len(h) for h in rendered_headers]
    for row in rendered_rows:
        if len(row) != len(rendered_headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(rendered_headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [format_line(rendered_headers),
             format_line(["-" * w for w in widths])]
    lines.extend(format_line(row) for row in rendered_rows)
    return "\n".join(lines)


def normalize_to(values: Mapping[str, float], reference_key: str) -> Dict[str, float]:
    """Normalize a mapping of measurements to one reference entry.

    The paper reports energies normalized to the baseline; this helper makes
    those normalizations explicit and guards against a zero reference.
    """
    if reference_key not in values:
        raise KeyError(f"reference key {reference_key!r} not present in values")
    reference = float(values[reference_key])
    if reference == 0.0:
        raise ZeroDivisionError("reference value is zero; cannot normalize")
    return {key: float(value) / reference for key, value in values.items()}


def format_percentage(fraction: float) -> str:
    """Render a fraction in [0, 1] as a percentage string (e.g. ``'73.5%'``)."""
    return f"{fraction * 100.0:.1f}%"

"""Neuron labelling and response-based prediction.

After (or during) unsupervised training, every excitatory neuron is assigned
the class for which it spiked most strongly on a labelled assignment set.
Predictions are then made by summing, per class, the responses of the neurons
assigned to that class and picking the class with the highest average
response — exactly the readout used by the Diehl & Cook pipeline the paper
builds on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_positive_int


def assign_neuron_labels(responses: np.ndarray, labels: np.ndarray,
                         n_classes: int) -> np.ndarray:
    """Assign each neuron the class it responds to most strongly.

    Parameters
    ----------
    responses:
        Spike-count responses of shape ``(n_samples, n_neurons)``.
    labels:
        Ground-truth class of each sample, shape ``(n_samples,)``.
    n_classes:
        Total number of classes.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n_neurons,)``; a neuron that never spiked
        on the assignment set is labelled ``-1``.
    """
    responses = np.asarray(responses, dtype=float)
    labels = np.asarray(labels, dtype=int)
    check_positive_int(n_classes, "n_classes")
    if responses.ndim != 2:
        raise ValueError(f"responses must be 2-D, got shape {responses.shape}")
    if labels.shape != (responses.shape[0],):
        raise ValueError(
            f"labels must have shape ({responses.shape[0]},), got {labels.shape}"
        )

    n_neurons = responses.shape[1]
    mean_response = np.zeros((n_classes, n_neurons), dtype=float)
    for cls in range(n_classes):
        mask = labels == cls
        if mask.any():
            mean_response[cls] = responses[mask].mean(axis=0)

    assignments = np.argmax(mean_response, axis=0)
    silent = mean_response.max(axis=0) <= 0.0
    assignments = assignments.astype(int)
    assignments[silent] = -1
    return assignments


def class_scores(responses: np.ndarray, assignments: np.ndarray,
                 n_classes: int) -> np.ndarray:
    """Per-class readout scores of each sample (mean member-neuron response).

    This is the quantity :func:`predict_from_responses` argmaxes over; the
    serving layer also reports it per request so clients can see the full
    readout, not just the winning class.

    Parameters
    ----------
    responses:
        Spike-count responses of shape ``(n_samples, n_neurons)``.
    assignments:
        Per-neuron class assignments from :func:`assign_neuron_labels`.
    n_classes:
        Total number of classes.

    Returns
    -------
    numpy.ndarray
        Score matrix of shape ``(n_samples, n_classes)``; classes with no
        assigned neurons score zero.
    """
    responses = np.asarray(responses, dtype=float)
    assignments = np.asarray(assignments, dtype=int)
    check_positive_int(n_classes, "n_classes")
    if responses.ndim != 2:
        raise ValueError(f"responses must be 2-D, got shape {responses.shape}")
    if assignments.shape != (responses.shape[1],):
        raise ValueError(
            f"assignments must have shape ({responses.shape[1]},), "
            f"got {assignments.shape}"
        )

    n_samples = responses.shape[0]
    scores = np.zeros((n_samples, n_classes), dtype=float)
    for cls in range(n_classes):
        members = assignments == cls
        count = int(members.sum())
        if count:
            scores[:, cls] = responses[:, members].sum(axis=1) / count
    return scores


def predict_from_responses(responses: np.ndarray, assignments: np.ndarray,
                           n_classes: int,
                           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Predict sample classes from neuron responses and assignments.

    Parameters
    ----------
    responses:
        Spike-count responses of shape ``(n_samples, n_neurons)``.
    assignments:
        Per-neuron class assignments from :func:`assign_neuron_labels`.
    n_classes:
        Total number of classes.
    rng:
        Unused hook kept for API stability (ties are broken deterministically
        towards the smaller class index).

    Returns
    -------
    numpy.ndarray
        Predicted class per sample, shape ``(n_samples,)``.
    """
    return np.argmax(class_scores(responses, assignments, n_classes), axis=1)

"""Evaluation protocols for dynamic and non-dynamic environments (Section IV).

``run_dynamic_protocol`` reproduces the paper's dynamic-environment setup:
the model is trained on consecutive tasks (classes) without re-feeding
previous tasks, each task with the same number of samples.  After each task
the accuracy on the *most recently learned task* is recorded (Fig. 9 a.1/b.1);
after the whole sequence the per-task accuracy on *previously learned tasks*
and the confusion matrix are recorded (Fig. 9 a.2/b.2 and Fig. 10).

``run_nondynamic_protocol`` reproduces the non-dynamic setup: training samples
with randomly distributed classes, with accuracy measured at a series of
sample-count checkpoints (Fig. 9 c).

Both protocols run every assignment and evaluation pass through the model's
batched inference path (:meth:`~repro.models.base.UnsupervisedDigitClassifier.
respond_batch`), which advances ``eval_batch_size`` samples per vectorized
engine step; training stays sequential so the learned weight trajectory is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.streams import dynamic_task_stream, nondynamic_stream
from repro.evaluation.confusion import confusion_matrix
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Number of digit classes in the (synthetic or real) MNIST task.  Defined
#: here rather than imported from :mod:`repro.models.base` to keep the
#: evaluation package free of model imports (models import the evaluation
#: read-out helpers, not the other way around).
N_CLASSES = 10


@dataclass
class DynamicProtocolResult:
    """Outcome of a dynamic-environment run.

    Attributes
    ----------
    model_name:
        Identifier of the evaluated model.
    class_sequence:
        The order in which the tasks were learned.
    recent_task_accuracy:
        ``{class: accuracy}`` measured on each task immediately after it was
        learned — the paper's "most recently learned task" metric.
    final_task_accuracy:
        ``{class: accuracy}`` measured on every task after the whole sequence
        was learned — the paper's "previously learned tasks" metric.
    confusion:
        Final confusion matrix over the evaluation samples of all tasks.
    """

    model_name: str
    class_sequence: List[int]
    recent_task_accuracy: Dict[int, float] = field(default_factory=dict)
    final_task_accuracy: Dict[int, float] = field(default_factory=dict)
    confusion: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=int))

    @property
    def mean_recent_accuracy(self) -> float:
        """Mean over tasks of the most-recently-learned-task accuracy."""
        return float(np.mean(list(self.recent_task_accuracy.values())))

    @property
    def mean_final_accuracy(self) -> float:
        """Mean over tasks of the final (retained) accuracy."""
        return float(np.mean(list(self.final_task_accuracy.values())))


@dataclass
class NonDynamicProtocolResult:
    """Outcome of a non-dynamic-environment run.

    Attributes
    ----------
    model_name:
        Identifier of the evaluated model.
    checkpoints:
        Cumulative training-sample counts at which accuracy was measured.
    accuracy_at_checkpoint:
        ``{checkpoint: accuracy}`` over all evaluated classes.
    """

    model_name: str
    checkpoints: List[int] = field(default_factory=list)
    accuracy_at_checkpoint: Dict[int, float] = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the last checkpoint."""
        if not self.checkpoints:
            raise ValueError("the protocol recorded no checkpoints")
        return self.accuracy_at_checkpoint[self.checkpoints[-1]]


def draw_evaluation_sets(
    source, classes: Sequence[int], samples_per_class: int, rng
) -> Tuple[Dict[int, np.ndarray], Dict[int, np.ndarray]]:
    """Per-class assignment and evaluation image sets (drawn separately).

    Shared by the paper protocols here and the continual-learning harness
    (:mod:`repro.evaluation.continual`) so both evaluate models on
    identically-constructed sets.
    """
    assignment: Dict[int, np.ndarray] = {}
    evaluation: Dict[int, np.ndarray] = {}
    for cls in classes:
        assignment[cls] = source.generate(int(cls), samples_per_class, rng=rng)
        evaluation[cls] = source.generate(int(cls), samples_per_class, rng=rng)
    return assignment, evaluation


# Backwards-compatible private alias (pre-1.3 name).
_evaluation_sets = draw_evaluation_sets


def _assign_from_sets(model, assignment: Dict[int, np.ndarray],
                      classes: Sequence[int]) -> None:
    """Re-assign neuron labels using the assignment images of ``classes``.

    The images of every class are concatenated into one list so the model can
    respond to them in vectorized batches rather than class by class.
    """
    images: List[np.ndarray] = []
    labels: List[int] = []
    for cls in classes:
        for image in assignment[cls]:
            images.append(image)
            labels.append(int(cls))
    model.assign_labels(images, labels)


def _apply_eval_batch_size(model, eval_batch_size) -> None:
    """Install the evaluation batch size on ``model`` (if given).

    The setting persists on the model after the protocol returns.
    """
    if eval_batch_size is None:
        return
    model.eval_batch_size = check_positive_int(eval_batch_size, "eval_batch_size")


def _accuracy_on_class(model, evaluation: Dict[int, np.ndarray], cls: int) -> float:
    """Accuracy of ``model`` on the evaluation images of one class."""
    images = list(evaluation[cls])
    labels = [int(cls)] * len(images)
    return model.evaluate_accuracy(images, labels)


def run_dynamic_protocol(
    model,
    source,
    *,
    class_sequence: Optional[Sequence[int]] = None,
    samples_per_task: int = 10,
    eval_samples_per_class: int = 5,
    eval_batch_size: Optional[int] = None,
    rng: SeedLike = None,
) -> DynamicProtocolResult:
    """Train and evaluate ``model`` in a dynamic environment.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.UnsupervisedDigitClassifier`.
    source:
        Digit source providing ``generate(digit, n, rng)``.
    class_sequence:
        Task order; defaults to the source's classes in ascending order.
    samples_per_task:
        Training samples presented for each task.
    eval_samples_per_class:
        Samples per class in both the assignment set and the evaluation set.
    eval_batch_size:
        When given, installs this evaluation batch size (samples per
        vectorized inference step) on the model; the setting persists after
        the protocol returns.
    rng:
        Seed or generator controlling sample draws.
    """
    check_positive_int(samples_per_task, "samples_per_task")
    check_positive_int(eval_samples_per_class, "eval_samples_per_class")
    _apply_eval_batch_size(model, eval_batch_size)
    generator = ensure_rng(rng)
    sequence = [int(c) for c in (class_sequence if class_sequence is not None
                                 else source.classes)]
    if not sequence:
        raise ValueError("class_sequence must not be empty")

    assignment, evaluation = _evaluation_sets(
        source, sequence, eval_samples_per_class, generator
    )

    result = DynamicProtocolResult(model_name=model.name,
                                   class_sequence=list(sequence))
    seen: List[int] = []
    for cls in sequence:
        stream = dynamic_task_stream(
            source, class_sequence=[cls], samples_per_task=samples_per_task,
            rng=generator,
        )
        model.train_stream(stream)
        seen.append(cls)
        _assign_from_sets(model, assignment, seen)
        result.recent_task_accuracy[cls] = _accuracy_on_class(model, evaluation, cls)

    # Final evaluation over every learned task (retained information).
    _assign_from_sets(model, assignment, sequence)
    all_images: List[np.ndarray] = []
    all_labels: List[int] = []
    for cls in sequence:
        result.final_task_accuracy[cls] = _accuracy_on_class(model, evaluation, cls)
        for image in evaluation[cls]:
            all_images.append(image)
            all_labels.append(int(cls))
    predictions = model.predict(all_images)
    result.confusion = confusion_matrix(
        np.asarray(all_labels), predictions, N_CLASSES
    )
    return result


def run_nondynamic_protocol(
    model,
    source,
    *,
    checkpoints: Sequence[int] = (20, 50, 100),
    classes: Optional[Sequence[int]] = None,
    eval_samples_per_class: int = 5,
    eval_batch_size: Optional[int] = None,
    rng: SeedLike = None,
) -> NonDynamicProtocolResult:
    """Train and evaluate ``model`` in a non-dynamic environment.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.UnsupervisedDigitClassifier`.
    source:
        Digit source providing ``generate(digit, n, rng)``.
    checkpoints:
        Increasing cumulative sample counts at which accuracy is measured.
    classes:
        Classes included in the stream and the evaluation (defaults to all).
    eval_samples_per_class:
        Samples per class in the assignment and evaluation sets.
    eval_batch_size:
        When given, installs this evaluation batch size (samples per
        vectorized inference step) on the model; the setting persists after
        the protocol returns.
    rng:
        Seed or generator controlling sample draws.
    """
    _apply_eval_batch_size(model, eval_batch_size)
    checkpoints = [int(c) for c in checkpoints]
    if not checkpoints:
        raise ValueError("checkpoints must not be empty")
    if any(c <= 0 for c in checkpoints):
        raise ValueError("checkpoints must be positive sample counts")
    if sorted(checkpoints) != checkpoints:
        raise ValueError("checkpoints must be increasing")
    check_positive_int(eval_samples_per_class, "eval_samples_per_class")

    generator = ensure_rng(rng)
    eval_classes = [int(c) for c in (classes if classes is not None
                                     else source.classes)]
    assignment, evaluation = _evaluation_sets(
        source, eval_classes, eval_samples_per_class, generator
    )

    eval_images: List[np.ndarray] = []
    eval_labels: List[int] = []
    for cls in eval_classes:
        for image in evaluation[cls]:
            eval_images.append(image)
            eval_labels.append(int(cls))

    result = NonDynamicProtocolResult(model_name=model.name,
                                      checkpoints=list(checkpoints))
    trained = 0
    for checkpoint in checkpoints:
        to_train = checkpoint - trained
        if to_train < 0:
            raise ValueError("checkpoints must be increasing")
        if to_train:
            stream = nondynamic_stream(
                source, n_samples=to_train, classes=eval_classes, rng=generator
            )
            model.train_stream(stream)
            trained = checkpoint
        _assign_from_sets(model, assignment, eval_classes)
        result.accuracy_at_checkpoint[checkpoint] = model.evaluate_accuracy(
            eval_images, eval_labels
        )
    return result

"""Confusion matrices (paper Fig. 10)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int


def confusion_matrix(labels: np.ndarray, predictions: np.ndarray,
                     n_classes: int) -> np.ndarray:
    """Confusion matrix with target labels as rows and predictions as columns.

    Parameters
    ----------
    labels:
        Ground-truth classes, shape ``(n_samples,)``.
    predictions:
        Predicted classes, shape ``(n_samples,)``.
    n_classes:
        Number of classes; both inputs must lie in ``[0, n_classes)``.

    Returns
    -------
    numpy.ndarray
        Integer matrix ``C`` of shape ``(n_classes, n_classes)`` where
        ``C[i, j]`` counts samples of class ``i`` predicted as class ``j``.
    """
    labels = np.asarray(labels, dtype=int)
    predictions = np.asarray(predictions, dtype=int)
    check_positive_int(n_classes, "n_classes")
    if labels.shape != predictions.shape:
        raise ValueError(
            f"labels {labels.shape} and predictions {predictions.shape} must match"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError("labels contain values outside [0, n_classes)")
    if predictions.size and (predictions.min() < 0 or predictions.max() >= n_classes):
        raise ValueError("predictions contain values outside [0, n_classes)")

    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def most_confused_pair(matrix: np.ndarray) -> tuple:
    """The off-diagonal (target, predicted) pair with the most confusions.

    Used to verify the paper's observation that digit-4 is predominantly
    misclassified as digit-9 in the dynamic scenario (Fig. 10, label 1).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    off_diagonal = matrix.astype(float).copy()
    np.fill_diagonal(off_diagonal, -1.0)
    target, predicted = np.unravel_index(int(np.argmax(off_diagonal)),
                                         off_diagonal.shape)
    return int(target), int(predicted)

"""Evaluation: neuron labelling, metrics, confusion matrices, and protocols.

Unsupervised SNNs are evaluated the way Diehl & Cook (and the SpikeDyn paper)
evaluate them: after training, each excitatory neuron is assigned the class
it responds to most strongly on a labelled assignment set, and a sample's
prediction is the class whose assigned neurons respond most strongly.

:mod:`repro.evaluation.protocols` implements the paper's two evaluation
protocols — the dynamic environment (consecutive task changes, measuring both
the accuracy on the most recently learned task and the accuracy retained on
previously learned tasks) and the non-dynamic environment (accuracy as a
function of the number of randomly-ordered training samples).
"""

from repro.evaluation.confusion import confusion_matrix
from repro.evaluation.continual import ContinualResult, run_scenario_protocol
from repro.evaluation.labeling import (
    assign_neuron_labels,
    class_scores,
    predict_from_responses,
)
from repro.evaluation.metrics import accuracy, mean_accuracy, per_class_accuracy
from repro.evaluation.protocols import (
    DynamicProtocolResult,
    NonDynamicProtocolResult,
    run_dynamic_protocol,
    run_nondynamic_protocol,
)
from repro.evaluation.reporting import format_table, normalize_to

__all__ = [
    "ContinualResult",
    "DynamicProtocolResult",
    "NonDynamicProtocolResult",
    "accuracy",
    "assign_neuron_labels",
    "confusion_matrix",
    "format_table",
    "mean_accuracy",
    "normalize_to",
    "per_class_accuracy",
    "class_scores",
    "predict_from_responses",
    "run_dynamic_protocol",
    "run_nondynamic_protocol",
    "run_scenario_protocol",
]

"""Shared infrastructure for the paper-experiment drivers.

The paper's evaluation runs full-MNIST workloads on physical GPUs; the
drivers in this package run the same protocols at a configurable scale.
:class:`ExperimentScale` bundles every scale knob (image size, network sizes,
samples per task, presentation window, ...) and ships three presets:

``ExperimentScale.tiny()``
    Seconds-per-experiment settings used by the benchmark harness and the
    integration tests.
``ExperimentScale.small()``
    Minutes-per-experiment settings used to produce the numbers recorded in
    ``EXPERIMENTS.md``.
``ExperimentScale.paper()``
    The paper's own sizes (28x28 MNIST, N200/N400, 350 ms presentations,
    full dataset sample counts).  Provided for completeness; running it with
    this pure-Python engine takes many hours, as the paper's Table II would
    predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backends import normalize_backend_name
from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.asp_model import ASPModel
from repro.models.base import UnsupervisedDigitClassifier
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel
from repro.snn.simulation import OperationCounter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

#: The three comparison partners of the paper, in the order they are plotted.
MODEL_BUILDERS: Dict[str, Callable[..., UnsupervisedDigitClassifier]] = {
    "baseline": DiehlCookModel,
    "asp": ASPModel,
    "spikedyn": SpikeDynModel,
}

#: Canonical plotting/reporting order of the comparison partners.
MODEL_ORDER: Tuple[str, ...] = ("baseline", "asp", "spikedyn")


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by every experiment driver.

    Parameters
    ----------
    image_size:
        Side length of the (synthetic) digit images; the SNN input size is
        ``image_size ** 2``.
    network_sizes:
        Excitatory-layer sizes evaluated side by side; the paper uses
        ``(200, 400)`` (N200 / N400).
    class_sequence:
        Task order of the dynamic-environment protocol.
    samples_per_task:
        Training samples presented per task in the dynamic protocol.
    eval_samples_per_class:
        Samples per class in the assignment and evaluation sets.
    nondynamic_checkpoints:
        Cumulative sample counts at which the non-dynamic protocol measures
        accuracy (the x-axis of Fig. 9c).
    t_sim:
        Presentation window of one sample in milliseconds.
    update_interval:
        SpikeDyn's update window ``t_step`` in milliseconds.
    n_training_samples, n_inference_samples:
        Phase sample counts ``N`` used by the analytical energy model
        (``E = E1 * N``) and the Table II processing-time model.
    seed:
        Base seed for every stochastic component.
    eval_batch_size:
        Samples advanced per vectorized engine step during protocol
        evaluation (1 = sequential per-sample inference).
    backend:
        Compute backend every model built at this scale runs on (see
        :mod:`repro.backends`).  Part of the scale, and therefore of every
        :class:`~repro.runner.jobs.JobSpec` cache key derived from it.
    """

    image_size: int = 14
    network_sizes: Tuple[int, ...] = (20, 40)
    class_sequence: Tuple[int, ...] = (0, 1, 2, 3)
    samples_per_task: int = 4
    eval_samples_per_class: int = 3
    nondynamic_checkpoints: Tuple[int, ...] = (8, 16, 32)
    t_sim: float = 50.0
    update_interval: float = 10.0
    n_training_samples: int = 60_000
    n_inference_samples: int = 10_000
    seed: int = 0
    eval_batch_size: int = 32
    backend: str = "dense"

    def __post_init__(self) -> None:
        check_positive_int(self.image_size, "image_size")
        if not self.network_sizes:
            raise ValueError("network_sizes must not be empty")
        for size in self.network_sizes:
            check_positive_int(int(size), "network size")
        if not self.class_sequence:
            raise ValueError("class_sequence must not be empty")
        check_positive_int(self.samples_per_task, "samples_per_task")
        check_positive_int(self.eval_samples_per_class, "eval_samples_per_class")
        check_positive_int(self.eval_batch_size, "eval_batch_size")
        normalize_backend_name(self.backend)

    # -- presets ---------------------------------------------------------------

    @classmethod
    def tiny(cls, **overrides) -> "ExperimentScale":
        """Seconds-scale preset used by benchmarks and integration tests."""
        defaults = dict(
            image_size=14,
            network_sizes=(10, 20),
            class_sequence=(0, 1, 2),
            samples_per_task=3,
            eval_samples_per_class=2,
            nondynamic_checkpoints=(4, 8),
            t_sim=40.0,
            update_interval=10.0,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small(cls, **overrides) -> "ExperimentScale":
        """Minutes-scale preset used to fill EXPERIMENTS.md."""
        defaults = dict(
            image_size=14,
            network_sizes=(20, 40),
            class_sequence=tuple(range(10)),
            samples_per_task=10,
            eval_samples_per_class=4,
            nondynamic_checkpoints=(10, 20, 40, 80),
            t_sim=60.0,
            update_interval=10.0,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper(cls, **overrides) -> "ExperimentScale":
        """The paper's own experimental scale (28x28 MNIST, N200/N400)."""
        defaults = dict(
            image_size=28,
            network_sizes=(200, 400),
            class_sequence=tuple(range(10)),
            samples_per_task=6_000,
            eval_samples_per_class=100,
            nondynamic_checkpoints=(1_000, 5_000, 10_000, 30_000, 60_000),
            t_sim=350.0,
            update_interval=10.0,
        )
        defaults.update(overrides)
        return cls(**defaults)

    # -- derived quantities -------------------------------------------------------

    @property
    def n_input(self) -> int:
        """Number of input neurons (pixels per image)."""
        return self.image_size * self.image_size

    @property
    def network_labels(self) -> Tuple[str, ...]:
        """Human-readable labels of the evaluated network sizes (e.g. ``N200``)."""
        return tuple(f"N{size}" for size in self.network_sizes)

    def config(self, n_exc: int, **overrides) -> SpikeDynConfig:
        """A :class:`SpikeDynConfig` for one network size at this scale."""
        check_positive_int(n_exc, "n_exc")
        parameters = dict(
            n_input=self.n_input,
            n_exc=n_exc,
            t_sim=self.t_sim,
            t_rest=0.0,
            update_interval=self.update_interval,
            seed=self.seed,
            backend=self.backend,
        )
        parameters.update(overrides)
        return SpikeDynConfig(**parameters)

    def replace(self, **changes) -> "ExperimentScale":
        """Copy of the scale with selected fields overridden."""
        return replace(self, **changes)


def default_digit_source(scale: ExperimentScale,
                         seed: SeedLike = None) -> SyntheticDigits:
    """The synthetic digit source used by every experiment at ``scale``."""
    return SyntheticDigits(
        image_size=scale.image_size,
        seed=scale.seed if seed is None else seed,
    )


def build_model(name: str, config: SpikeDynConfig, *,
                rng: SeedLike = None, **kwargs) -> UnsupervisedDigitClassifier:
    """Build one of the three comparison partners by name.

    Parameters
    ----------
    name:
        ``"baseline"``, ``"asp"``, or ``"spikedyn"``.
    config:
        Shared hyperparameter bundle.
    rng:
        Seed or generator for the weight initialization; defaults to the
        configuration's seed.
    **kwargs:
        Extra keyword arguments forwarded to the model constructor (e.g. a
        pre-built learning rule for ablations).
    """
    key = name.strip().lower()
    if key not in MODEL_BUILDERS:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise ValueError(f"unknown model {name!r}; known models: {known}")
    rng = ensure_rng(rng if rng is not None else config.seed)
    return MODEL_BUILDERS[key](config, rng=rng, **kwargs)


@dataclass
class SampleCounters:
    """Per-sample operation counters of one model (training and inference)."""

    model_name: str
    n_exc: int
    training: OperationCounter = field(default_factory=OperationCounter)
    inference: OperationCounter = field(default_factory=OperationCounter)


def measure_sample_counters(
    model: UnsupervisedDigitClassifier,
    images: Sequence[np.ndarray],
) -> SampleCounters:
    """Average per-sample operation counters of ``model`` over ``images``.

    One training presentation and one inference presentation are measured per
    image; the averages play the role of the paper's single-sample
    measurements (``E1t`` / ``E1i`` in Alg. 1).
    """
    if len(images) == 0:
        raise ValueError("at least one image is required")
    train_total = OperationCounter()
    infer_total = OperationCounter()
    for image in images:
        before = model.counter.copy()
        model.train_sample(image)
        train_total = train_total + (model.counter - before)

        before = model.counter.copy()
        model.respond(image)
        infer_total = infer_total + (model.counter - before)

    n = len(images)
    averaged_train = OperationCounter(
        **{key: value // n for key, value in train_total.as_dict().items()}
    )
    averaged_infer = OperationCounter(
        **{key: value // n for key, value in infer_total.as_dict().items()}
    )
    return SampleCounters(
        model_name=model.name,
        n_exc=model.n_exc,
        training=averaged_train,
        inference=averaged_infer,
    )


def sample_images(scale: ExperimentScale, n: int,
                  classes: Optional[Sequence[int]] = None,
                  seed: SeedLike = None) -> np.ndarray:
    """Draw ``n`` labelled-class images used for single-sample measurements."""
    check_positive_int(n, "n")
    source = default_digit_source(scale, seed=seed)
    rng = ensure_rng(scale.seed if seed is None else seed)
    images, _ = source.sample(n, classes=classes, rng=rng)
    return images

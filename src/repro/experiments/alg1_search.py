"""Alg. 1 — memory- and energy-constrained SNN model search.

The study runs the search algorithm with a sweep of memory budgets (and
optional energy budgets), records which candidate sizes are explored, which
are feasible, and which one is selected, and compares the exploration time of
the analytical search against actually running every configuration on the
full phases — the benefit Fig. 5(d,e) reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.model_search import ModelSearchResult, search_snn_model
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.evaluation.reporting import format_table
from repro.experiments.common import ExperimentScale
from repro.utils.validation import check_positive_int


@dataclass
class ModelSearchStudy:
    """Structured output of the Alg. 1 study.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    device:
        Device used for the energy estimates.
    results:
        ``{memory_budget_bytes: ModelSearchResult}`` for every swept budget.
    """

    scale: ExperimentScale
    device: str
    results: Dict[float, ModelSearchResult] = field(default_factory=dict)

    def selected_sizes(self) -> Dict[float, Optional[int]]:
        """``{memory budget: selected n_exc}`` (``None`` when nothing fits)."""
        return {
            budget: (result.selected.n_exc if result.selected is not None else None)
            for budget, result in self.results.items()
        }

    def to_text(self) -> str:
        """Render the search outcomes as a plain-text table."""
        lines: List[str] = [f"Alg. 1 — constrained model search (device: {self.device})"]
        rows = []
        for budget, result in self.results.items():
            selected = result.selected
            rows.append([
                budget / 1024.0,
                len(result.candidates),
                len(result.feasible_candidates),
                selected.n_exc if selected is not None else "-",
                result.exploration_time_seconds(),
                result.actual_run_time_seconds(
                    self.scale.n_training_samples, self.scale.n_inference_samples
                ),
            ])
        lines.append(format_table(
            ["budget_KB", "explored", "feasible", "selected_n_exc",
             "search_time_s", "actual_run_time_s"],
            rows,
        ))
        return "\n".join(lines)


def run_model_search_study(
    scale: Optional[ExperimentScale] = None,
    *,
    memory_budgets_bytes: Optional[Sequence[float]] = None,
    training_energy_budget_joules: Optional[float] = None,
    inference_energy_budget_joules: Optional[float] = None,
    n_add: int = 10,
    device: DeviceProfile = GTX_1080_TI,
) -> ModelSearchStudy:
    """Run the Alg. 1 sweep for a series of memory budgets.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    memory_budgets_bytes:
        Memory budgets to sweep; when omitted, three budgets are derived from
        the scale's largest network size (0.5x, 1x, and 2x its footprint).
    training_energy_budget_joules, inference_energy_budget_joules:
        Optional energy constraints forwarded to the search.
    n_add:
        Search step (number of excitatory neurons added per iteration).
    device:
        GPU profile used for the energy conversion.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    check_positive_int(n_add, "n_add")
    base_config = scale.config(max(scale.network_sizes))

    if memory_budgets_bytes is None:
        from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts

        reference = architecture_parameter_counts(
            ARCH_SPIKEDYN, base_config.n_input, max(scale.network_sizes)
        ).memory_bytes(base_config.bit_precision)
        memory_budgets_bytes = (0.5 * reference, reference, 2.0 * reference)

    study = ModelSearchStudy(scale=scale, device=device.name)
    for budget in memory_budgets_bytes:
        study.results[float(budget)] = search_snn_model(
            base_config,
            memory_budget_bytes=float(budget),
            training_energy_budget_joules=training_energy_budget_joules,
            inference_energy_budget_joules=inference_energy_budget_joules,
            n_training_samples=scale.n_training_samples,
            n_inference_samples=scale.n_inference_samples,
            n_add=n_add,
            device=device,
            rng=scale.seed,
        )
    return study

"""Table II — SpikeDyn processing time on the full MNIST dataset.

The processing time of a phase is extrapolated from the per-sample operation
count of the SpikeDyn model through the device throughput model::

    hours = weighted_ops_per_sample / throughput * n_samples / 3600

The study reports, for every network size and every GPU of Table I, the
training hours, the inference hours, and the per-image inference latency —
exactly the rows of the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.estimation.hardware import DeviceProfile, default_devices
from repro.estimation.latency import (
    MNIST_TEST_SAMPLES,
    MNIST_TRAIN_SAMPLES,
    ProcessingTimeReport,
    processing_time_report,
)
from repro.experiments.common import (
    ExperimentScale,
    build_model,
    measure_sample_counters,
    sample_images,
)
from repro.snn.simulation import OperationCounter


@dataclass
class ProcessingTimeStudy:
    """Structured output of the Table II reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the per-sample counters were measured at.
    per_sample_counters:
        ``{network_label: {"training": counter, "inference": counter}}``.
    report:
        The assembled :class:`~repro.estimation.latency.ProcessingTimeReport`.
    """

    scale: ExperimentScale
    per_sample_counters: Dict[str, Dict[str, OperationCounter]] = field(default_factory=dict)
    report: ProcessingTimeReport = field(default_factory=ProcessingTimeReport)

    def hours(self, process: str, device: str, network: str) -> float:
        """Table II cell lookup (e.g. ``hours("training", "Jetson Nano", "N400")``)."""
        return self.report.hours(process, device, network)

    def to_text(self) -> str:
        """Render the Table II reproduction as plain text."""
        return ("Table II — SpikeDyn processing time (extrapolated to full MNIST)\n"
                + self.report.to_text())


def run_processing_time_study(
    scale: Optional[ExperimentScale] = None,
    *,
    devices: Optional[Sequence[DeviceProfile]] = None,
    n_train: int = MNIST_TRAIN_SAMPLES,
    n_test: int = MNIST_TEST_SAMPLES,
    energy_measurement_samples: int = 2,
) -> ProcessingTimeStudy:
    """Reproduce the processing-time study of Table II.

    Parameters
    ----------
    scale:
        Experiment scale used to measure per-sample operation counters;
        defaults to :meth:`ExperimentScale.tiny`.
    devices:
        GPU profiles; defaults to the paper's three devices.
    n_train, n_test:
        Phase sample counts (the paper uses the full MNIST 60k / 10k split).
    energy_measurement_samples:
        Number of samples averaged for the per-sample measurement.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    devices = list(devices) if devices is not None else default_devices()
    study = ProcessingTimeStudy(scale=scale)
    images = sample_images(scale, energy_measurement_samples)

    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        model = build_model("spikedyn", scale.config(n_exc))
        counters = measure_sample_counters(model, images)
        study.per_sample_counters[label] = {
            "training": counters.training,
            "inference": counters.inference,
        }

    study.report = processing_time_report(
        study.per_sample_counters,
        devices=devices,
        n_train=n_train,
        n_test=n_test,
    )
    return study

"""Fig. 5 — validation of the analytical memory/energy models (Section III-C).

The paper validates the analytical estimates

* ``mem = (Pw + Pn) * BP``  (memory footprint) and
* ``E = E1 * N``            (phase energy)

against actual execution runs and reports errors below 5 %, plus the
exploration-time savings of searching with the analytical models (one sample
per candidate and phase) instead of actually running every configuration on
the full dataset.

In this reproduction the "actual run" replays several real samples through a
constructed network: the measured memory additionally contains the transient
simulation state (conductances, traces, spike flags), and the measured energy
averages over the per-sample variability of the Poisson encoding and of the
learning dynamics — both of which the analytical models deliberately ignore,
which is exactly where the (small) validation error comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.estimation.actual_run import actual_memory_bytes, run_actual_measurement
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts
from repro.evaluation.reporting import format_table
from repro.experiments.common import ExperimentScale, build_model, sample_images
from repro.utils.validation import check_positive_int


@dataclass
class ValidationRow:
    """Analytical-vs-actual comparison for one network size.

    All energies are for the scaled phase (``N`` samples); errors are
    relative to the actual-run reference.
    """

    n_exc: int
    analytical_memory_bytes: float
    actual_memory_bytes: float
    analytical_training_joules: float
    actual_training_joules: float
    analytical_inference_joules: float
    actual_inference_joules: float

    @staticmethod
    def _relative_error(analytical: float, actual: float) -> float:
        if actual == 0.0:
            return 0.0
        return abs(analytical - actual) / actual

    @property
    def memory_error(self) -> float:
        """Relative memory-estimation error."""
        return self._relative_error(self.analytical_memory_bytes,
                                    self.actual_memory_bytes)

    @property
    def training_energy_error(self) -> float:
        """Relative training-energy estimation error."""
        return self._relative_error(self.analytical_training_joules,
                                    self.actual_training_joules)

    @property
    def inference_energy_error(self) -> float:
        """Relative inference-energy estimation error."""
        return self._relative_error(self.analytical_inference_joules,
                                    self.actual_inference_joules)


@dataclass
class AnalyticalValidationResult:
    """Structured output of the Fig. 5 reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    device:
        Device used for the energy conversion.
    rows:
        One :class:`ValidationRow` per evaluated network size (Fig. 5a-c).
    search_exploration_seconds:
        Estimated wall-clock time of exploring each candidate with one sample
        per phase (Fig. 5d,e "analytical" bar).
    actual_exploration_seconds:
        Estimated wall-clock time of actually running every candidate on the
        full ``N``-sample phases (Fig. 5d,e "actual run" bar).
    """

    scale: ExperimentScale
    device: str
    rows: List[ValidationRow] = field(default_factory=list)
    search_exploration_seconds: float = 0.0
    actual_exploration_seconds: float = 0.0

    @property
    def max_error(self) -> float:
        """Largest relative error across all quantities and network sizes."""
        errors = []
        for row in self.rows:
            errors.extend([row.memory_error, row.training_energy_error,
                           row.inference_energy_error])
        return max(errors) if errors else 0.0

    @property
    def exploration_speedup(self) -> float:
        """How many times faster the analytical exploration is."""
        if self.search_exploration_seconds == 0.0:
            return float("inf")
        return self.actual_exploration_seconds / self.search_exploration_seconds

    def to_text(self) -> str:
        """Render the Fig. 5 panels as plain-text tables."""
        lines: List[str] = [
            f"Fig. 5(a-c) — analytical models vs. actual runs (device: {self.device})"
        ]
        rows = []
        for row in self.rows:
            rows.append([
                row.n_exc,
                row.analytical_memory_bytes / 1024.0,
                row.actual_memory_bytes / 1024.0,
                row.memory_error * 100.0,
                row.analytical_training_joules / 1e3,
                row.actual_training_joules / 1e3,
                row.training_energy_error * 100.0,
                row.analytical_inference_joules / 1e3,
                row.actual_inference_joules / 1e3,
                row.inference_energy_error * 100.0,
            ])
        lines.append(format_table(
            ["n_exc",
             "mem_KB(analytical)", "mem_KB(actual)", "mem_err_%",
             "train_kJ(analytical)", "train_kJ(actual)", "train_err_%",
             "infer_kJ(analytical)", "infer_kJ(actual)", "infer_err_%"],
            rows,
        ))
        lines.append("")
        lines.append("Fig. 5(d,e) — exploration time")
        lines.append(format_table(
            ["method", "duration_s"],
            [["analytical search", self.search_exploration_seconds],
             ["actual runs", self.actual_exploration_seconds]],
        ))
        return "\n".join(lines)


def run_analytical_validation(
    scale: Optional[ExperimentScale] = None,
    *,
    device: DeviceProfile = GTX_1080_TI,
    network_sizes: Optional[Sequence[int]] = None,
    actual_run_samples: int = 3,
) -> AnalyticalValidationResult:
    """Reproduce the analytical-model validation of Fig. 5.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    device:
        GPU profile used for the energy conversion.
    network_sizes:
        Excitatory-layer sizes to validate; defaults to the scale's sizes.
    actual_run_samples:
        Number of samples replayed for the actual-run reference measurement.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    check_positive_int(actual_run_samples, "actual_run_samples")
    sizes = list(network_sizes) if network_sizes is not None else list(scale.network_sizes)
    energy_model = EnergyModel(device)
    result = AnalyticalValidationResult(scale=scale, device=device.name)

    images = sample_images(scale, actual_run_samples)
    n_train = scale.n_training_samples
    n_infer = scale.n_inference_samples

    for n_exc in sizes:
        config = scale.config(n_exc)
        model = build_model("spikedyn", config)

        # Analytical estimates: (Pw + Pn) * BP and E = E1 * N from one sample.
        counts = architecture_parameter_counts(ARCH_SPIKEDYN, config.n_input, n_exc)
        analytical_memory = counts.memory_bytes(config.bit_precision)

        before = model.counter.copy()
        model.train_sample(images[0])
        analytical_training = energy_model.estimate(
            model.counter - before
        ).scaled(float(n_train)).joules

        before = model.counter.copy()
        model.respond(images[0])
        analytical_inference = energy_model.estimate(
            model.counter - before
        ).scaled(float(n_infer)).joules

        # Actual-run reference: replay several samples and extrapolate.
        reference = build_model("spikedyn", config)
        trains = [reference.encoder.encode(image) for image in images]
        training_run = run_actual_measurement(
            reference.network, trains, learning=True, device=device,
            bit_precision=config.bit_precision,
        )
        inference_run = run_actual_measurement(
            reference.network, trains, learning=False, device=device,
            bit_precision=config.bit_precision,
        )
        actual_memory = actual_memory_bytes(reference.network, config.bit_precision)

        result.rows.append(ValidationRow(
            n_exc=n_exc,
            analytical_memory_bytes=analytical_memory,
            actual_memory_bytes=actual_memory,
            analytical_training_joules=analytical_training,
            actual_training_joules=training_run.extrapolated(n_train).joules,
            analytical_inference_joules=analytical_inference,
            actual_inference_joules=inference_run.extrapolated(n_infer).joules,
        ))

        # Exploration time: one sample per phase (search) vs. N samples (actual).
        per_sample_training = training_run.per_sample_energy.seconds
        per_sample_inference = inference_run.per_sample_energy.seconds
        result.search_exploration_seconds += per_sample_training + per_sample_inference
        result.actual_exploration_seconds += (
            per_sample_training * n_train + per_sample_inference * n_infer
        )

    return result

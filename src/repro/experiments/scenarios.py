"""Scenario experiments — continual learning beyond the paper's two streams.

The paper evaluates two environments (Section IV): strict task-incremental
("dynamic") and i.i.d. shuffled ("non-dynamic").  The drivers here run the
three comparison partners through the richer workloads of the scenario
catalogue (:data:`repro.scenarios.SCENARIOS`) — class-incremental arrival,
recurring tasks, concept drift, input corruption — and report the full
continual-learning accuracy matrix plus the forgetting/transfer summary
metrics of :mod:`repro.evaluation.continual`.

Each driver follows the registry contract ``runner(scale, **overrides)`` and
is fully deterministic in ``scale.seed``, so scenario runs flow through the
parallel runner's content-addressed result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.continual import ContinualResult, run_scenario_protocol
from repro.evaluation.reporting import format_table
from repro.experiments.common import (
    MODEL_ORDER,
    ExperimentScale,
    build_model,
    default_digit_source,
)
from repro.scenarios.spec import ScenarioSpec, get_scenario
from repro.utils.rng import ensure_rng


@dataclass
class ScenarioStudyResult:
    """Structured output of one scenario experiment.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    scenario:
        Catalogue name of the scenario.
    spec:
        The materialized scenario declaration (schedule + transforms).
    results:
        ``{model: ContinualResult}`` at the study's network size.
    n_exc:
        Excitatory-layer size the study ran with (the scale's largest).
    """

    scale: ExperimentScale
    scenario: str
    spec: ScenarioSpec
    results: Dict[str, ContinualResult] = field(default_factory=dict)
    n_exc: int = 0

    def to_text(self) -> str:
        """Render the accuracy matrices and the summary metrics as tables."""
        lines: List[str] = []
        lines.append(f"Scenario {self.scenario!r} — {self.spec.description}")
        schedule = self.spec.schedule
        transforms = ", ".join(t["kind"] for t in self.spec.transforms) or "none"
        lines.append(
            f"schedule: {schedule['kind']}, phases: "
            f"{len(self.spec.phases())}, transforms: {transforms}, "
            f"network: N{self.n_exc}"
        )
        lines.append("")

        task_ids: List[int] = []
        for result in self.results.values():
            task_ids = result.task_ids
            break
        headers = ["model", "phase"] + [f"task-{task}" for task in task_ids]
        for model, result in self.results.items():
            lines.append(f"accuracy matrix of {model!r} [%] "
                         "(row i = after training phase i)")
            rows = []
            for phase in result.phases:
                rows.append(
                    [model, f"{phase.index} (task {phase.task_id})"]
                    + [value * 100.0 for value in result.accuracy_matrix[phase.index]]
                )
            lines.append(format_table(headers, rows))
            lines.append("")

        lines.append("continual-learning summary "
                     "(accuracies and transfers in percentage points)")
        rows = []
        for model, result in self.results.items():
            summary = result.summary()
            rows.append([
                model,
                summary["average_accuracy"] * 100.0,
                summary["average_forgetting"] * 100.0,
                summary["backward_transfer"] * 100.0,
                summary["forward_transfer"] * 100.0,
            ])
        lines.append(format_table(
            ["model", "avg_accuracy", "avg_forgetting", "bwt", "fwt"], rows
        ))
        return "\n".join(lines).rstrip()


def run_scenario_study(
    scale: Optional[ExperimentScale] = None,
    *,
    scenario: str = "class-incremental",
    models: Sequence[str] = MODEL_ORDER,
) -> ScenarioStudyResult:
    """Run one catalogue scenario for every comparison partner.

    The study runs at the scale's largest network size (the scenario axis
    varies the *workload*, not the architecture — the architecture axis is
    Fig. 9's job).

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    scenario:
        Catalogue name (see :func:`repro.scenarios.scenario_names`).
    models:
        Which comparison partners to evaluate (default: all three).
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    spec = get_scenario(scenario, scale)
    n_exc = max(scale.network_sizes)

    result = ScenarioStudyResult(
        scale=scale, scenario=scenario, spec=spec, n_exc=n_exc
    )
    for model_name in models:
        model = build_model(model_name, scale.config(n_exc))
        source = default_digit_source(scale)
        result.results[model_name] = run_scenario_protocol(
            model,
            source,
            spec,
            eval_samples_per_class=scale.eval_samples_per_class,
            eval_batch_size=scale.eval_batch_size,
            rng=ensure_rng(scale.seed),
        )
    return result


def run_class_incremental_scenario(
    scale: Optional[ExperimentScale] = None, **overrides
) -> ScenarioStudyResult:
    """Class-incremental arrival with two-class tasks."""
    return run_scenario_study(scale, scenario="class-incremental", **overrides)


def run_recurring_scenario(
    scale: Optional[ExperimentScale] = None, **overrides
) -> ScenarioStudyResult:
    """Recurring/interleaved single-class tasks over two cycles."""
    return run_scenario_study(scale, scenario="recurring", **overrides)


def run_drift_scenario(
    scale: Optional[ExperimentScale] = None, **overrides
) -> ScenarioStudyResult:
    """Gradual concept drift from the first class to the last."""
    return run_scenario_study(scale, scenario="label-drift", **overrides)


def run_corrupted_scenario(
    scale: Optional[ExperimentScale] = None, **overrides
) -> ScenarioStudyResult:
    """Class-incremental arrival under Gaussian noise and occlusion."""
    return run_scenario_study(scale, scenario="corrupted", **overrides)

"""Event-driven execution study: long-horizon streams, O(events) cost.

The clock-driven engine pays for every timestep of a presentation whether
or not anything happens in it; on the long-horizon, low-rate workloads the
event-stream encoders produce (DVS-style bursts separated by hundreds of
silent milliseconds), almost all of that cost is spent proving that nothing
happened.  This driver runs the same labelled event streams through both
engines of the *same* network and reports

* **equivalence** — per-stream excitatory spike counts and the derived
  predictions must match the stepped reference exactly (the event engine
  only ever skips provably silent spans);
* **event accounting** — the :class:`~repro.snn.simulation.OperationCounter`
  tallies ``events_processed`` / ``steps_skipped`` introduced for the event
  engine, plus the fraction of timesteps actually executed;
* **energy proxy** — the operation-weighted energy estimate of both paths
  on a reference device, i.e. what the skipped timesteps are worth.

Two identically seeded models are built so both engines start from
bit-identical weights and adaptation state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.event_streams import EventStreamDigitSource
from repro.encoding.events import DVSEventStreamEncoder
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import default_devices
from repro.evaluation.labeling import assign_neuron_labels, predict_from_responses
from repro.evaluation.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    build_model,
    default_digit_source,
)
from repro.models.base import N_CLASSES
from repro.utils.rng import ensure_rng


@dataclass
class EventStreamStudyResult:
    """Structured output of the event-driven execution study.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    backend:
        Compute backend both engines ran on.
    horizon_steps:
        Timesteps per presentation (the long horizon).
    streams:
        Per-stream records: label, event count, density, steps skipped,
        executed-step fraction, and whether counts matched the stepped path.
    equivalence:
        ``{"counts_match": ..., "predictions_match": ...}`` over all streams.
    event_ops:
        Aggregate tallies — ``events_processed``, ``steps_skipped``,
        ``executed_step_fraction`` — plus the operation totals and
        energy-proxy estimates of both paths.
    """

    scale: ExperimentScale
    backend: str = "eventqueue"
    horizon_steps: int = 0
    streams: List[Dict[str, object]] = field(default_factory=list)
    equivalence: Dict[str, bool] = field(default_factory=dict)
    event_ops: Dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        lines: List[str] = [
            "Event-driven execution study "
            f"(backend={self.backend}, horizon={self.horizon_steps} steps)",
        ]
        rows = [
            [
                record["label"],
                record["n_events"],
                f"{record['density']:.4f}",
                record["steps_skipped"],
                f"{record['executed_fraction']:.3f}",
                "yes" if record["counts_match"] else "NO",
            ]
            for record in self.streams
        ]
        lines.append(format_table(
            ["label", "events", "density", "skipped", "executed", "counts=="],
            rows,
        ))
        lines.append("")
        lines.append(
            f"equivalence: counts_match={self.equivalence['counts_match']} "
            f"predictions_match={self.equivalence['predictions_match']}"
        )
        lines.append(
            "event engine tallies: "
            f"events_processed={int(self.event_ops['events_processed'])} "
            f"steps_skipped={int(self.event_ops['steps_skipped'])} "
            f"executed_step_fraction="
            f"{self.event_ops['executed_step_fraction']:.3f}"
        )
        lines.append(
            "energy proxy "
            f"({self.event_ops['device']}): "
            f"stepped={self.event_ops['stepped_joules']:.3e} J "
            f"events={self.event_ops['event_joules']:.3e} J "
            f"(x{self.event_ops['energy_ratio']:.2f} less)"
        )
        return "\n".join(lines)


def run_eventstream_study(
    scale: Optional[ExperimentScale] = None,
    *,
    model: str = "spikedyn",
    backend: str = "eventqueue",
    classes: Sequence[int] = (0, 1, 2),
    streams_per_class: int = 1,
    duration: float = 600.0,
    n_bursts: int = 5,
    burst_steps: int = 6,
    max_probability: float = 0.08,
) -> EventStreamStudyResult:
    """Run the event-driven execution study.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    model:
        Which comparison partner's network to run (``"spikedyn"`` default).
    backend:
        Compute backend for both engines (default the event-queue backend,
        whose stepped kernels are the sparse kernels bit for bit).
    classes, streams_per_class:
        Which digit classes to encode and how many streams per class.
    duration, n_bursts, burst_steps, max_probability:
        :class:`~repro.encoding.events.DVSEventStreamEncoder` knobs; the
        defaults give a sub-1 % density, 600-step horizon.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    config = scale.config(scale.network_sizes[0], backend=backend)
    encoder = DVSEventStreamEncoder(
        duration=duration,
        dt=config.dt,
        n_bursts=n_bursts,
        burst_steps=burst_steps,
        max_probability=max_probability,
        rng=ensure_rng(scale.seed),
    )
    source = EventStreamDigitSource(default_digit_source(scale), encoder)
    samples, labels = source.labelled_streams(
        streams_per_class, classes=classes, rng=ensure_rng(scale.seed + 1)
    )

    # Two identically seeded models: both engines start from bit-identical
    # weights and adaptation state, so any result difference is the engine's.
    stepped_model = build_model(model, config)
    event_model = build_model(model, config)

    result = EventStreamStudyResult(
        scale=scale,
        backend=event_model.backend_name,
        horizon_steps=encoder.timesteps,
    )

    stepped_responses = np.zeros((len(samples), config.n_exc))
    event_responses = np.zeros((len(samples), config.n_exc))
    for index, sample in enumerate(samples):
        dense = sample.stream.to_dense()

        before = stepped_model.counter.copy()
        stepped_responses[index] = stepped_model.network.run_sample(
            dense, learning=False
        ).counts("excitatory")
        stepped_delta = stepped_model.counter - before

        before = event_model.counter.copy()
        event_responses[index] = event_model.respond_events(sample.stream)
        event_delta = event_model.counter - before

        counts_match = bool(np.array_equal(stepped_responses[index],
                                           event_responses[index]))
        result.streams.append({
            "label": int(sample.label),
            "n_events": int(sample.stream.n_events),
            "density": float(sample.stream.density),
            "steps_skipped": int(event_delta.steps_skipped),
            "executed_fraction": float(
                1.0 - event_delta.steps_skipped / encoder.timesteps
            ),
            "counts_match": counts_match,
            "stepped_ops": int(stepped_delta.total_ops()),
            "event_ops": int(event_delta.total_ops()),
        })

    assignments = assign_neuron_labels(stepped_responses, labels, N_CLASSES)
    stepped_pred = predict_from_responses(stepped_responses, assignments,
                                          N_CLASSES)
    event_pred = predict_from_responses(event_responses, assignments,
                                        N_CLASSES)
    result.equivalence = {
        "counts_match": all(r["counts_match"] for r in result.streams),
        "predictions_match": bool(np.array_equal(stepped_pred, event_pred)),
    }

    device = default_devices()[0]
    energy_model = EnergyModel(device)
    stepped_joules = energy_model.estimate(stepped_model.counter).joules
    event_joules = energy_model.estimate(event_model.counter).joules
    counter = event_model.counter
    total_steps = encoder.timesteps * len(samples)
    result.event_ops = {
        "events_processed": float(counter.events_processed),
        "steps_skipped": float(counter.steps_skipped),
        "executed_step_fraction": float(
            1.0 - counter.steps_skipped / total_steps
        ),
        "stepped_total_ops": float(stepped_model.counter.total_ops()),
        "event_total_ops": float(counter.total_ops()),
        "device": device.name,
        "stepped_joules": float(stepped_joules),
        "event_joules": float(event_joules),
        "energy_ratio": float(stepped_joules / event_joules)
        if event_joules else float("inf"),
    }
    return result

"""Mechanism ablation — the design choices DESIGN.md calls out.

SpikeDyn's learning algorithm combines four mechanisms (Section III-D):
adaptive learning rates, synaptic weight decay, the adaptive membrane
threshold potential, and spurious-update reduction via timestep-gated
updates.  This study disables one mechanism at a time (plus a "none"
variant that disables all four) and measures the impact on dynamic-scenario
accuracy and on per-sample training energy, making the contribution of each
mechanism explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.core.weight_decay import SynapticWeightDecay
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.evaluation.protocols import DynamicProtocolResult, run_dynamic_protocol
from repro.evaluation.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    build_model,
    default_digit_source,
    sample_images,
)
from repro.utils.rng import ensure_rng

#: Ablation variants: which mechanism is disabled in each.
ABLATION_VARIANTS: Tuple[str, ...] = (
    "full",
    "no_adaptive_rates",
    "no_weight_decay",
    "no_adaptive_threshold",
    "no_update_gating",
    "none",
)


def _variant_rule(variant: str, config: SpikeDynConfig) -> SpikeDynLearningRule:
    """Build the SpikeDyn learning rule with one mechanism disabled."""
    adaptive_rates = variant not in ("no_adaptive_rates", "none")
    gate_updates = variant not in ("no_update_gating", "none")
    use_decay = variant not in ("no_weight_decay", "none")
    decay = (SynapticWeightDecay(config.effective_w_decay, config.tau_decay)
             if use_decay else None)
    return SpikeDynLearningRule(
        nu_pre=config.nu_pre,
        nu_post=config.nu_post,
        spike_threshold=config.spike_threshold,
        update_interval=config.update_interval,
        weight_decay=decay,
        adaptive_rates=adaptive_rates,
        gate_updates=gate_updates,
        soft_bounds=config.soft_bounds,
        tau_pre=config.tau_pre,
        tau_post=config.tau_post,
    )


def _variant_config(variant: str, scale: ExperimentScale, n_exc: int) -> SpikeDynConfig:
    """Configuration for one ablation variant.

    Disabling the adaptive threshold sets ``c_theta`` to zero, which makes
    the adaptation potential vanish (the neurons keep a fixed threshold).
    """
    if variant in ("no_adaptive_threshold", "none"):
        return scale.config(n_exc, c_theta=0.0)
    return scale.config(n_exc)


@dataclass
class AblationVariantResult:
    """Accuracy and energy outcome of one ablation variant."""

    variant: str
    protocol: DynamicProtocolResult
    training_energy_joules: float

    @property
    def mean_recent_accuracy(self) -> float:
        """Mean accuracy on the most recently learned task."""
        return self.protocol.mean_recent_accuracy

    @property
    def mean_final_accuracy(self) -> float:
        """Mean accuracy on previously learned tasks."""
        return self.protocol.mean_final_accuracy


@dataclass
class AblationResult:
    """Structured output of the mechanism-ablation study.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    device:
        Device used for the energy conversion.
    variants:
        ``{variant: AblationVariantResult}`` in the canonical variant order.
    """

    scale: ExperimentScale
    device: str
    variants: Dict[str, AblationVariantResult] = field(default_factory=dict)

    def normalized_training_energy(self) -> Dict[str, float]:
        """Training energy of every variant normalized to the full SpikeDyn."""
        reference = self.variants["full"].training_energy_joules
        if reference == 0.0:
            raise ZeroDivisionError("the full variant recorded zero training energy")
        return {
            variant: result.training_energy_joules / reference
            for variant, result in self.variants.items()
        }

    def to_text(self) -> str:
        """Render the ablation as a plain-text table."""
        lines: List[str] = [
            f"Mechanism ablation (device: {self.device}) — accuracy and training energy"
        ]
        normalized = self.normalized_training_energy()
        rows = []
        for variant, result in self.variants.items():
            rows.append([
                variant,
                result.mean_recent_accuracy * 100.0,
                result.mean_final_accuracy * 100.0,
                normalized[variant],
            ])
        lines.append(format_table(
            ["variant", "recent_acc_%", "final_acc_%", "norm_train_energy"], rows
        ))
        return "\n".join(lines)


def run_mechanism_ablation(
    scale: Optional[ExperimentScale] = None,
    *,
    device: DeviceProfile = GTX_1080_TI,
    variants: Tuple[str, ...] = ABLATION_VARIANTS,
    energy_measurement_samples: int = 2,
) -> AblationResult:
    """Run the mechanism ablation study.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    device:
        GPU profile used for the energy conversion.
    variants:
        Which ablation variants to evaluate (see :data:`ABLATION_VARIANTS`).
    energy_measurement_samples:
        Number of samples averaged for the per-sample energy measurement.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    for variant in variants:
        if variant not in ABLATION_VARIANTS:
            raise ValueError(
                f"unknown ablation variant {variant!r}; "
                f"known variants: {list(ABLATION_VARIANTS)}"
            )

    energy_model = EnergyModel(device)
    result = AblationResult(scale=scale, device=device.name)
    images = sample_images(scale, energy_measurement_samples)
    n_exc = max(scale.network_sizes)

    for variant in variants:
        config = _variant_config(variant, scale, n_exc)
        rule = _variant_rule(variant, config)
        model = build_model("spikedyn", config, learning_rule=rule)

        # Per-sample training energy of this variant.
        total = 0.0
        for image in images:
            before = model.counter.copy()
            model.train_sample(image)
            total += energy_model.estimate(model.counter - before).joules
        training_energy = total / len(images)

        # Fresh model for the accuracy protocol (the energy probe already
        # modified the weights).
        protocol_model = build_model(
            "spikedyn", config, learning_rule=_variant_rule(variant, config)
        )
        source = default_digit_source(scale)
        protocol = run_dynamic_protocol(
            protocol_model,
            source,
            class_sequence=list(scale.class_sequence),
            samples_per_task=scale.samples_per_task,
            eval_samples_per_class=scale.eval_samples_per_class,
            rng=ensure_rng(scale.seed),
        )
        result.variants[variant] = AblationVariantResult(
            variant=variant,
            protocol=protocol,
            training_energy_joules=training_energy,
        )
    return result

"""Fig. 4 — eliminating the inhibitory layer (paper Section III-B).

The driver compares the baseline architecture (excitatory + inhibitory
layers) against SpikeDyn's optimized architecture (direct lateral inhibition)
on three axes:

* Fig. 4(b): analytical memory footprint of both architectures;
* Fig. 4(c): per-sample inference energy of both architectures, normalized to
  the baseline architecture;
* Fig. 4(d): the accuracy profile of the optimized architecture in a dynamic
  scenario, which should stay close to the baseline architecture's profile
  (the learning rule is kept identical for this panel — only the architecture
  changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.architecture import build_baseline_network, build_spikedyn_network
from repro.core.config import SpikeDynConfig
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.estimation.memory import (
    ARCH_BASELINE,
    ARCH_SPIKEDYN,
    architecture_parameter_counts,
)
from repro.evaluation.protocols import DynamicProtocolResult, run_dynamic_protocol
from repro.evaluation.reporting import format_table
from repro.experiments.common import ExperimentScale, default_digit_source, sample_images
from repro.learning.stdp import PairwiseSTDP
from repro.models.base import UnsupervisedDigitClassifier
from repro.snn.network import Network
from repro.utils.rng import ensure_rng

#: Reporting labels of the two compared architectures.
LABEL_BASELINE_ARCH = "exc+inh layers"
LABEL_OPTIMIZED_ARCH = "proposed arch."


@dataclass
class ArchitectureReductionResult:
    """Structured output of the Fig. 4 reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    device:
        Device used for the energy conversion.
    memory_bytes:
        ``{network_label: {architecture: analytical memory in bytes}}``.
    normalized_inference_energy:
        ``{network_label: {architecture: per-sample inference energy
        normalized to the baseline architecture}}``.
    accuracy_profiles:
        ``{architecture: DynamicProtocolResult}`` for the largest network
        size, both architectures trained with the *same* (plain STDP)
        learning rule.
    """

    scale: ExperimentScale
    device: str
    memory_bytes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    normalized_inference_energy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    accuracy_profiles: Dict[str, DynamicProtocolResult] = field(default_factory=dict)

    def memory_savings(self, network_label: str) -> float:
        """Fraction of memory saved by the optimized architecture."""
        entry = self.memory_bytes[network_label]
        return 1.0 - entry[LABEL_OPTIMIZED_ARCH] / entry[LABEL_BASELINE_ARCH]

    def energy_savings(self, network_label: str) -> float:
        """Fraction of inference energy saved by the optimized architecture."""
        entry = self.normalized_inference_energy[network_label]
        return 1.0 - entry[LABEL_OPTIMIZED_ARCH] / entry[LABEL_BASELINE_ARCH]

    def to_text(self) -> str:
        """Render the Fig. 4(b,c,d) panels as plain-text tables."""
        lines: List[str] = ["Fig. 4(b) — analytical memory footprint [KB]"]
        memory_rows = []
        for label, entry in self.memory_bytes.items():
            for arch, value in entry.items():
                memory_rows.append([label, arch, value / 1024.0])
        lines.append(format_table(["network", "architecture", "memory_KB"], memory_rows))

        lines.append("")
        lines.append(
            "Fig. 4(c) — inference energy normalized to the exc+inh architecture "
            f"(device: {self.device})"
        )
        energy_rows = []
        for label, entry in self.normalized_inference_energy.items():
            for arch, value in entry.items():
                energy_rows.append([label, arch, value])
        lines.append(format_table(
            ["network", "architecture", "normalized_energy"], energy_rows
        ))

        lines.append("")
        lines.append("Fig. 4(d) — accuracy profile parity (same STDP rule)")
        accuracy_rows = []
        for arch, result in self.accuracy_profiles.items():
            for task in result.class_sequence:
                accuracy_rows.append([
                    arch, f"digit-{task}",
                    result.final_task_accuracy[task] * 100.0,
                ])
        lines.append(format_table(["architecture", "task", "accuracy_%"], accuracy_rows))
        return "\n".join(lines)


class _ArchitectureProbe(UnsupervisedDigitClassifier):
    """Digit classifier wrapping an arbitrary pre-built network.

    Fig. 4(d) isolates the *architecture* change: both networks are trained
    with the same plain pairwise-STDP rule, so neither SpikeDyn's learning
    algorithm nor ASP's plasticity is involved.
    """

    def __init__(self, config: SpikeDynConfig, network: Network, name: str) -> None:
        super().__init__(config, network, name=name)

    def architecture_name(self) -> str:
        return ARCH_SPIKEDYN if self.name == LABEL_OPTIMIZED_ARCH else ARCH_BASELINE


def _build_probe(architecture: str, config: SpikeDynConfig) -> _ArchitectureProbe:
    """Build a probe classifier for one of the two architectures."""
    rule = PairwiseSTDP(
        nu_pre=config.nu_pre,
        nu_post=config.nu_post,
        tau_pre=config.tau_pre,
        tau_post=config.tau_post,
        soft_bounds=config.soft_bounds,
    )
    if architecture == LABEL_BASELINE_ARCH:
        network = build_baseline_network(config, learning_rule=rule, rng=config.seed)
    else:
        network = build_spikedyn_network(config, learning_rule=rule, rng=config.seed)
    return _ArchitectureProbe(config, network, name=architecture)


def run_architecture_reduction(
    scale: Optional[ExperimentScale] = None,
    *,
    device: DeviceProfile = GTX_1080_TI,
    energy_measurement_samples: int = 2,
    include_accuracy_profile: bool = True,
) -> ArchitectureReductionResult:
    """Reproduce the architecture-reduction study of Fig. 4.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    device:
        GPU profile used for the energy conversion.
    energy_measurement_samples:
        Number of samples averaged for the per-sample energy measurement.
    include_accuracy_profile:
        Skip the (comparatively slow) Fig. 4(d) panel when ``False``.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    energy_model = EnergyModel(device)
    result = ArchitectureReductionResult(scale=scale, device=device.name)
    images = sample_images(scale, energy_measurement_samples)

    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        config = scale.config(n_exc)

        baseline_counts = architecture_parameter_counts(
            ARCH_BASELINE, config.n_input, n_exc
        )
        spikedyn_counts = architecture_parameter_counts(
            ARCH_SPIKEDYN, config.n_input, n_exc
        )
        result.memory_bytes[label] = {
            LABEL_BASELINE_ARCH: baseline_counts.memory_bytes(config.bit_precision),
            LABEL_OPTIMIZED_ARCH: spikedyn_counts.memory_bytes(config.bit_precision),
        }

        energies: Dict[str, float] = {}
        for arch in (LABEL_BASELINE_ARCH, LABEL_OPTIMIZED_ARCH):
            probe = _build_probe(arch, config)
            total = 0.0
            for image in images:
                before = probe.counter.copy()
                probe.respond(image)
                total += energy_model.estimate(probe.counter - before).joules
            energies[arch] = total / len(images)
        reference = energies[LABEL_BASELINE_ARCH]
        result.normalized_inference_energy[label] = {
            arch: value / reference for arch, value in energies.items()
        }

    if include_accuracy_profile:
        largest = max(scale.network_sizes)
        for arch in (LABEL_BASELINE_ARCH, LABEL_OPTIMIZED_ARCH):
            probe = _build_probe(arch, scale.config(largest))
            source = default_digit_source(scale)
            result.accuracy_profiles[arch] = run_dynamic_protocol(
                probe,
                source,
                class_sequence=list(scale.class_sequence),
                samples_per_task=scale.samples_per_task,
                eval_samples_per_class=scale.eval_samples_per_class,
                rng=ensure_rng(scale.seed),
            )
    return result

"""Fig. 11 — training and inference energy normalized to the baseline.

For every network size and every GPU of Table I, the per-sample training and
inference energy of the three comparison partners is measured (from the
simulation's operation counters through the device cost model) and normalized
to the baseline.  The paper's headline numbers — SpikeDyn saves on average
51 % training / 37 % inference energy versus ASP for N400 — are ratios of
these normalized values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import DeviceProfile, default_devices
from repro.evaluation.reporting import format_table, normalize_to
from repro.experiments.common import (
    MODEL_ORDER,
    ExperimentScale,
    build_model,
    measure_sample_counters,
    sample_images,
)


@dataclass
class EnergyComparisonResult:
    """Structured output of the Fig. 11 reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the comparison was run at.
    normalized_training, normalized_inference:
        ``{device: {network_label: {model: energy normalized to baseline}}}``.
    """

    scale: ExperimentScale
    normalized_training: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    normalized_inference: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def savings_vs(self, reference: str, candidate: str = "spikedyn") -> Dict[str, float]:
        """Mean training/inference energy savings of ``candidate`` vs ``reference``.

        Returns ``{"training": fraction, "inference": fraction}`` averaged
        over every device and network size — the quantity the paper reports
        as "reduces the energy consumption on average by ... %".
        """
        savings = {"training": [], "inference": []}
        for phase, table in (("training", self.normalized_training),
                             ("inference", self.normalized_inference)):
            for per_network in table.values():
                for per_model in per_network.values():
                    savings[phase].append(
                        1.0 - per_model[candidate] / per_model[reference]
                    )
        return {
            phase: (sum(values) / len(values) if values else 0.0)
            for phase, values in savings.items()
        }

    def to_text(self) -> str:
        """Render the Fig. 11 panels as one plain-text table per device."""
        lines: List[str] = []
        for device in self.normalized_training:
            lines.append(f"Fig. 11 — energy normalized to the baseline ({device})")
            rows = []
            for label in self.normalized_training[device]:
                for model in self.normalized_training[device][label]:
                    rows.append([
                        label,
                        model,
                        self.normalized_training[device][label][model],
                        self.normalized_inference[device][label][model],
                    ])
            lines.append(format_table(
                ["network", "model", "training", "inference"], rows
            ))
            lines.append("")
        return "\n".join(lines).rstrip()


def run_energy_comparison(
    scale: Optional[ExperimentScale] = None,
    *,
    devices: Optional[Sequence[DeviceProfile]] = None,
    models: Sequence[str] = MODEL_ORDER,
    energy_measurement_samples: int = 2,
) -> EnergyComparisonResult:
    """Reproduce the energy comparison of Fig. 11.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    devices:
        GPU profiles to evaluate on; defaults to the paper's three devices.
    models:
        Which comparison partners to evaluate (default: all three).
    energy_measurement_samples:
        Number of samples averaged for the per-sample energy measurement.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    devices = list(devices) if devices is not None else default_devices()
    result = EnergyComparisonResult(scale=scale)
    images = sample_images(scale, energy_measurement_samples)

    # The operation counters are device independent; measure them once per
    # (model, network size) and convert per device afterwards.
    counters: Dict[str, Dict[str, object]] = {}
    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        counters[label] = {}
        for model_name in models:
            model = build_model(model_name, scale.config(n_exc))
            counters[label][model_name] = measure_sample_counters(model, images)

    for device in devices:
        energy_model = EnergyModel(device)
        result.normalized_training[device.name] = {}
        result.normalized_inference[device.name] = {}
        for label in counters:
            training = {
                model_name: energy_model.estimate(sample.training).joules
                for model_name, sample in counters[label].items()
            }
            inference = {
                model_name: energy_model.estimate(sample.inference).joules
                for model_name, sample in counters[label].items()
            }
            result.normalized_training[device.name][label] = normalize_to(
                training, "baseline"
            )
            result.normalized_inference[device.name][label] = normalize_to(
                inference, "baseline"
            )
    return result

"""Explicit registry of the paper-experiment drivers.

Every table/figure driver of the reproduction is declared here as an
:class:`ExperimentSpec` that names the paper artifact, the callable that runs
it, the scale family it belongs to, and the schema of its structured result.
The registry is the single source of truth consumed by

* the CLI (``repro reproduce`` / ``repro run-all``),
* the parallel runner (:mod:`repro.runner`), which shards a run into one
  :class:`~repro.runner.jobs.JobSpec` per registry unit, and
* ``scripts/run_all_experiments.py``.

A driver is any callable ``runner(scale, **overrides)`` returning either a
plain string or an object with a ``to_text()`` rendering.  ``overrides`` must
be JSON-serializable because they are part of the content-addressed job key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.experiments.ablation import run_mechanism_ablation
from repro.experiments.alg1_search import run_model_search_study
from repro.experiments.common import ExperimentScale
from repro.experiments.fig01_motivation import run_motivation_study
from repro.experiments.fig04_architecture import run_architecture_reduction
from repro.experiments.fig05_analytical import run_analytical_validation
from repro.experiments.fig06_sweep import run_decay_theta_sweep
from repro.experiments.fig09_accuracy import (
    run_dynamic_accuracy_comparison,
    run_nondynamic_accuracy_comparison,
)
from repro.experiments.fig10_confusion import run_confusion_study
from repro.experiments.eventstream import run_eventstream_study
from repro.experiments.fig11_energy import run_energy_comparison
from repro.experiments.scenarios import (
    run_class_incremental_scenario,
    run_corrupted_scenario,
    run_drift_scenario,
    run_recurring_scenario,
)
from repro.experiments.table1_gpus import gpu_specification_table
from repro.experiments.table2_latency import run_processing_time_study

#: Scale families used by full-suite runs to pick the right preset per driver.
#: ``accuracy`` drivers run the protocol workloads, ``energy`` drivers the
#: estimation workloads (larger images, few presentations), ``sweep`` drivers
#: the single-network hyperparameter grids, and ``static`` drivers need no
#: simulation at all.
SCALE_FAMILIES: Tuple[str, ...] = ("accuracy", "energy", "sweep", "static")


def render_report(result: Any) -> str:
    """Plain-text rendering of a driver result (a string or ``to_text()``).

    The single place that defines what counts as a renderable result — used
    by :meth:`ExperimentSpec.report` and the runner's worker.
    """
    text = result.to_text() if hasattr(result, "to_text") else result
    if not isinstance(text, str):
        raise TypeError(
            f"driver result of type {type(result).__name__} renders to neither "
            "str nor to_text()"
        )
    return text


@dataclass(frozen=True)
class ExperimentSpec:
    """Declaration of one paper-experiment driver.

    Attributes
    ----------
    name:
        Canonical CLI name (``repro reproduce <name>``).
    artifact:
        Paper artifact the driver reproduces (e.g. ``"Fig. 9(a,b)"``).
    output:
        Report filename stem used by ``repro run-all`` (``<output>.txt``).
    family:
        Scale family, one of :data:`SCALE_FAMILIES`.
    runner:
        ``runner(scale, **overrides)`` returning a string or an object with
        ``to_text()``.
    schema:
        Top-level fields of the structured result object (``()`` for drivers
        that return plain text).
    """

    name: str
    artifact: str
    output: str
    family: str
    runner: Callable[..., Any] = field(repr=False)
    schema: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.family not in SCALE_FAMILIES:
            known = ", ".join(SCALE_FAMILIES)
            raise ValueError(f"unknown scale family {self.family!r}; known: {known}")

    def run(self, scale: ExperimentScale, **overrides: Any) -> Any:
        """Execute the driver and return its structured result."""
        return self.runner(scale, **overrides)

    def report(self, scale: ExperimentScale, **overrides: Any) -> str:
        """Execute the driver and render its plain-text report."""
        return render_report(self.run(scale, **overrides))

    def job_units(self, scale: ExperimentScale) -> List[Dict[str, Any]]:
        """The independent work units this driver shards into.

        Every driver is currently one unit (its internal network-size loop is
        cheap relative to process overhead at reproduction scales), but the
        runner schedules whatever is declared here, so a driver can later
        split per network size or per model without touching the scheduler.
        """
        del scale
        return [{"experiment": self.name}]


def _static_runner(fn: Callable[[], str]) -> Callable[..., str]:
    """Adapt a zero-argument table renderer to the ``runner(scale)`` shape."""

    def runner(scale: ExperimentScale, **overrides: Any) -> str:
        del scale
        return fn(**overrides)

    return runner


#: All paper-experiment drivers, in the paper's artifact order.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            name="table1",
            artifact="Table I — GPU specifications",
            output="table1_gpu_specs",
            family="static",
            runner=_static_runner(gpu_specification_table),
        ),
        ExperimentSpec(
            name="table2",
            artifact="Table II — processing time on full MNIST",
            output="table2_processing_time",
            family="energy",
            runner=run_processing_time_study,
            schema=("scale", "per_sample_counters", "report"),
        ),
        ExperimentSpec(
            name="fig1",
            artifact="Fig. 1(b,c) — motivational case study",
            output="fig01_motivation",
            family="accuracy",
            runner=run_motivation_study,
            schema=(
                "scale",
                "device",
                "normalized_training_energy",
                "normalized_inference_energy",
                "accuracy_per_task",
            ),
        ),
        ExperimentSpec(
            name="fig4",
            artifact="Fig. 4(b,c,d) — inhibitory-layer elimination",
            output="fig04_arch_reduction",
            family="energy",
            runner=run_architecture_reduction,
            schema=(
                "scale",
                "device",
                "memory_bytes",
                "normalized_inference_energy",
                "accuracy_profiles",
            ),
        ),
        ExperimentSpec(
            name="fig5",
            artifact="Fig. 5(a-e) — analytical-model validation",
            output="fig05_analytical_models",
            family="energy",
            runner=run_analytical_validation,
            schema=(
                "scale",
                "device",
                "rows",
                "search_exploration_seconds",
                "actual_exploration_seconds",
            ),
        ),
        ExperimentSpec(
            name="fig6",
            artifact="Fig. 6 — weight-decay / adaptation-potential sweep",
            output="fig06_decay_theta_sweep",
            family="sweep",
            runner=run_decay_theta_sweep,
            schema=("scale", "points"),
        ),
        ExperimentSpec(
            name="fig9-dynamic",
            artifact="Fig. 9(a,b) — dynamic-environment accuracy",
            output="fig09_dynamic_accuracy",
            family="accuracy",
            runner=run_dynamic_accuracy_comparison,
            schema=("scale", "dynamic"),
        ),
        ExperimentSpec(
            name="fig9-nondynamic",
            artifact="Fig. 9(c) — non-dynamic accuracy",
            output="fig09_nondynamic_accuracy",
            family="accuracy",
            runner=run_nondynamic_accuracy_comparison,
            schema=("scale", "nondynamic"),
        ),
        ExperimentSpec(
            name="fig10",
            artifact="Fig. 10 — confusion matrices",
            output="fig10_confusion",
            family="accuracy",
            runner=run_confusion_study,
            schema=("scale", "protocol_results"),
        ),
        ExperimentSpec(
            name="fig11",
            artifact="Fig. 11 — normalized training/inference energy",
            output="fig11_energy",
            family="energy",
            runner=run_energy_comparison,
            schema=("scale", "normalized_training", "normalized_inference"),
        ),
        ExperimentSpec(
            name="alg1",
            artifact="Alg. 1 — constrained model search",
            output="alg1_model_search",
            family="energy",
            runner=run_model_search_study,
            schema=("scale", "device", "results"),
        ),
        ExperimentSpec(
            name="ablation",
            artifact="Mechanism ablation (design-choice study)",
            output="ablation_mechanisms",
            family="sweep",
            runner=run_mechanism_ablation,
            schema=("scale", "device", "variants"),
        ),
        # Beyond the paper: the event-driven engine study — same network,
        # clock-driven vs event-queue execution on long-horizon DVS-style
        # streams, with exact-equivalence checks and the event-mode
        # operation/energy accounting.
        ExperimentSpec(
            name="eventstream",
            artifact="Event-driven execution (O(events) engine study)",
            output="eventstream_study",
            family="energy",
            runner=run_eventstream_study,
            schema=("scale", "backend", "streams", "equivalence", "event_ops"),
        ),
        # Scenario experiments go beyond the paper's two stock streams: they
        # run the comparison partners through the continual-learning workload
        # catalogue of repro.scenarios and report accuracy-matrix/forgetting
        # metrics (repro.evaluation.continual).
        ExperimentSpec(
            name="scen-classinc",
            artifact="Scenario — class-incremental arrival (two-class tasks)",
            output="scenario_class_incremental",
            family="accuracy",
            runner=run_class_incremental_scenario,
            schema=("scale", "scenario", "results"),
        ),
        ExperimentSpec(
            name="scen-recurring",
            artifact="Scenario — recurring/interleaved tasks",
            output="scenario_recurring",
            family="accuracy",
            runner=run_recurring_scenario,
            schema=("scale", "scenario", "results"),
        ),
        ExperimentSpec(
            name="scen-drift",
            artifact="Scenario — gradual concept drift",
            output="scenario_label_drift",
            family="accuracy",
            runner=run_drift_scenario,
            schema=("scale", "scenario", "results"),
        ),
        ExperimentSpec(
            name="scen-corrupt",
            artifact="Scenario — corrupted inputs (noise + occlusion)",
            output="scenario_corrupted",
            family="accuracy",
            runner=run_corrupted_scenario,
            schema=("scale", "scenario", "results"),
        ),
    )
}


def experiment_names() -> List[str]:
    """Registered driver names in registration (paper-artifact) order."""
    return list(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one driver by CLI name.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is not registered.
    """
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None

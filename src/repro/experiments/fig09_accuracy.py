"""Fig. 9 — classification accuracy in dynamic and non-dynamic environments.

Three panels are reproduced:

* Fig. 9(a.1)/(b.1): accuracy on the *most recently learned* task after each
  task change, for N200 / N400 — the "learning new tasks" capability;
* Fig. 9(a.2)/(b.2): accuracy on every *previously learned* task after the
  whole sequence, for N200 / N400 — the "retaining old information"
  capability;
* Fig. 9(c.1)/(c.2): accuracy as a function of the number of training samples
  in the non-dynamic (randomly ordered) setting.

All three comparison partners (baseline, ASP, SpikeDyn) are evaluated with
identical streams, assignment sets, and evaluation sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.protocols import (
    DynamicProtocolResult,
    NonDynamicProtocolResult,
    run_dynamic_protocol,
    run_nondynamic_protocol,
)
from repro.evaluation.reporting import format_table
from repro.experiments.common import (
    MODEL_ORDER,
    ExperimentScale,
    build_model,
    default_digit_source,
)
from repro.utils.rng import ensure_rng


@dataclass
class AccuracyComparisonResult:
    """Structured output of the Fig. 9(a,b) dynamic-environment panels.

    Attributes
    ----------
    scale:
        The experiment scale the comparison was run at.
    dynamic:
        ``{network_label: {model: DynamicProtocolResult}}``.
    """

    scale: ExperimentScale
    dynamic: Dict[str, Dict[str, DynamicProtocolResult]] = field(default_factory=dict)

    def recent_accuracy(self, network_label: str, model: str) -> float:
        """Mean most-recently-learned-task accuracy of one model."""
        return self.dynamic[network_label][model].mean_recent_accuracy

    def final_accuracy(self, network_label: str, model: str) -> float:
        """Mean previously-learned-task accuracy of one model."""
        return self.dynamic[network_label][model].mean_final_accuracy

    def improvement_over(self, network_label: str, reference: str,
                         candidate: str = "spikedyn") -> Dict[str, float]:
        """Accuracy improvement of ``candidate`` over ``reference`` in points.

        Returns a dictionary with ``recent`` and ``final`` percentage-point
        improvements, mirroring how the paper reports its accuracy gains.
        """
        return {
            "recent": (self.recent_accuracy(network_label, candidate)
                       - self.recent_accuracy(network_label, reference)) * 100.0,
            "final": (self.final_accuracy(network_label, candidate)
                      - self.final_accuracy(network_label, reference)) * 100.0,
        }

    def to_text(self) -> str:
        """Render the dynamic-environment panels as plain-text tables."""
        lines: List[str] = []
        for label, per_model in self.dynamic.items():
            lines.append(f"Fig. 9 ({label}) — most recently learned task accuracy [%]")
            sequence = next(iter(per_model.values())).class_sequence
            rows = []
            for model in per_model:
                rows.append([model] + [
                    per_model[model].recent_task_accuracy[task] * 100.0
                    for task in sequence
                ])
            headers = ["model"] + [f"digit-{task}" for task in sequence]
            lines.append(format_table(headers, rows))

            lines.append("")
            lines.append(f"Fig. 9 ({label}) — previously learned task accuracy [%]")
            rows = []
            for model in per_model:
                rows.append([model] + [
                    per_model[model].final_task_accuracy[task] * 100.0
                    for task in sequence
                ])
            lines.append(format_table(headers, rows))
            lines.append("")
        return "\n".join(lines).rstrip()


@dataclass
class NonDynamicComparisonResult:
    """Structured output of the Fig. 9(c) non-dynamic panels.

    Attributes
    ----------
    scale:
        The experiment scale the comparison was run at.
    nondynamic:
        ``{network_label: {model: NonDynamicProtocolResult}}``.
    """

    scale: ExperimentScale
    nondynamic: Dict[str, Dict[str, NonDynamicProtocolResult]] = field(default_factory=dict)

    def final_accuracy(self, network_label: str, model: str) -> float:
        """Accuracy of one model at the last training-sample checkpoint."""
        return self.nondynamic[network_label][model].final_accuracy

    def to_text(self) -> str:
        """Render the non-dynamic panels as plain-text tables."""
        lines: List[str] = []
        for label, per_model in self.nondynamic.items():
            lines.append(
                f"Fig. 9(c) ({label}) — accuracy vs. number of training samples [%]"
            )
            checkpoints = next(iter(per_model.values())).checkpoints
            rows = []
            for model in per_model:
                rows.append([model] + [
                    per_model[model].accuracy_at_checkpoint[checkpoint] * 100.0
                    for checkpoint in checkpoints
                ])
            headers = ["model"] + [str(checkpoint) for checkpoint in checkpoints]
            lines.append(format_table(headers, rows))
            lines.append("")
        return "\n".join(lines).rstrip()


def run_dynamic_accuracy_comparison(
    scale: Optional[ExperimentScale] = None,
    *,
    models: Sequence[str] = MODEL_ORDER,
) -> AccuracyComparisonResult:
    """Reproduce the dynamic-environment accuracy comparison of Fig. 9(a,b).

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    models:
        Which comparison partners to evaluate (default: all three).
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    result = AccuracyComparisonResult(scale=scale)

    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        result.dynamic[label] = {}
        for model_name in models:
            model = build_model(model_name, scale.config(n_exc))
            source = default_digit_source(scale)
            result.dynamic[label][model_name] = run_dynamic_protocol(
                model,
                source,
                class_sequence=list(scale.class_sequence),
                samples_per_task=scale.samples_per_task,
                eval_samples_per_class=scale.eval_samples_per_class,
                eval_batch_size=scale.eval_batch_size,
                rng=ensure_rng(scale.seed),
            )
    return result


def run_nondynamic_accuracy_comparison(
    scale: Optional[ExperimentScale] = None,
    *,
    models: Sequence[str] = MODEL_ORDER,
) -> NonDynamicComparisonResult:
    """Reproduce the non-dynamic accuracy comparison of Fig. 9(c).

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    models:
        Which comparison partners to evaluate (default: all three).
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    result = NonDynamicComparisonResult(scale=scale)

    classes = list(scale.class_sequence)
    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        result.nondynamic[label] = {}
        for model_name in models:
            model = build_model(model_name, scale.config(n_exc))
            source = default_digit_source(scale)
            result.nondynamic[label][model_name] = run_nondynamic_protocol(
                model,
                source,
                checkpoints=list(scale.nondynamic_checkpoints),
                classes=classes,
                eval_samples_per_class=scale.eval_samples_per_class,
                eval_batch_size=scale.eval_batch_size,
                rng=ensure_rng(scale.seed),
            )
    return result

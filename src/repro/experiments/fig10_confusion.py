"""Fig. 10 — confusion matrices of SpikeDyn on previously learned tasks.

After the dynamic task sequence, the SpikeDyn model is evaluated on every
learned task and the (target, predicted) confusion matrix is assembled for
each network size.  The paper highlights that digit-4 is predominantly
misclassified as digit-9 because their learned features overlap and the
digit-9 task is presented later in the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.evaluation.confusion import most_confused_pair
from repro.evaluation.protocols import DynamicProtocolResult, run_dynamic_protocol
from repro.experiments.common import ExperimentScale, build_model, default_digit_source
from repro.utils.rng import ensure_rng


@dataclass
class ConfusionStudyResult:
    """Structured output of the Fig. 10 reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    protocol_results:
        ``{network_label: DynamicProtocolResult}`` of the SpikeDyn model.
    """

    scale: ExperimentScale
    protocol_results: Dict[str, DynamicProtocolResult] = field(default_factory=dict)

    def confusion(self, network_label: str) -> np.ndarray:
        """Confusion matrix of one network size (targets x predictions)."""
        return self.protocol_results[network_label].confusion

    def most_confused(self, network_label: str) -> Tuple[int, int]:
        """The (target, predicted) pair with the most off-diagonal confusions."""
        return most_confused_pair(self.confusion(network_label))

    def to_text(self) -> str:
        """Render every confusion matrix as a plain-text grid."""
        lines: List[str] = []
        for label, result in self.protocol_results.items():
            lines.append(f"Fig. 10 ({label}) — SpikeDyn confusion matrix "
                         "(rows: targets, columns: predictions)")
            matrix = result.confusion
            header = "      " + " ".join(f"{col:>5d}" for col in range(matrix.shape[1]))
            lines.append(header)
            for target in range(matrix.shape[0]):
                row = " ".join(f"{int(value):>5d}" for value in matrix[target])
                lines.append(f"{target:>5d} {row}")
            confused = self.most_confused(label)
            lines.append(
                f"most confused pair: target digit-{confused[0]} "
                f"predicted as digit-{confused[1]}"
            )
            lines.append("")
        return "\n".join(lines).rstrip()


def run_confusion_study(
    scale: Optional[ExperimentScale] = None,
) -> ConfusionStudyResult:
    """Reproduce the confusion-matrix study of Fig. 10.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    result = ConfusionStudyResult(scale=scale)

    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        model = build_model("spikedyn", scale.config(n_exc))
        source = default_digit_source(scale)
        result.protocol_results[label] = run_dynamic_protocol(
            model,
            source,
            class_sequence=list(scale.class_sequence),
            samples_per_task=scale.samples_per_task,
            eval_samples_per_class=scale.eval_samples_per_class,
            rng=ensure_rng(scale.seed),
        )
    return result

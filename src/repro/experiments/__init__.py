"""Paper-experiment drivers (one module per table / figure).

Every evaluation artifact of the SpikeDyn paper has a driver module here that
builds the required models, runs the (scaled-down by default) workload, and
returns a structured result object with a ``to_text()`` rendering that prints
the same rows or series the paper reports.  The benchmark harness under
``benchmarks/`` and the ``EXPERIMENTS.md`` record are thin wrappers around
these drivers, so the experiment logic lives in exactly one place.

=====================  =====================================================
Module                 Paper artifact
=====================  =====================================================
``fig01_motivation``   Fig. 1(b,c) — motivational case study
``fig04_architecture`` Fig. 4(b,c,d) — inhibitory-layer elimination
``fig05_analytical``   Fig. 5(a-e) — analytical-model validation
``fig06_sweep``        Fig. 6 — weight-decay / adaptation-potential sweep
``fig09_accuracy``     Fig. 9 — dynamic & non-dynamic accuracy
``fig10_confusion``    Fig. 10 — confusion matrices
``fig11_energy``       Fig. 11 — normalized training/inference energy
``table1_gpus``        Table I — GPU specifications
``table2_latency``     Table II — processing time on full MNIST
``alg1_search``        Alg. 1 — constrained model search
``ablation``           mechanism ablation (design-choice study)
``registry``           explicit :class:`ExperimentSpec` registry of all of
                       the above, consumed by the CLI and ``repro.runner``
=====================  =====================================================
"""

from repro.experiments.common import (
    MODEL_BUILDERS,
    ExperimentScale,
    build_model,
    default_digit_source,
    measure_sample_counters,
)
from repro.experiments.fig01_motivation import MotivationResult, run_motivation_study
from repro.experiments.fig04_architecture import (
    ArchitectureReductionResult,
    run_architecture_reduction,
)
from repro.experiments.fig05_analytical import (
    AnalyticalValidationResult,
    run_analytical_validation,
)
from repro.experiments.fig06_sweep import DecayThetaSweepResult, run_decay_theta_sweep
from repro.experiments.fig09_accuracy import (
    AccuracyComparisonResult,
    NonDynamicComparisonResult,
    run_dynamic_accuracy_comparison,
    run_nondynamic_accuracy_comparison,
)
from repro.experiments.eventstream import (
    EventStreamStudyResult,
    run_eventstream_study,
)
from repro.experiments.fig10_confusion import ConfusionStudyResult, run_confusion_study
from repro.experiments.fig11_energy import EnergyComparisonResult, run_energy_comparison
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    experiment_names,
    get_experiment,
)
from repro.experiments.table1_gpus import gpu_specification_table
from repro.experiments.table2_latency import ProcessingTimeStudy, run_processing_time_study
from repro.experiments.alg1_search import ModelSearchStudy, run_model_search_study
from repro.experiments.ablation import AblationResult, run_mechanism_ablation

__all__ = [
    "AblationResult",
    "AccuracyComparisonResult",
    "AnalyticalValidationResult",
    "ArchitectureReductionResult",
    "ConfusionStudyResult",
    "DecayThetaSweepResult",
    "EnergyComparisonResult",
    "EventStreamStudyResult",
    "EXPERIMENTS",
    "ExperimentScale",
    "ExperimentSpec",
    "MODEL_BUILDERS",
    "ModelSearchStudy",
    "MotivationResult",
    "NonDynamicComparisonResult",
    "ProcessingTimeStudy",
    "build_model",
    "default_digit_source",
    "experiment_names",
    "get_experiment",
    "gpu_specification_table",
    "measure_sample_counters",
    "run_analytical_validation",
    "run_architecture_reduction",
    "run_confusion_study",
    "run_decay_theta_sweep",
    "run_dynamic_accuracy_comparison",
    "run_energy_comparison",
    "run_eventstream_study",
    "run_mechanism_ablation",
    "run_model_search_study",
    "run_motivation_study",
    "run_nondynamic_accuracy_comparison",
    "run_processing_time_study",
]

"""Fig. 6 — weight-decay and adaptation-potential sweep (Section III-D).

The paper sweeps the weight-decay rate ``w_decay`` (no decay, 1e-1 ... 1e-4)
and the adaptation-potential scale (via ``c_theta``) and shows their impact
on the accuracy of learning new tasks in a dynamic scenario: an appropriate
``w_decay`` and a balanced ``theta`` both improve the new-task accuracy.

The driver trains one SpikeDyn model per (``w_decay``, ``c_theta``) pair
under the dynamic protocol and records the mean most-recently-learned-task
accuracy, which is the quantity Fig. 6 plots per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.learning import SpikeDynLearningRule
from repro.core.weight_decay import SynapticWeightDecay
from repro.evaluation.protocols import DynamicProtocolResult, run_dynamic_protocol
from repro.evaluation.reporting import format_table
from repro.experiments.common import ExperimentScale, build_model, default_digit_source
from repro.utils.rng import ensure_rng

#: Default sweep values, matching the legend of the paper's Fig. 6
#: (``w_decay``: no decay and four magnitudes; theta scale: 1.0 down to 0.1).
DEFAULT_W_DECAY_VALUES: Tuple[Optional[float], ...] = (None, 1e-1, 1e-2, 1e-3, 1e-4)
DEFAULT_THETA_SCALES: Tuple[float, ...] = (1.0, 0.4, 0.3, 0.2, 0.1)


@dataclass
class SweepPoint:
    """One (``w_decay``, ``c_theta``) sweep point and its accuracy outcome."""

    w_decay: Optional[float]
    theta_scale: float
    result: DynamicProtocolResult

    @property
    def label(self) -> str:
        """Legend label in the paper's ``w_decay / theta`` format."""
        decay_text = "no" if self.w_decay is None else f"{self.w_decay:g}"
        return f"{decay_text} / {self.theta_scale:g}"

    @property
    def mean_recent_accuracy(self) -> float:
        """Mean accuracy on the most recently learned task."""
        return self.result.mean_recent_accuracy


@dataclass
class DecayThetaSweepResult:
    """Structured output of the Fig. 6 reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the sweep was run at.
    points:
        One :class:`SweepPoint` per swept configuration, in sweep order.
    """

    scale: ExperimentScale
    points: List[SweepPoint] = field(default_factory=list)

    def best_point(self) -> SweepPoint:
        """The sweep point with the highest mean new-task accuracy."""
        if not self.points:
            raise ValueError("the sweep recorded no points")
        return max(self.points, key=lambda point: point.mean_recent_accuracy)

    def accuracy_by_label(self) -> Dict[str, float]:
        """``{legend label: mean new-task accuracy}`` for every sweep point."""
        return {point.label: point.mean_recent_accuracy for point in self.points}

    def to_text(self) -> str:
        """Render the sweep as a plain-text table (one row per legend entry)."""
        lines = ["Fig. 6 — impact of w_decay and adaptation potential "
                 "on new-task accuracy"]
        rows = []
        for point in self.points:
            per_task = [
                point.result.recent_task_accuracy[task] * 100.0
                for task in point.result.class_sequence
            ]
            rows.append([point.label, point.mean_recent_accuracy * 100.0]
                        + per_task)
        task_headers = [f"digit-{task}_%" for task in
                        (self.points[0].result.class_sequence if self.points else [])]
        lines.append(format_table(["w_decay / theta", "mean_%"] + task_headers, rows))
        return "\n".join(lines)


def run_decay_theta_sweep(
    scale: Optional[ExperimentScale] = None,
    *,
    w_decay_values: Sequence[Optional[float]] = DEFAULT_W_DECAY_VALUES,
    theta_scales: Sequence[float] = DEFAULT_THETA_SCALES,
    full_grid: bool = False,
) -> DecayThetaSweepResult:
    """Reproduce the Fig. 6 sweep.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    w_decay_values:
        Weight-decay rates to sweep (``None`` disables the decay).
    theta_scales:
        Adaptation-potential scales (``c_theta``) to sweep.
    full_grid:
        When ``False`` (default, matching the paper's legend) the sweep
        follows the paper's two slices: every ``w_decay`` at the first theta
        scale, then every theta scale at the paper's best ``w_decay``.  When
        ``True`` the full Cartesian grid is swept instead.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    if not w_decay_values:
        raise ValueError("w_decay_values must not be empty")
    if not theta_scales:
        raise ValueError("theta_scales must not be empty")

    if full_grid:
        grid = [(decay, theta) for decay in w_decay_values for theta in theta_scales]
    else:
        base_theta = theta_scales[0]
        best_decay = w_decay_values[min(2, len(w_decay_values) - 1)]
        grid = [(decay, base_theta) for decay in w_decay_values]
        grid += [(best_decay, theta) for theta in theta_scales[1:]]

    result = DecayThetaSweepResult(scale=scale)
    largest = max(scale.network_sizes)

    for w_decay, theta_scale in grid:
        config = scale.config(largest, c_theta=theta_scale)
        decay = (SynapticWeightDecay(w_decay, config.tau_decay)
                 if w_decay is not None else None)
        rule = SpikeDynLearningRule(
            nu_pre=config.nu_pre,
            nu_post=config.nu_post,
            spike_threshold=config.spike_threshold,
            update_interval=config.update_interval,
            weight_decay=decay,
            soft_bounds=config.soft_bounds,
            tau_pre=config.tau_pre,
            tau_post=config.tau_post,
        )
        model = build_model("spikedyn", config, learning_rule=rule)
        source = default_digit_source(scale)
        protocol_result = run_dynamic_protocol(
            model,
            source,
            class_sequence=list(scale.class_sequence),
            samples_per_task=scale.samples_per_task,
            eval_samples_per_class=scale.eval_samples_per_class,
            rng=ensure_rng(scale.seed),
        )
        result.points.append(SweepPoint(
            w_decay=w_decay, theta_scale=theta_scale, result=protocol_result
        ))
    return result

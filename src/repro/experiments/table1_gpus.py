"""Table I — GPU specifications of the paper's evaluation platforms."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.estimation.hardware import DeviceProfile, default_devices
from repro.evaluation.reporting import format_table

#: Column order of the paper's Table I.
TABLE1_COLUMNS = (
    "device", "architecture", "cuda_cores", "memory", "interface_width", "power",
)


def gpu_specification_table(
    devices: Optional[Sequence[DeviceProfile]] = None,
) -> str:
    """Render the paper's Table I as a plain-text table.

    Parameters
    ----------
    devices:
        Device profiles to list; defaults to the paper's three GPUs in the
        paper's order (Jetson Nano, GTX 1080 Ti, RTX 2080 Ti).
    """
    devices = list(devices) if devices is not None else default_devices()
    rows: List[List[object]] = []
    for device in devices:
        row = device.table_row()
        rows.append([row[column] for column in TABLE1_COLUMNS])
    return format_table(list(TABLE1_COLUMNS), rows)

"""Fig. 1 — motivational case study (paper Section I-A).

The study feeds consecutive task changes (digit-0, then digit-1, ...) to the
baseline [Diehl & Cook 2015] and to the state-of-the-art ASP [Panda et al.
2018] and reports

* Fig. 1(b): the training and inference energy of ASP normalized to the
  baseline, for two network sizes — ASP costs *more* energy than the baseline
  because of its extra traces and per-timestep weight leak;
* Fig. 1(c): the per-task accuracy of both techniques after the whole task
  sequence — the baseline fails to learn tasks beyond the first ones, ASP
  keeps learning new tasks at the cost of the energy overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.evaluation.protocols import DynamicProtocolResult, run_dynamic_protocol
from repro.evaluation.reporting import format_table, normalize_to
from repro.experiments.common import (
    ExperimentScale,
    build_model,
    default_digit_source,
    measure_sample_counters,
    sample_images,
)
from repro.utils.rng import ensure_rng

#: The two techniques compared in the motivational study.
MOTIVATION_MODELS: Tuple[str, ...] = ("baseline", "asp")


@dataclass
class MotivationResult:
    """Structured output of the Fig. 1 reproduction.

    Attributes
    ----------
    scale:
        The experiment scale the study was run at.
    device:
        Device name used for the energy conversion.
    normalized_training_energy, normalized_inference_energy:
        ``{network_label: {model: energy normalized to the baseline}}``
        (Fig. 1b).
    accuracy_per_task:
        ``{model: DynamicProtocolResult}`` for the largest network size
        (Fig. 1c reports the per-digit accuracy of N400).
    """

    scale: ExperimentScale
    device: str
    normalized_training_energy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    normalized_inference_energy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    accuracy_per_task: Dict[str, DynamicProtocolResult] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the Fig. 1(b) and Fig. 1(c) panels as plain-text tables."""
        lines: List[str] = ["Fig. 1(b) — energy normalized to the baseline "
                            f"(device: {self.device})"]
        rows = []
        for label in self.normalized_training_energy:
            for model in MOTIVATION_MODELS:
                rows.append([
                    label,
                    model,
                    self.normalized_training_energy[label][model],
                    self.normalized_inference_energy[label][model],
                ])
        lines.append(format_table(
            ["network", "model", "training", "inference"], rows
        ))

        lines.append("")
        lines.append("Fig. 1(c) — per-task accuracy after the dynamic sequence")
        accuracy_rows = []
        for model, result in self.accuracy_per_task.items():
            for task in result.class_sequence:
                accuracy_rows.append([
                    model,
                    f"digit-{task}",
                    result.final_task_accuracy[task] * 100.0,
                ])
        lines.append(format_table(["model", "task", "accuracy_%"], accuracy_rows))
        return "\n".join(lines)


def run_motivation_study(
    scale: Optional[ExperimentScale] = None,
    *,
    device: DeviceProfile = GTX_1080_TI,
    energy_measurement_samples: int = 2,
) -> MotivationResult:
    """Reproduce the motivational case study of Fig. 1.

    Parameters
    ----------
    scale:
        Experiment scale; defaults to :meth:`ExperimentScale.tiny`.
    device:
        GPU profile used to convert operation counts into energy.
    energy_measurement_samples:
        Number of samples averaged for the per-sample energy measurement.
    """
    scale = scale if scale is not None else ExperimentScale.tiny()
    energy_model = EnergyModel(device)
    result = MotivationResult(scale=scale, device=device.name)

    images = sample_images(scale, energy_measurement_samples)

    # Fig. 1(b): per-sample energy of ASP relative to the baseline.
    for n_exc, label in zip(scale.network_sizes, scale.network_labels):
        training_energy: Dict[str, float] = {}
        inference_energy: Dict[str, float] = {}
        for model_name in MOTIVATION_MODELS:
            model = build_model(model_name, scale.config(n_exc))
            counters = measure_sample_counters(model, images)
            training_energy[model_name] = energy_model.estimate(counters.training).joules
            inference_energy[model_name] = energy_model.estimate(counters.inference).joules
        result.normalized_training_energy[label] = normalize_to(
            training_energy, "baseline"
        )
        result.normalized_inference_energy[label] = normalize_to(
            inference_energy, "baseline"
        )

    # Fig. 1(c): dynamic-environment accuracy of the largest evaluated network.
    largest = max(scale.network_sizes)
    for model_name in MOTIVATION_MODELS:
        source = default_digit_source(scale)
        model = build_model(model_name, scale.config(largest))
        result.accuracy_per_task[model_name] = run_dynamic_protocol(
            model,
            source,
            class_sequence=list(scale.class_sequence),
            samples_per_task=scale.samples_per_task,
            eval_samples_per_class=scale.eval_samples_per_class,
            rng=ensure_rng(scale.seed),
        )
    return result

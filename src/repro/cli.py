"""Command-line interface for the SpikeDyn reproduction.

The CLI wraps the library's main entry points so the common workflows can be
driven without writing Python:

``spikedyn-repro info``
    Library version, available models, devices, and experiment drivers.
``spikedyn-repro train``
    Train one of the three models on a dynamic (class-sequential) or
    non-dynamic synthetic-digit stream and optionally save it.
``spikedyn-repro evaluate``
    Load a saved model and evaluate its accuracy on fresh samples.
``spikedyn-repro search``
    Run the Alg. 1 memory/energy-constrained model search.
``spikedyn-repro energy``
    Per-sample energy of the three models, normalized to the baseline, on a
    chosen GPU profile.
``spikedyn-repro reproduce``
    Run one of the paper-experiment drivers and print its report, optionally
    through the parallel runner (``--workers``) with result caching.
``spikedyn-repro run-all``
    Run the full experiment suite through the parallel runner, with a
    resumable manifest and content-addressed result caching.
``spikedyn-repro scenarios``
    List the continual-learning scenario catalogue or run one scenario
    through the continual-learning evaluation harness.
``spikedyn-repro serve``
    Serve one or more saved model artifacts over HTTP with micro-batched
    concurrent inference behind the versioned ``/v1`` API
    (``POST /v1/models/<name>/predict``, ``GET /v1/models``,
    ``GET /v1/metrics``), optionally sharded across worker processes
    (``--shards``), with the pre-1.7 endpoints kept as deprecated aliases.
``spikedyn-repro backends``
    List the registered compute backends (dense reference, sparse
    event-driven, float32 half-memory, numba JIT, auto dispatch) with
    their availability and equivalence tier.
``spikedyn-repro cache``
    Inspect or clear the on-disk result cache.
``spikedyn-repro ledger``
    Query the persistent execution ledger (``list``/``show``/``tail``/
    ``compact``): every runner job, serving batch, and trace span, with
    lineage back to content key, artifact version, config hash, backend,
    and package version.
``spikedyn-repro trace``
    Reconstruct a distributed trace from the ledger as a span tree
    (``show <trace_id>``) or rank the slowest recorded traces
    (``slowest``).

Every subcommand prints plain text to stdout; exit code 0 means success.
Setting ``REPRO_LOG_JSON=1`` additionally streams every internal event
(scheduler, workers, serving) as structured JSON lines on stderr.
Install the package (``pip install -e .``) to get the ``repro`` and
``spikedyn-repro`` entry points, or run ``python -m repro.cli ...`` directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.backends import backend_names, describe_backend, get_backend
from repro.core.config import SpikeDynConfig
from repro.core.model_search import search_snn_model
from repro.datasets.streams import dynamic_task_stream, nondynamic_stream
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import default_devices, get_device
from repro.evaluation.reporting import format_table
from repro.experiments.common import (
    MODEL_BUILDERS,
    MODEL_ORDER,
    ExperimentScale,
    build_model,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.observability import (
    KIND_JOB,
    KIND_SERVING_BATCH,
    KIND_SERVING_SHARD,
    KIND_SPAN,
    RunLedger,
)
from repro.observability.runmetrics import RunnerMetrics, RunnerMetricsServer
from repro.observability.structlog import configure_from_env
from repro.observability.trace_view import format_trace, slowest_traces
from repro.runner import (
    JobRecord,
    JobSpec,
    ParallelRunner,
    ResultCache,
    RunManifest,
    build_suite,
    default_scale_overrides,
    scales_for_preset,
)
from repro.scenarios import SCENARIOS, get_scenario

#: Experiment drivers exposed by ``spikedyn-repro reproduce`` (name -> report
#: renderer), derived from the registry in :mod:`repro.experiments.registry`.
EXPERIMENT_DRIVERS: Dict[str, Callable[[ExperimentScale], str]] = {
    name: spec.report for name, spec in EXPERIMENTS.items()
}

#: Named experiment scales selectable from the command line.
SCALE_PRESETS = {
    "tiny": ExperimentScale.tiny,
    "small": ExperimentScale.small,
    "paper": ExperimentScale.paper,
}


def _build_config(args: argparse.Namespace) -> SpikeDynConfig:
    """Configuration shared by the train / evaluate / energy subcommands."""
    return SpikeDynConfig.scaled_down(
        n_input=args.image_size * args.image_size,
        n_exc=args.n_exc,
        t_sim=args.t_sim,
        seed=args.seed,
        backend=getattr(args, "backend", "dense"),
    )


def _positive_int(text: str) -> int:
    """argparse type for strictly positive integers."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


# argparse names the type in its error message ("invalid <name> value").
_positive_int.__name__ = "positive integer"


def _nonnegative_int(text: str) -> int:
    """argparse type for integers >= 0."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


_nonnegative_int.__name__ = "non-negative integer"


def _configure_model(model, args: argparse.Namespace):
    """Apply CLI-wide model knobs (currently the evaluation batch size)."""
    batch_size = getattr(args, "eval_batch_size", None)
    if batch_size is not None:
        model.eval_batch_size = int(batch_size)
    return model


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="spikedyn", choices=sorted(MODEL_BUILDERS),
                        help="which comparison partner to use")
    parser.add_argument("--n-exc", type=int, default=40,
                        help="number of excitatory neurons")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the synthetic digit images")
    parser.add_argument("--t-sim", type=float, default=60.0,
                        help="presentation window per sample in ms")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--eval-batch-size", type=_positive_int, default=32,
                        help="samples advanced per vectorized engine step "
                             "during evaluation (1 = sequential)")
    parser.add_argument("--backend", choices=backend_names(), default="dense",
                        help="compute backend executing the simulation "
                             "kernels (see 'backends list')")


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Cache/timeout knobs shared by the runner-backed subcommands."""
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock budget in seconds")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro/results)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed result cache")
    parser.add_argument("--force", action="store_true",
                        help="re-execute every job, ignoring cache and manifest")
    _add_ledger_arguments(parser)


def _add_ledger_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ledger-dir", default=None,
                        help="execution-ledger directory (default: "
                             "$REPRO_LEDGER_DIR or ~/.cache/repro/ledger)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="disable the persistent execution ledger")


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"SpikeDyn reproduction, version {repro.__version__}")
    print()
    print("models     :", ", ".join(sorted(MODEL_BUILDERS)))
    print("backends   :", ", ".join(backend_names()))
    print("devices    :", ", ".join(device.name for device in default_devices()))
    print("experiments:", ", ".join(sorted(EXPERIMENT_DRIVERS)))
    print("scales     :", ", ".join(sorted(SCALE_PRESETS)))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    config = _build_config(args)
    model = _configure_model(build_model(args.model, config), args)
    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    classes = args.classes

    if args.protocol == "dynamic":
        stream = dynamic_task_stream(source, class_sequence=classes,
                                     samples_per_task=args.samples_per_class,
                                     rng=args.seed)
    else:
        stream = nondynamic_stream(source,
                                   n_samples=args.samples_per_class * len(classes),
                                   classes=classes, rng=args.seed)
    print(f"training {args.model!r} on {len(stream)} samples "
          f"({args.protocol} protocol, classes {classes})...")
    model.train_stream(stream)

    # Label the neurons and report training-set accuracy per class.
    rng_seed = args.seed + 1
    assign_images, assign_labels = [], []
    for cls in classes:
        for image in source.generate(cls, args.eval_per_class, rng=rng_seed):
            assign_images.append(image)
            assign_labels.append(cls)
    model.assign_labels(assign_images, assign_labels)

    rows = []
    for cls in classes:
        images = list(source.generate(cls, args.eval_per_class, rng=rng_seed + 1))
        accuracy = model.evaluate_accuracy(images, [cls] * len(images))
        rows.append([f"digit-{cls}", accuracy * 100.0])
    print(format_table(["class", "accuracy_%"], rows))

    if args.save:
        path = model.save(args.save)
        print(f"model saved to {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    config = _build_config(args)
    model = _configure_model(build_model(args.model, config), args)
    try:
        model.load_state(args.model_dir)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: could not load the model from {args.model_dir!r}: {error}",
              file=sys.stderr)
        return 1

    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    rows = []
    total_correct, total = 0, 0
    for cls in args.classes:
        images = list(source.generate(cls, args.eval_per_class, rng=args.seed + 2))
        predictions = model.predict(images)
        correct = int((predictions == cls).sum())
        rows.append([f"digit-{cls}", correct, len(images),
                     100.0 * correct / len(images)])
        total_correct += correct
        total += len(images)
    print(format_table(["class", "correct", "evaluated", "accuracy_%"], rows))
    print(f"overall accuracy: {100.0 * total_correct / total:.1f}%")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    config = _build_config(args)
    device = get_device(args.device)
    result = search_snn_model(
        config,
        memory_budget_bytes=args.memory_kb * 1024.0,
        training_energy_budget_joules=args.train_energy_j,
        inference_energy_budget_joules=args.infer_energy_j,
        n_training_samples=args.n_train,
        n_inference_samples=args.n_infer,
        n_add=args.n_add,
        device=device,
        rng=args.seed,
    )
    rows = []
    for candidate in result.candidates:
        rows.append([
            candidate.n_exc,
            candidate.memory_bytes / 1024.0,
            "yes" if candidate.feasible else f"no ({candidate.rejection_reason})",
        ])
    print(format_table(["n_exc", "memory_KB", "feasible"], rows))
    if result.selected is None:
        print("no candidate satisfies every constraint")
        return 1
    print(f"selected model: {result.selected.n_exc} excitatory neurons")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    config = _build_config(args)
    device = get_device(args.device)
    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    images = source.generate(0, args.samples, rng=args.seed)
    energy_model = EnergyModel(device)

    rows = []
    event_rows = []
    baseline_joules: Optional[float] = None
    for name in ("baseline", "asp", "spikedyn"):
        model = build_model(name, config)
        training = 0.0
        inference = 0.0
        for image in images:
            before = model.counter.copy()
            model.train_sample(image)
            training += energy_model.estimate(model.counter - before).joules
            before = model.counter.copy()
            model.respond(image)
            inference += energy_model.estimate(model.counter - before).joules
        if name == "baseline":
            baseline_joules = training
        rows.append([name, training / len(images), inference / len(images),
                     training / baseline_joules])
        counter = model.counter
        event_rows.append([
            name, counter.events_processed, counter.steps_skipped,
        ])
    print(f"per-sample energy on the {device.name} "
          f"(averaged over {len(images)} samples)")
    print(format_table(
        ["model", "training_J", "inference_J", "training_vs_baseline"], rows
    ))
    backend = get_backend(config.backend)
    print()
    print(
        f"backend '{backend.name}' "
        f"{'supports' if backend.supports_events else 'does not support'} "
        "event-driven execution (Network.run_events); tallies below stay "
        "zero on the clock-driven paths used here"
    )
    print(format_table(
        ["model", "events_processed", "steps_skipped"], event_rows
    ))
    return 0


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The result cache selected by ``--cache-dir`` / ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    # ResultCache(None) resolves to $REPRO_CACHE_DIR / the user cache dir.
    return ResultCache(getattr(args, "cache_dir", None))


def _make_ledger(args: argparse.Namespace) -> Optional[RunLedger]:
    """The execution ledger selected by ``--ledger-dir`` / ``--no-ledger``."""
    if getattr(args, "no_ledger", False):
        return None
    # RunLedger(None) resolves to $REPRO_LEDGER_DIR / the user cache dir.
    return RunLedger(getattr(args, "ledger_dir", None))


def _progress_printer(event: str, record: JobRecord) -> None:
    """One progress line per scheduler event (the runner's on_event hook).

    Progress goes to stderr so stdout stays the pure report text (the
    parallel `reproduce --workers` output is byte-identical to the
    sequential one).
    """
    if event == "start":
        line = f"[runner] {record.experiment}: running ..."
    elif event == "cached":
        line = f"[runner] {record.experiment}: served from cache"
    elif event == "resumed":
        line = f"[runner] {record.experiment}: already completed (manifest)"
    elif event == "done":
        line = f"[runner] {record.experiment}: {record.status} ({record.elapsed:.1f} s)"
    else:  # pragma: no cover - future event kinds
        line = f"[runner] {record.experiment}: {event}"
    print(line, file=sys.stderr, flush=True)


def _write_report(record: JobRecord, out_dir: Path) -> Optional[Path]:
    """Write one completed record's report to ``<out_dir>/<output>.txt``.

    Reports are written as each job completes (not at the end of the run), so
    an interrupted run keeps the reports of every finished job and a resumed
    run never has to re-render them.
    """
    if not record.ok or record.report is None:
        return None
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{record.output}.txt"
    path.write_text(
        record.report + f"\n\n(generated in {record.elapsed:.1f} s, "
        f"source: {record.source})\n",
        encoding="utf-8",
    )
    return path


def _summarize_run(records: Sequence[JobRecord]) -> int:
    """Print the run summary table; return the number of unsuccessful jobs."""
    rows = []
    failures = 0
    for record in records:
        rows.append([record.experiment, record.status, record.source,
                     f"{record.elapsed:.1f}"])
        if not record.ok:
            failures += 1
    print(format_table(["experiment", "status", "source", "seconds"], rows))
    for record in records:
        if record.error:
            last_line = record.error.strip().splitlines()[-1]
            print(f"error in {record.experiment}: {last_line}", file=sys.stderr)
    return failures


def _cmd_reproduce(args: argparse.Namespace) -> int:
    scale = SCALE_PRESETS[args.scale](seed=args.seed, backend=args.backend)
    if args.workers is None:
        ignored = [flag for flag, value in (
            ("--timeout", args.timeout is not None),
            ("--cache-dir", args.cache_dir is not None),
            ("--no-cache", args.no_cache),
            ("--force", args.force),
            ("--ledger-dir", args.ledger_dir is not None),
            ("--no-ledger", args.no_ledger),
        ) if value]
        if ignored:
            print(f"warning: {', '.join(ignored)} only take effect together "
                  "with --workers; running in-process without them",
                  file=sys.stderr)
        print(EXPERIMENT_DRIVERS[args.experiment](scale))
        return 0

    spec = get_experiment(args.experiment)
    job = JobSpec(experiment=spec.name, scale=scale, output=spec.output,
                  timeout=args.timeout)
    runner = ParallelRunner(args.workers, cache=_make_cache(args),
                            force=args.force, ledger=_make_ledger(args),
                            on_event=_progress_printer)
    record = runner.run([job])[0]
    if not record.ok:
        if record.error:
            print(record.error.strip(), file=sys.stderr)
        print(f"error: {args.experiment} finished with status {record.status!r}",
              file=sys.stderr)
        return 1
    print(record.report)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    scales = scales_for_preset(args.scale, seed=args.seed,
                               paper_networks=args.paper_networks,
                               backend=args.backend)
    jobs = build_suite(scales, experiments=args.drivers,
                       scale_overrides=default_scale_overrides(args.scale, scales),
                       timeout=args.timeout)

    out_dir = Path(args.out)
    manifest = RunManifest.load_or_create(
        out_dir / "manifest.json",
        metadata={"scale": args.scale, "seed": args.seed, "workers": args.workers},
    )

    def on_event(event: str, record: JobRecord) -> None:
        _progress_printer(event, record)
        if event in ("done", "cached", "resumed"):
            _write_report(record, out_dir)

    metrics = None
    metrics_server = None
    if args.metrics_port is not None:
        metrics = RunnerMetrics()
        metrics_server = RunnerMetricsServer(metrics, port=args.metrics_port)
        metrics_server.start()
        print(f"runner metrics at {metrics_server.url}/metrics")

    runner = ParallelRunner(args.workers, cache=_make_cache(args),
                            manifest=manifest, resume=not args.no_resume,
                            force=args.force, ledger=_make_ledger(args),
                            on_event=on_event, metrics=metrics)
    try:
        records = runner.run(jobs)
    finally:
        if metrics_server is not None:
            metrics_server.stop()

    # A manifest-resumed job carries no report text when caching is off; its
    # report file normally survives from the run that completed it, but if it
    # was deleted there is nothing to rewrite — say so instead of silently
    # claiming success over an empty output directory.
    unwritable = [record.output for record in records
                  if record.ok and record.report is None
                  and not (out_dir / f"{record.output}.txt").exists()]
    if unwritable:
        print(f"warning: no report text available for {', '.join(unwritable)} "
              "(completed in an earlier run, but the report file is gone and "
              "no cached copy exists); re-run with --force or --no-resume to "
              "regenerate",
              file=sys.stderr)

    elapsed = time.perf_counter() - started
    failures = _summarize_run(records)
    print(f"{len(records) - failures}/{len(records)} experiments completed "
          f"in {elapsed:.1f} s (reports in {out_dir}, manifest "
          f"{manifest.path})")
    return 1 if failures else 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.action == "list":
        if args.name is not None:
            print("error: 'scenarios list' takes no scenario name",
                  file=sys.stderr)
            return 2
        scale = SCALE_PRESETS[args.scale](seed=args.seed)
        rows = []
        for name in SCENARIOS:
            spec = get_scenario(name, scale)
            transforms = ", ".join(t["kind"] for t in spec.transforms) or "-"
            rows.append([name, spec.schedule["kind"], len(spec.phases()),
                         transforms, spec.description])
        print(format_table(
            ["scenario", "schedule", "phases", "transforms", "description"], rows
        ))
        return 0

    # action == "run"
    from repro.experiments.scenarios import run_scenario_study

    if args.name is None:
        print("error: 'scenarios run' needs a scenario name "
              f"(known: {', '.join(SCENARIOS)})", file=sys.stderr)
        return 2
    scale = SCALE_PRESETS[args.scale](seed=args.seed)
    models = tuple(args.models) if args.models else MODEL_ORDER
    # Validate the name up front so only the unknown-scenario case is
    # reported as a usage error; a KeyError raised inside the study itself
    # is a library bug and should traceback normally.
    try:
        get_scenario(args.name, scale)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    result = run_scenario_study(scale, scenario=args.name, models=models)
    print(result.to_text())
    return 0


def _parse_model_spec(spec: str) -> "tuple[str, str]":
    """Split a ``NAME=PATH`` (or bare ``PATH``) serve argument.

    Without an explicit name, a registry version directory
    (``<name>/v000N``) serves as ``<name>``; any other directory serves
    under its own basename.
    """
    import re as _re
    from pathlib import Path

    if "=" in spec:
        name, _, path = spec.partition("=")
        if not name:
            raise ValueError(f"empty model name in {spec!r}")
        return name, path
    path = Path(spec)
    if _re.fullmatch(r"v\d{1,9}", path.name) and path.parent.name:
        return path.parent.name, spec
    return path.name or spec, spec


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import (
        ArtifactError,
        ArtifactRegistry,
        ModelRouter,
        ModelServer,
        ReplicaPool,
        ShardProcessPool,
        SpikeCountDriftDetector,
        load_artifact,
    )

    if not args.artifacts and args.registry is None:
        print("error: name at least one artifact (NAME=PATH) or pass "
              "--registry", file=sys.stderr)
        return 2
    ledger = _make_ledger(args)

    def pool_factory(artifact_dir: str):
        drift = SpikeCountDriftDetector(window=args.drift_window,
                                        threshold=args.drift_threshold)
        if args.shards > 0:
            return ShardProcessPool(
                artifact_dir,
                shards=args.shards,
                backend=args.backend,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                max_queue=args.max_queue,
                drift_detector=drift,
                ledger=ledger,
            )
        return ReplicaPool.from_artifact(
            load_artifact(artifact_dir),
            workers=args.workers,
            backend=args.backend,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            drift_detector=drift,
            ledger=ledger,
        )

    registry = ArtifactRegistry(args.registry) if args.registry else None
    router = ModelRouter(
        pool_factory,
        registry=registry,
        max_models=args.max_models,
        rate_rps=args.rate_rps,
        rate_burst=args.rate_burst,
        breaker_failures=args.breaker_failures or None,
        breaker_window_s=args.breaker_window_s,
        breaker_reset_s=args.breaker_reset_s,
        retries=args.retries,
        retry_backoff_s=args.retry_backoff_s,
    )
    served = []
    try:
        for spec in args.artifacts:
            name, path = _parse_model_spec(spec)
            described = load_artifact(path).describe()
            router.add_model(name, path)
            served.append((name, path, described))
    except (ArtifactError, ValueError) as error:
        router.stop()
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        server = ModelServer(router, host=args.host, port=args.port,
                             quiet=not args.verbose)
    except OSError as error:
        router.stop()
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    host, port = server.address
    for name, path, described in served:
        print(f"serving {name}: {described['model']} "
              f"({described['n_input']}x{described['n_exc']}, "
              f"schema v{described['schema_version']}, "
              f"backend={args.backend or described['backend']}) from {path}",
              flush=True)
    if registry is not None:
        print(f"registry: {args.registry} "
              f"(lazy-loading up to {args.max_models} models)", flush=True)
    plane = (f"shards={args.shards} processes" if args.shards > 0
             else f"workers={args.workers} threads")
    print(f"listening on http://{host}:{port} "
          f"({plane}, max_batch={args.max_batch}, "
          f"max_wait_ms={args.max_wait_ms:g})", flush=True)
    print("endpoints: POST /v1/models/<name>/predict, GET /v1/models, "
          "GET /v1/models/<name>/healthz, GET /v1/metrics[.json]; "
          "deprecated aliases: POST /predict, GET /healthz, "
          "GET /metrics[.json]", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining pending requests) ...",
              file=sys.stderr, flush=True)
    finally:
        server.stop()
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    if args.action != "list":  # pragma: no cover - argparse enforces choices
        print(f"error: unknown backends action {args.action!r}", file=sys.stderr)
        return 2
    rows = []
    for name in backend_names():
        # describe_backend works off the registered class, so unavailable
        # backends (missing optional dependency) still render as a row with
        # "no" instead of raising at instantiation.
        info = describe_backend(name)
        rows.append([
            info["name"],
            "yes" if info["available"] else "no",
            info["tier"],
            "yes" if info["events"] else "no",
            info["description"],
        ])
    print(format_table(
        ["backend", "available", "tier", "events", "description"], rows
    ))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        stats = cache.stats()
        print(f"cache root : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"size       : {stats['bytes'] / 1024.0:.1f} KiB")
        return 0
    if args.action == "list":
        rows = []
        for key, path in cache.iter_entries():
            record = cache.get(key)
            if record is None:
                continue
            rows.append([key[:16], record.get("experiment", "?"),
                         record.get("status", "?"), record.get("seed", "?"),
                         f"{record.get('elapsed', 0.0):.1f}"])
        if not rows:
            print(f"cache at {cache.root} is empty")
            return 0
        print(format_table(["key", "experiment", "status", "seed", "seconds"], rows))
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def _ledger_row(entry: Dict[str, object]) -> List[object]:
    """One display row for a ledger entry (shared by list/tail)."""
    ts = entry.get("ts")
    when = (time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(ts)))
            if isinstance(ts, (int, float)) else "?")
    kind = str(entry.get("kind", "?"))
    if kind == KIND_SERVING_BATCH:
        what = str(entry.get("artifact_name") or entry.get("model") or "?")
        detail = f"batch={entry.get('batch_size', '?')}"
        if "shard" in entry:
            detail += f" shard={entry['shard']}"
    elif kind == KIND_SERVING_SHARD:
        what = str(entry.get("artifact_name") or entry.get("model") or "?")
        detail = f"shard={entry.get('shard', '?')} pid={entry.get('pid', '?')}"
        return [when, kind, what, entry.get("event", "?"),
                entry.get("backend", "?"), entry.get("version", "?"), detail]
    elif kind == KIND_SPAN:
        what = str(entry.get("name", "?"))
        detail = (f"trace={entry.get('trace_id', '?')} "
                  f"{entry.get('duration_ms', '?')} ms")
        return [when, kind, what, f"pid={entry.get('pid', '?')}",
                entry.get("backend", "-"), entry.get("version", "?"), detail]
    else:
        what = str(entry.get("experiment", "?"))
        detail = str(entry.get("key", ""))[:16]
    return [when, kind, what, entry.get("outcome", "?"),
            entry.get("backend", "?"), entry.get("version", "?"), detail]


_LEDGER_COLUMNS = ["when", "kind", "what", "outcome", "backend", "version",
                   "key/detail"]


def _cmd_ledger(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger_dir)
    kind = {"job": KIND_JOB, "serving": KIND_SERVING_BATCH,
            "serving_shard": KIND_SERVING_SHARD, "span": KIND_SPAN,
            "all": None}[args.kind]

    if args.action == "compact":
        summary = ledger.compact()
        saved = summary["bytes_before"] - summary["bytes_after"]
        print(f"compacted {summary['path']}: "
              f"{summary['entries_before']} -> {summary['entries_after']} "
              f"entries, {saved / 1024.0:.1f} KiB reclaimed "
              f"({summary['segments_removed']} rotated segment(s) merged)")
        return 0

    if args.action == "list":
        stats = ledger.stats()
        rows = [_ledger_row(entry) for entry in ledger.entries(kind=kind)]
        if not rows:
            print(f"ledger at {ledger.path} is empty")
            return 0
        print(format_table(_LEDGER_COLUMNS, rows))
        kinds = ", ".join(f"{name}={count}"
                          for name, count in sorted(stats["kinds"].items()))
        print(f"{stats['entries']} entries ({kinds}), "
              f"{stats['bytes'] / 1024.0:.1f} KiB at {stats['path']}")
        return 0

    if args.action == "tail":
        rows = [_ledger_row(entry)
                for entry in ledger.tail(args.limit, kind=kind)]
        if not rows:
            print(f"ledger at {ledger.path} is empty")
            return 0
        print(format_table(_LEDGER_COLUMNS, rows))
        return 0

    # action == "show": full JSON of every entry matching the key prefix.
    if not args.key:
        print("error: 'ledger show' needs a job-key prefix "
              "(see the key/detail column of 'ledger list')", file=sys.stderr)
        return 2
    matches = [entry for entry in ledger.find(args.key)
               if kind is None or entry.get("kind") == kind]
    if not matches:
        print(f"no ledger entry matches key prefix {args.key!r}",
              file=sys.stderr)
        return 1
    for entry in matches:
        print(json.dumps(entry, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger_dir)

    if args.action == "show":
        if not args.trace_id:
            print("error: 'trace show' needs a trace id (header "
                  "X-Repro-Trace-Id, predict response 'trace_id', or the "
                  "detail column of 'ledger list --kind span')",
                  file=sys.stderr)
            return 2
        print(format_trace(ledger, args.trace_id))
        return 0

    # action == "slowest": one row per trace, largest total span time first.
    summaries = slowest_traces(ledger, limit=args.limit)
    if not summaries:
        print(f"no spans recorded in ledger at {ledger.path}")
        return 0
    rows = [[summary["trace_id"], summary["root"],
             f"{summary['total_ms']:.2f}", str(summary["spans"]),
             str(summary["processes"])]
            for summary in summaries]
    print(format_table(["trace", "root span", "total ms", "spans",
                        "processes"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="spikedyn-repro",
        description="SpikeDyn (DAC 2021) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show library information")
    info.set_defaults(handler=_cmd_info)

    train = subparsers.add_parser("train", help="train a model on synthetic digits")
    _add_model_arguments(train)
    train.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2],
                       help="digit classes to train on")
    train.add_argument("--protocol", choices=("dynamic", "nondynamic"),
                       default="dynamic", help="task-ordering protocol")
    train.add_argument("--samples-per-class", type=int, default=8,
                       help="training samples per class")
    train.add_argument("--eval-per-class", type=int, default=4,
                       help="evaluation samples per class")
    train.add_argument("--save", default=None,
                       help="directory to save the trained model to")
    train.set_defaults(handler=_cmd_train)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a saved model")
    _add_model_arguments(evaluate)
    evaluate.add_argument("model_dir", help="directory written by 'train --save'")
    evaluate.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2],
                          help="digit classes to evaluate on")
    evaluate.add_argument("--eval-per-class", type=int, default=4,
                          help="evaluation samples per class")
    evaluate.set_defaults(handler=_cmd_evaluate)

    search = subparsers.add_parser("search",
                                   help="run the Alg. 1 constrained model search")
    _add_model_arguments(search)
    search.add_argument("--memory-kb", type=float, default=256.0,
                        help="memory budget in kilobytes")
    search.add_argument("--train-energy-j", type=float, default=None,
                        help="training energy budget in joules")
    search.add_argument("--infer-energy-j", type=float, default=None,
                        help="inference energy budget in joules")
    search.add_argument("--n-train", type=int, default=60_000,
                        help="training samples the deployment will process")
    search.add_argument("--n-infer", type=int, default=10_000,
                        help="inference samples the deployment will process")
    search.add_argument("--n-add", type=int, default=25,
                        help="search step in excitatory neurons")
    search.add_argument("--device", default="GTX 1080 Ti",
                        help="target device profile")
    search.set_defaults(handler=_cmd_search)

    energy = subparsers.add_parser("energy",
                                   help="per-sample energy of the three models")
    _add_model_arguments(energy)
    energy.add_argument("--device", default="GTX 1080 Ti",
                        help="target device profile")
    energy.add_argument("--samples", type=int, default=2,
                        help="samples averaged per measurement")
    energy.set_defaults(handler=_cmd_energy)

    reproduce = subparsers.add_parser(
        "reproduce", help="run one paper-experiment driver and print its report"
    )
    reproduce.add_argument("experiment", choices=sorted(EXPERIMENT_DRIVERS),
                           help="which table/figure to reproduce")
    reproduce.add_argument("--scale", choices=sorted(SCALE_PRESETS), default="tiny",
                           help="experiment scale preset")
    reproduce.add_argument("--seed", type=int, default=0,
                           help="base seed of every stochastic component")
    reproduce.add_argument("--workers", type=_positive_int, default=None,
                           help="run through the parallel runner with N worker "
                                "processes and result caching (default: run "
                                "in-process without caching)")
    reproduce.add_argument("--backend", choices=backend_names(),
                           default="dense",
                           help="compute backend the experiment's models run "
                                "on (part of the result-cache key)")
    _add_runner_arguments(reproduce)
    reproduce.set_defaults(handler=_cmd_reproduce)

    run_all = subparsers.add_parser(
        "run-all",
        help="run the full experiment suite through the parallel runner",
    )
    run_all.add_argument("--scale", choices=sorted(SCALE_PRESETS), default="tiny",
                         help="experiment scale preset")
    run_all.add_argument("--seed", type=int, default=0,
                         help="base seed of every stochastic component")
    run_all.add_argument("--workers", type=_nonnegative_int, default=1,
                         help="number of concurrent worker processes; 0 runs "
                              "every job in-process (no crash isolation or "
                              "timeouts, but also no process overhead)")
    run_all.add_argument("--out", default="results",
                         help="output directory for reports and the manifest")
    run_all.add_argument("--drivers", nargs="+", default=None,
                         choices=sorted(EXPERIMENT_DRIVERS), metavar="DRIVER",
                         help="subset of drivers to run (default: all)")
    run_all.add_argument("--paper-networks", action="store_true",
                         help="use N200/N400 for the energy experiments at "
                              "the 'small' scale")
    run_all.add_argument("--no-resume", action="store_true",
                         help="ignore a pre-existing manifest instead of "
                              "resuming from it")
    run_all.add_argument("--backend", choices=backend_names(), default="dense",
                         help="compute backend every experiment's models run "
                              "on (part of each job's cache key)")
    run_all.add_argument("--metrics-port", type=_nonnegative_int, default=None,
                         metavar="PORT",
                         help="serve runner metrics over HTTP on this port "
                              "for the duration of the run (Prometheus text "
                              "at /metrics, JSON at /metrics.json; 0 picks a "
                              "free port)")
    _add_runner_arguments(run_all)
    run_all.set_defaults(handler=_cmd_run_all)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="list or run the continual-learning scenario catalogue",
    )
    scenarios.add_argument("action", choices=("list", "run"),
                           help="list the catalogue or run one scenario")
    # Validated in the handler rather than via argparse choices: the name is
    # optional (only 'run' needs it), and the handler's error message can
    # list the catalogue without argparse leaking a None sentinel into it.
    scenarios.add_argument("name", nargs="?", default=None, metavar="SCENARIO",
                           help="scenario to run (required for 'run'; see "
                                "'scenarios list')")
    scenarios.add_argument("--scale", choices=sorted(SCALE_PRESETS),
                           default="tiny", help="experiment scale preset")
    scenarios.add_argument("--seed", type=int, default=0,
                           help="base seed of every stochastic component")
    scenarios.add_argument("--models", nargs="+", default=None,
                           choices=sorted(MODEL_BUILDERS), metavar="MODEL",
                           help="comparison partners to run (default: all)")
    scenarios.set_defaults(handler=_cmd_scenarios)

    serve = subparsers.add_parser(
        "serve",
        help="serve model artifacts over HTTP (multi-tenant /v1 API, "
             "micro-batched)",
    )
    serve.add_argument("artifacts", nargs="*", metavar="NAME=PATH",
                       help="artifact to pin: NAME=PATH, or a bare PATH "
                            "(served under the directory's name); repeat "
                            "for multiple models")
    serve.add_argument("--registry", default=None, metavar="DIR",
                       help="ArtifactRegistry root to lazy-load further "
                            "models from on first request")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=_nonnegative_int, default=8080,
                       help="bind port; 0 picks an ephemeral port")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="replica worker threads per model when "
                            "--shards is 0")
    serve.add_argument("--shards", type=_nonnegative_int, default=0,
                       help="worker *processes* per model (crash-isolated, "
                            "GIL-free); 0 serves from threads (default)")
    serve.add_argument("--max-models", type=_positive_int, default=4,
                       help="registry-loaded models resident at once "
                            "before LRU eviction")
    serve.add_argument("--rate-rps", type=float, default=None,
                       help="per-tenant token-bucket rate limit in "
                            "requests/s (default: unlimited)")
    serve.add_argument("--rate-burst", type=float, default=None,
                       help="token-bucket burst capacity (default: "
                            "max(1, rate))")
    serve.add_argument("--breaker-failures", type=_nonnegative_int, default=5,
                       help="failures within --breaker-window-s that open "
                            "a model's circuit breaker; 0 disables it")
    serve.add_argument("--breaker-window-s", type=float, default=30.0,
                       help="sliding window the breaker counts failures "
                            "over")
    serve.add_argument("--breaker-reset-s", type=float, default=5.0,
                       help="how long an open breaker sheds load before "
                            "probing")
    serve.add_argument("--retries", type=_nonnegative_int, default=2,
                       help="transparent retries for transient shard "
                            "crashes")
    serve.add_argument("--retry-backoff-s", type=float, default=0.05,
                       help="initial jittered backoff between shard "
                            "retries")
    serve.add_argument("--max-batch", type=_positive_int, default=32,
                       help="largest micro-batch coalesced into one "
                            "vectorized engine call")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="how long a forming micro-batch waits for "
                            "stragglers (0 disables coalescing waits)")
    serve.add_argument("--max-queue", type=_positive_int, default=1024,
                       help="pending-request bound before 503 backpressure")
    serve.add_argument("--drift-window", type=_positive_int, default=256,
                       help="rolling window (requests) of the online "
                            "spike-count drift detector")
    serve.add_argument("--drift-threshold", type=float, default=3.0,
                       help="drift alarm threshold in reference standard "
                            "deviations")
    serve.add_argument("--backend", choices=backend_names(), default=None,
                       help="compute backend the replicas run on (default: "
                            "the backend recorded in the artifact)")
    serve.add_argument("--verbose", "-v", action="store_true",
                       help="log every HTTP request to stderr")
    _add_ledger_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    backends = subparsers.add_parser(
        "backends",
        help="list the registered compute backends",
    )
    backends.add_argument("action", choices=("list",),
                          help="what to do with the backend registry")
    backends.set_defaults(handler=_cmd_backends)

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache.add_argument("action", choices=("info", "list", "clear"),
                       help="what to do with the cache")
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro/results)")
    cache.set_defaults(handler=_cmd_cache)

    ledger = subparsers.add_parser(
        "ledger", help="query the persistent execution ledger"
    )
    ledger.add_argument("action", choices=("list", "show", "tail", "compact"),
                        help="list every entry, show entries matching a "
                             "job-key prefix as JSON, tail the newest, or "
                             "compact the ledger (squash repeated "
                             "cached/resumed entries and merge rotated "
                             "segments)")
    ledger.add_argument("key", nargs="?", default=None, metavar="KEY_PREFIX",
                        help="job-key prefix (required for 'show')")
    ledger.add_argument("--ledger-dir", default=None,
                        help="ledger directory (default: $REPRO_LEDGER_DIR "
                             "or ~/.cache/repro/ledger)")
    ledger.add_argument("--kind",
                        choices=("all", "job", "serving", "serving_shard",
                                 "span"),
                        default="all", help="restrict to one entry kind")
    ledger.add_argument("-n", "--limit", type=_positive_int, default=10,
                        help="entries shown by 'tail' (default: 10)")
    ledger.set_defaults(handler=_cmd_ledger)

    trace = subparsers.add_parser(
        "trace",
        help="reconstruct distributed traces from the execution ledger",
    )
    trace.add_argument("action", choices=("show", "slowest"),
                       help="show one trace as a span tree, or rank the "
                            "slowest traces by total span time")
    trace.add_argument("trace_id", nargs="?", default=None, metavar="TRACE_ID",
                       help="trace id (required for 'show'; returned in the "
                            "X-Repro-Trace-Id response header and the "
                            "predict response body)")
    trace.add_argument("--ledger-dir", default=None,
                       help="ledger directory (default: $REPRO_LEDGER_DIR "
                            "or ~/.cache/repro/ledger)")
    trace.add_argument("-n", "--limit", type=_positive_int, default=10,
                       help="traces ranked by 'slowest' (default: 10)")
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    # REPRO_LOG_JSON=1 streams structured JSON events on stderr; a no-op
    # otherwise, so report text on stdout is unaffected either way.
    configure_from_env()
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Runner-backed commands persist their manifest after every job, so
        # an interrupted run is resumable — say so instead of tracebacking.
        print("\ninterrupted (completed jobs are recorded; re-run to resume)",
              file=sys.stderr)
        return 130
    except BrokenPipeError:  # e.g. `repro cache list | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Command-line interface for the SpikeDyn reproduction.

The CLI wraps the library's main entry points so the common workflows can be
driven without writing Python:

``spikedyn-repro info``
    Library version, available models, devices, and experiment drivers.
``spikedyn-repro train``
    Train one of the three models on a dynamic (class-sequential) or
    non-dynamic synthetic-digit stream and optionally save it.
``spikedyn-repro evaluate``
    Load a saved model and evaluate its accuracy on fresh samples.
``spikedyn-repro search``
    Run the Alg. 1 memory/energy-constrained model search.
``spikedyn-repro energy``
    Per-sample energy of the three models, normalized to the baseline, on a
    chosen GPU profile.
``spikedyn-repro reproduce``
    Run one of the paper-experiment drivers and print its report.

Every subcommand prints plain text to stdout; exit code 0 means success.
Install the package (``pip install -e .``) to get the ``repro`` and
``spikedyn-repro`` entry points, or run ``python -m repro.cli ...`` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import SpikeDynConfig
from repro.core.model_search import search_snn_model
from repro.datasets.streams import dynamic_task_stream, nondynamic_stream
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import default_devices, get_device
from repro.evaluation.reporting import format_table
from repro.experiments import (
    gpu_specification_table,
    run_analytical_validation,
    run_architecture_reduction,
    run_confusion_study,
    run_decay_theta_sweep,
    run_dynamic_accuracy_comparison,
    run_energy_comparison,
    run_mechanism_ablation,
    run_model_search_study,
    run_motivation_study,
    run_nondynamic_accuracy_comparison,
    run_processing_time_study,
)
from repro.experiments.common import MODEL_BUILDERS, ExperimentScale, build_model

#: Experiment drivers exposed by ``spikedyn-repro reproduce``.
EXPERIMENT_DRIVERS: Dict[str, Callable[[ExperimentScale], str]] = {
    "table1": lambda scale: gpu_specification_table(),
    "table2": lambda scale: run_processing_time_study(scale).to_text(),
    "fig1": lambda scale: run_motivation_study(scale).to_text(),
    "fig4": lambda scale: run_architecture_reduction(scale).to_text(),
    "fig5": lambda scale: run_analytical_validation(scale).to_text(),
    "fig6": lambda scale: run_decay_theta_sweep(scale).to_text(),
    "fig9-dynamic": lambda scale: run_dynamic_accuracy_comparison(scale).to_text(),
    "fig9-nondynamic": lambda scale: run_nondynamic_accuracy_comparison(scale).to_text(),
    "fig10": lambda scale: run_confusion_study(scale).to_text(),
    "fig11": lambda scale: run_energy_comparison(scale).to_text(),
    "alg1": lambda scale: run_model_search_study(scale).to_text(),
    "ablation": lambda scale: run_mechanism_ablation(scale).to_text(),
}

#: Named experiment scales selectable from the command line.
SCALE_PRESETS = {
    "tiny": ExperimentScale.tiny,
    "small": ExperimentScale.small,
    "paper": ExperimentScale.paper,
}


def _build_config(args: argparse.Namespace) -> SpikeDynConfig:
    """Configuration shared by the train / evaluate / energy subcommands."""
    return SpikeDynConfig.scaled_down(
        n_input=args.image_size * args.image_size,
        n_exc=args.n_exc,
        t_sim=args.t_sim,
        seed=args.seed,
    )


def _positive_int(text: str) -> int:
    """argparse type for strictly positive integers."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


# argparse names the type in its error message ("invalid <name> value").
_positive_int.__name__ = "positive integer"


def _configure_model(model, args: argparse.Namespace):
    """Apply CLI-wide model knobs (currently the evaluation batch size)."""
    batch_size = getattr(args, "eval_batch_size", None)
    if batch_size is not None:
        model.eval_batch_size = int(batch_size)
    return model


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="spikedyn", choices=sorted(MODEL_BUILDERS),
                        help="which comparison partner to use")
    parser.add_argument("--n-exc", type=int, default=40,
                        help="number of excitatory neurons")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the synthetic digit images")
    parser.add_argument("--t-sim", type=float, default=60.0,
                        help="presentation window per sample in ms")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--eval-batch-size", type=_positive_int, default=32,
                        help="samples advanced per vectorized engine step "
                             "during evaluation (1 = sequential)")


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"SpikeDyn reproduction, version {repro.__version__}")
    print()
    print("models     :", ", ".join(sorted(MODEL_BUILDERS)))
    print("devices    :", ", ".join(device.name for device in default_devices()))
    print("experiments:", ", ".join(sorted(EXPERIMENT_DRIVERS)))
    print("scales     :", ", ".join(sorted(SCALE_PRESETS)))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    config = _build_config(args)
    model = _configure_model(build_model(args.model, config), args)
    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    classes = args.classes

    if args.protocol == "dynamic":
        stream = dynamic_task_stream(source, class_sequence=classes,
                                     samples_per_task=args.samples_per_class,
                                     rng=args.seed)
    else:
        stream = nondynamic_stream(source,
                                   n_samples=args.samples_per_class * len(classes),
                                   classes=classes, rng=args.seed)
    print(f"training {args.model!r} on {len(stream)} samples "
          f"({args.protocol} protocol, classes {classes})...")
    model.train_stream(stream)

    # Label the neurons and report training-set accuracy per class.
    rng_seed = args.seed + 1
    assign_images, assign_labels = [], []
    for cls in classes:
        for image in source.generate(cls, args.eval_per_class, rng=rng_seed):
            assign_images.append(image)
            assign_labels.append(cls)
    model.assign_labels(assign_images, assign_labels)

    rows = []
    for cls in classes:
        images = list(source.generate(cls, args.eval_per_class, rng=rng_seed + 1))
        accuracy = model.evaluate_accuracy(images, [cls] * len(images))
        rows.append([f"digit-{cls}", accuracy * 100.0])
    print(format_table(["class", "accuracy_%"], rows))

    if args.save:
        path = model.save(args.save)
        print(f"model saved to {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    config = _build_config(args)
    model = _configure_model(build_model(args.model, config), args)
    try:
        model.load_state(args.model_dir)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: could not load the model from {args.model_dir!r}: {error}",
              file=sys.stderr)
        return 1

    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    rows = []
    total_correct, total = 0, 0
    for cls in args.classes:
        images = list(source.generate(cls, args.eval_per_class, rng=args.seed + 2))
        predictions = model.predict(images)
        correct = int((predictions == cls).sum())
        rows.append([f"digit-{cls}", correct, len(images),
                     100.0 * correct / len(images)])
        total_correct += correct
        total += len(images)
    print(format_table(["class", "correct", "evaluated", "accuracy_%"], rows))
    print(f"overall accuracy: {100.0 * total_correct / total:.1f}%")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    config = _build_config(args)
    device = get_device(args.device)
    result = search_snn_model(
        config,
        memory_budget_bytes=args.memory_kb * 1024.0,
        training_energy_budget_joules=args.train_energy_j,
        inference_energy_budget_joules=args.infer_energy_j,
        n_training_samples=args.n_train,
        n_inference_samples=args.n_infer,
        n_add=args.n_add,
        device=device,
        rng=args.seed,
    )
    rows = []
    for candidate in result.candidates:
        rows.append([
            candidate.n_exc,
            candidate.memory_bytes / 1024.0,
            "yes" if candidate.feasible else f"no ({candidate.rejection_reason})",
        ])
    print(format_table(["n_exc", "memory_KB", "feasible"], rows))
    if result.selected is None:
        print("no candidate satisfies every constraint")
        return 1
    print(f"selected model: {result.selected.n_exc} excitatory neurons")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    config = _build_config(args)
    device = get_device(args.device)
    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    images = source.generate(0, args.samples, rng=args.seed)
    energy_model = EnergyModel(device)

    rows = []
    baseline_joules: Optional[float] = None
    for name in ("baseline", "asp", "spikedyn"):
        model = build_model(name, config)
        training = 0.0
        inference = 0.0
        for image in images:
            before = model.counter.copy()
            model.train_sample(image)
            training += energy_model.estimate(model.counter - before).joules
            before = model.counter.copy()
            model.respond(image)
            inference += energy_model.estimate(model.counter - before).joules
        if name == "baseline":
            baseline_joules = training
        rows.append([name, training / len(images), inference / len(images),
                     training / baseline_joules])
    print(f"per-sample energy on the {device.name} "
          f"(averaged over {len(images)} samples)")
    print(format_table(
        ["model", "training_J", "inference_J", "training_vs_baseline"], rows
    ))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    scale = SCALE_PRESETS[args.scale]()
    driver = EXPERIMENT_DRIVERS[args.experiment]
    print(driver(scale))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="spikedyn-repro",
        description="SpikeDyn (DAC 2021) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show library information")
    info.set_defaults(handler=_cmd_info)

    train = subparsers.add_parser("train", help="train a model on synthetic digits")
    _add_model_arguments(train)
    train.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2],
                       help="digit classes to train on")
    train.add_argument("--protocol", choices=("dynamic", "nondynamic"),
                       default="dynamic", help="task-ordering protocol")
    train.add_argument("--samples-per-class", type=int, default=8,
                       help="training samples per class")
    train.add_argument("--eval-per-class", type=int, default=4,
                       help="evaluation samples per class")
    train.add_argument("--save", default=None,
                       help="directory to save the trained model to")
    train.set_defaults(handler=_cmd_train)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a saved model")
    _add_model_arguments(evaluate)
    evaluate.add_argument("model_dir", help="directory written by 'train --save'")
    evaluate.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2],
                          help="digit classes to evaluate on")
    evaluate.add_argument("--eval-per-class", type=int, default=4,
                          help="evaluation samples per class")
    evaluate.set_defaults(handler=_cmd_evaluate)

    search = subparsers.add_parser("search",
                                   help="run the Alg. 1 constrained model search")
    _add_model_arguments(search)
    search.add_argument("--memory-kb", type=float, default=256.0,
                        help="memory budget in kilobytes")
    search.add_argument("--train-energy-j", type=float, default=None,
                        help="training energy budget in joules")
    search.add_argument("--infer-energy-j", type=float, default=None,
                        help="inference energy budget in joules")
    search.add_argument("--n-train", type=int, default=60_000,
                        help="training samples the deployment will process")
    search.add_argument("--n-infer", type=int, default=10_000,
                        help="inference samples the deployment will process")
    search.add_argument("--n-add", type=int, default=25,
                        help="search step in excitatory neurons")
    search.add_argument("--device", default="GTX 1080 Ti",
                        help="target device profile")
    search.set_defaults(handler=_cmd_search)

    energy = subparsers.add_parser("energy",
                                   help="per-sample energy of the three models")
    _add_model_arguments(energy)
    energy.add_argument("--device", default="GTX 1080 Ti",
                        help="target device profile")
    energy.add_argument("--samples", type=int, default=2,
                        help="samples averaged per measurement")
    energy.set_defaults(handler=_cmd_energy)

    reproduce = subparsers.add_parser(
        "reproduce", help="run one paper-experiment driver and print its report"
    )
    reproduce.add_argument("experiment", choices=sorted(EXPERIMENT_DRIVERS),
                           help="which table/figure to reproduce")
    reproduce.add_argument("--scale", choices=sorted(SCALE_PRESETS), default="tiny",
                           help="experiment scale preset")
    reproduce.set_defaults(handler=_cmd_reproduce)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
